"""Experiment drivers regenerating every table/figure-equivalent."""

from repro.experiments.ablations import (
    AblationConfig,
    run_engine_throughput,
    run_selfloop_ablation,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.datacenter_serving import (
    DatacenterServingConfig,
    run_datacenter_serving,
)
from repro.experiments.deviation import DeviationConfig, run_deviation
from repro.experiments.dynamic_steady_state import (
    DynamicSteadyStateConfig,
    run_dynamic_steady_state,
)
from repro.experiments.fault_recovery import (
    FaultRecoveryConfig,
    run_fault_recovery,
)
from repro.experiments.figures import TrajectoryConfig, run_trajectories
from repro.experiments.lower_bounds import (
    LowerBoundConfig,
    run_rotor_alternating,
    run_stateless,
    run_steady_state,
)
from repro.experiments.runner import EXPERIMENTS, FULL_EXPERIMENTS, run_all
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.theorem23 import (
    Theorem23Config,
    run_cycle_sweep,
    run_expander_sweep,
    run_minimal_selfloop_sweep,
)
from repro.experiments.theorem33 import (
    Theorem33Config,
    run_good_balancers,
    run_potential_monotonicity,
)
from repro.experiments.topology_churn import (
    TopologyChurnConfig,
    run_topology_churn,
)

__all__ = [
    "ExperimentResult",
    "run_all",
    "EXPERIMENTS",
    "FULL_EXPERIMENTS",
    "Table1Config",
    "run_table1",
    "Theorem23Config",
    "run_expander_sweep",
    "run_cycle_sweep",
    "run_minimal_selfloop_sweep",
    "Theorem33Config",
    "run_good_balancers",
    "run_potential_monotonicity",
    "LowerBoundConfig",
    "run_steady_state",
    "run_stateless",
    "run_rotor_alternating",
    "AblationConfig",
    "run_selfloop_ablation",
    "run_engine_throughput",
    "DeviationConfig",
    "run_deviation",
    "DynamicSteadyStateConfig",
    "run_dynamic_steady_state",
    "DatacenterServingConfig",
    "run_datacenter_serving",
    "FaultRecoveryConfig",
    "run_fault_recovery",
    "TopologyChurnConfig",
    "run_topology_churn",
    "TrajectoryConfig",
    "run_trajectories",
]
