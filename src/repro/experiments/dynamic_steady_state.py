"""E15 — steady-state discrepancy under sustained injection.

The paper's theorems bound the discrepancy a deterministic scheme
reaches from a *fixed* initial vector; this experiment asks the
production question instead: if load keeps arriving every round, where
does the discrepancy settle?  For each of the four standard graph
families the driver sweeps the injection rate (``constant_rate``
arrivals at seeded-random nodes, plus the load-aware
``adversarial_peak`` for the worst case) and reports the tail-mean
discrepancy (:func:`~repro.core.metrics.steady_state_discrepancy`)
over the final ``tail_window`` rounds, averaged across replicas.

Qualitative predictions the smoke tests assert:

* at rate 0 the dynamic run degenerates to the static model — the
  steady state matches the static plateau;
* the steady state grows with the injection rate;
* ``adversarial_peak`` at a given rate is no easier than random
  arrivals at the same rate (it concentrates every arrival on the
  current maximum).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import steady_state_discrepancy
from repro.dynamics import DynamicsSpec
from repro.experiments.base import ExperimentResult, timed
from repro.graphs.balancing import log2_ceil
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)


@dataclass
class DynamicSteadyStateConfig:
    """Sizes kept laptop-second by default; FULL enlarges them."""

    n: int = 64
    degree: int = 4
    rounds: int = 240
    tail_window: int = 60
    rates: tuple[int, ...] = (0, 1, 4, 16)
    injectors: tuple[str, ...] = ("constant_rate", "adversarial_peak")
    algorithms: tuple[str, ...] = ("send_floor", "rotor_router")
    families: tuple[str, ...] = (
        "cycle",
        "torus",
        "hypercube",
        "random_regular",
    )
    tokens_per_node: int = 16
    replicas: int = 3
    seed: int = 1
    extra: dict = field(default_factory=dict)


def _graph_spec(family: str, config: DynamicSteadyStateConfig) -> GraphSpec:
    """The CLI's uniform ``n`` knob translated per family."""
    n = config.n
    if family == "random_regular":
        params = {"n": n, "degree": config.degree, "seed": config.seed}
    elif family == "hypercube":
        params = {"dimension": log2_ceil(n)}
    elif family == "torus":
        params = {"side": max(3, int(round(n ** 0.5))), "dimensions": 2}
    else:
        params = {"n": n}
    return GraphSpec(family, params)


def _dynamics(
    injector: str, rate: int, config: DynamicSteadyStateConfig
) -> DynamicsSpec | None:
    if rate == 0:
        return None  # the static baseline row
    if injector == "adversarial_peak":
        return DynamicsSpec("adversarial_peak", {"rate": rate})
    return DynamicsSpec(injector, {"rate": rate, "seed": config.seed})


def run_dynamic_steady_state(
    config: DynamicSteadyStateConfig,
) -> ExperimentResult:
    rows = []
    with timed() as clock:
        for family in config.families:
            graph_spec = _graph_spec(family, config)
            graph = graph_spec.build()
            tokens = config.tokens_per_node * graph.num_nodes
            for algorithm in config.algorithms:
                for injector in config.injectors:
                    for rate in config.rates:
                        dynamics = _dynamics(injector, rate, config)
                        if rate == 0 and injector != config.injectors[0]:
                            continue  # one shared static baseline
                        scenario = Scenario(
                            graph=graph_spec,
                            algorithm=AlgorithmSpec(
                                algorithm, seed=config.seed
                            ),
                            loads=LoadSpec(
                                "uniform_random",
                                {
                                    "total_tokens": tokens,
                                    "seed": config.seed,
                                },
                            ),
                            stop=StopRule.fixed(config.rounds),
                            replicas=config.replicas,
                            dynamics=dynamics,
                        )
                        outcome = scenario.run(graph=graph)
                        tails = [
                            steady_state_discrepancy(
                                result.discrepancy_history,
                                config.tail_window,
                            )
                            for result in outcome.results
                        ]
                        injected = [
                            result.record.summary.get(
                                "tokens_injected", 0
                            )
                            for result in outcome.results
                        ]
                        rows.append(
                            {
                                "family": family,
                                "n": graph.num_nodes,
                                "algorithm": algorithm,
                                "injector": (
                                    "static"
                                    if dynamics is None
                                    else injector
                                ),
                                "rate": rate,
                                "steady_state": round(
                                    sum(tails) / len(tails), 2
                                ),
                                "steady_state_max": round(
                                    max(tails), 2
                                ),
                                "tokens_injected_mean": int(
                                    sum(injected) / len(injected)
                                ),
                                "executor": outcome.executor,
                            }
                        )
    return ExperimentResult(
        experiment_id="E15",
        title=(
            "steady-state discrepancy vs injection rate "
            f"(n={config.n}, {config.rounds} rounds, tail "
            f"{config.tail_window})"
        ),
        rows=rows,
        columns=[
            "family",
            "n",
            "algorithm",
            "injector",
            "rate",
            "steady_state",
            "steady_state_max",
            "tokens_injected_mean",
            "executor",
        ],
        notes=[
            "steady_state is the tail-mean discrepancy averaged over "
            f"{config.replicas} replicas; rate 0 is the static "
            "baseline",
            "adversarial_peak concentrates every arrival on the "
            "currently max-loaded node (load-aware worst case)",
        ],
        metadata={"config": config.__dict__},
        elapsed_seconds=clock.elapsed,
    )
