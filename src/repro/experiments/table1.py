"""Experiment E1/E10 — regenerate Table 1 empirically.

For every implemented algorithm, on a chosen graph, we measure:

* the discrepancy plateau after ``O(T)`` rounds (Table 1, column 1);
* whether it reaches ``O(d)`` discrepancy given extra time
  (column 2) — probed with a ``4·d``-target run under a larger budget;
* the D / SL / NL / NC property flags — D/SL/NC from the algorithm's
  declared taxonomy, NL *verified at runtime* via the minimum load ever
  observed;
* the paper's predicted bound for the same setting, and the
  measured/predicted ratio.

The driver is built on the declarative Scenario API: one
:class:`~repro.scenarios.ScenarioSuite` sweeps every algorithm for the
after-``O(T)`` measurement and a second suite probes the time to
``O(d)``, both attached to a shared prebuilt graph.

The qualitative reproduction targets: cumulatively fair balancers beat
the adversarial round-fair baseline; the mimicking baseline sits at
``Θ(d)``; randomized edge rounding goes negative while nothing else
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.registry import all_names, make
from repro.analysis.convergence import horizon_for
from repro.analysis.theory import predicted_after_t
from repro.core.loads import point_mass
from repro.core.probes import ProbeSpec
from repro.experiments.base import ExperimentResult, timed
from repro.graphs.balancing import BalancingGraph
from repro.graphs.spectral import eigenvalue_gap
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    ScenarioSuite,
    StopRule,
)


@dataclass
class Table1Config:
    """Configuration for the Table 1 regeneration."""

    graph_family: str = "random_regular"
    n: int = 128
    degree: int = 8
    seed: int = 1
    tokens_per_node: int = 64
    horizon_multiplier: float = 1.0
    od_target_factor: int = 4
    od_budget_multiplier: float = 12.0
    algorithms: tuple[str, ...] = field(
        default_factory=lambda: tuple(all_names())
    )

    def graph_spec(self) -> GraphSpec:
        if self.graph_family == "random_regular":
            return GraphSpec(
                "random_regular",
                {"n": self.n, "degree": self.degree, "seed": self.seed},
            )
        if self.graph_family == "hypercube":
            from repro.graphs.balancing import log2_ceil

            return GraphSpec("hypercube", {"dimension": log2_ceil(self.n)})
        if self.graph_family == "torus":
            side = max(3, int(round(self.n ** 0.5)))
            return GraphSpec("torus", {"side": side, "dimensions": 2})
        return GraphSpec(self.graph_family, {"n": self.n})

    def build_graph(self) -> BalancingGraph:
        return self.graph_spec().build()


def run_table1(config: Table1Config | None = None) -> ExperimentResult:
    """Regenerate Table 1 on one graph (see module docstring)."""
    config = config or Table1Config()
    graph_spec = config.graph_spec()
    graph = graph_spec.build()
    gap = eigenvalue_gap(graph)
    tokens = config.tokens_per_node * graph.num_nodes
    initial = point_mass(graph.num_nodes, tokens)
    loads = LoadSpec("point_mass", {"tokens": tokens})
    algorithms = [
        AlgorithmSpec(name, seed=config.seed) for name in config.algorithms
    ]
    horizon = horizon_for(graph, initial, config.horizon_multiplier, gap)
    od_target = config.od_target_factor * graph.degree
    od_budget = horizon_for(
        graph, initial, config.od_budget_multiplier, gap
    )
    # The NL column needs only load extremes — a loads-only probe, so
    # every supported algorithm's measurement rides the structured
    # engine instead of being pinned dense by a legacy monitor.
    after_t_suite = ScenarioSuite.cartesian(
        graphs=graph_spec,
        algorithms=algorithms,
        loads=loads,
        stop=StopRule.fixed(horizon),
        probes=(ProbeSpec("load_bounds"),),
        name="table1/after_T",
    )
    od_suite = ScenarioSuite.cartesian(
        graphs=graph_spec,
        algorithms=algorithms,
        loads=loads,
        stop=StopRule.discrepancy(od_target, od_budget),
        probes=(ProbeSpec("load_bounds"),),
        name="table1/time_to_O(d)",
    )
    rows: list[dict] = []
    with timed() as clock:
        after_t = after_t_suite.run(graph=graph)
        od_runs = od_suite.run(graph=graph)
        for name, plateau_run, od_run in zip(
            config.algorithms, after_t, od_runs
        ):
            report = plateau_run.replica_summary()
            od_report = od_run.replica_summary()
            predicted = predicted_after_t(
                name,
                graph.num_nodes,
                graph.degree,
                gap,
                d_plus=graph.total_degree,
            )
            properties = make(name).properties
            rows.append(
                {
                    "algorithm": name,
                    "disc_after_T": report["plateau"],
                    "predicted": predicted,
                    "ratio": report["plateau"] / predicted,
                    "time_to_O(d)": od_report["time_to_target"],
                    "D": properties.deterministic,
                    "SL": properties.stateless,
                    "NL": report["min_load"] >= 0
                    and od_report["min_load"] >= 0,
                    "NC": properties.communication_free,
                    "min_load": min(
                        report["min_load"], od_report["min_load"]
                    ),
                }
            )
    notes = [
        f"graph={graph.name}, mu={gap:.4g}, T-horizon="
        f"{rows and 'per-row' or ''} K={tokens}",
        f"time_to_O(d) target = {config.od_target_factor}*d tokens, "
        f"budget {config.od_budget_multiplier}*T rounds "
        "(None = not reached, matching Table 1's '7' cells)",
    ]
    return ExperimentResult(
        experiment_id="E1",
        title="Table 1 regenerated: discrepancy after O(T), "
        "time to O(d), property flags",
        rows=rows,
        notes=notes,
        metadata={"graph": graph.describe(), "gap": gap},
        elapsed_seconds=clock.elapsed,
    )
