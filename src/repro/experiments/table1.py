"""Experiment E1/E10 — regenerate Table 1 empirically.

For every implemented algorithm, on a chosen graph, we measure:

* the discrepancy plateau after ``O(T)`` rounds (Table 1, column 1);
* whether it reaches ``O(d)`` discrepancy given extra time
  (column 2) — probed with a ``4·d``-target run under a larger budget;
* the D / SL / NL / NC property flags — D/SL/NC from the algorithm's
  declared taxonomy, NL *verified at runtime* via the minimum load ever
  observed;
* the paper's predicted bound for the same setting, and the
  measured/predicted ratio.

The qualitative reproduction targets: cumulatively fair balancers beat
the adversarial round-fair baseline; the mimicking baseline sits at
``Θ(d)``; randomized edge rounding goes negative while nothing else
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.registry import all_names, make
from repro.analysis.convergence import (
    measure_after_t,
    measure_time_to_target,
)
from repro.analysis.theory import predicted_after_t
from repro.core.loads import point_mass
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.balancing import BalancingGraph
from repro.graphs.spectral import eigenvalue_gap


@dataclass
class Table1Config:
    """Configuration for the Table 1 regeneration."""

    graph_family: str = "random_regular"
    n: int = 128
    degree: int = 8
    seed: int = 1
    tokens_per_node: int = 64
    horizon_multiplier: float = 1.0
    od_target_factor: int = 4
    od_budget_multiplier: float = 12.0
    algorithms: tuple[str, ...] = field(
        default_factory=lambda: tuple(all_names())
    )

    def build_graph(self) -> BalancingGraph:
        if self.graph_family == "random_regular":
            return families.random_regular(self.n, self.degree, self.seed)
        if self.graph_family == "hypercube":
            from repro.graphs.balancing import log2_ceil

            return families.hypercube(log2_ceil(self.n))
        if self.graph_family == "torus":
            side = max(3, int(round(self.n ** 0.5)))
            return families.torus(side, 2)
        if self.graph_family == "cycle":
            return families.cycle(self.n)
        return families.build(self.graph_family, n=self.n)


def run_table1(config: Table1Config | None = None) -> ExperimentResult:
    """Regenerate Table 1 on one graph (see module docstring)."""
    config = config or Table1Config()
    graph = config.build_graph()
    gap = eigenvalue_gap(graph)
    tokens = config.tokens_per_node * graph.num_nodes
    rows: list[dict] = []
    with timed() as clock:
        for name in config.algorithms:
            balancer = make(name, seed=config.seed)
            initial = point_mass(graph.num_nodes, tokens)
            report = measure_after_t(
                graph,
                balancer,
                initial,
                horizon_multiplier=config.horizon_multiplier,
                gap=gap,
            )
            od_target = config.od_target_factor * graph.degree
            od_report = measure_time_to_target(
                graph,
                make(name, seed=config.seed),
                point_mass(graph.num_nodes, tokens),
                od_target,
                max_multiplier=config.od_budget_multiplier,
                gap=gap,
            )
            predicted = predicted_after_t(
                name,
                graph.num_nodes,
                graph.degree,
                gap,
                d_plus=graph.total_degree,
            )
            properties = balancer.properties
            rows.append(
                {
                    "algorithm": name,
                    "disc_after_T": report.plateau_discrepancy,
                    "predicted": predicted,
                    "ratio": report.plateau_discrepancy / predicted,
                    "time_to_O(d)": od_report.time_to_target,
                    "D": properties.deterministic,
                    "SL": properties.stateless,
                    "NL": report.min_load_ever >= 0
                    and od_report.min_load_ever >= 0,
                    "NC": properties.communication_free,
                    "min_load": min(
                        report.min_load_ever, od_report.min_load_ever
                    ),
                }
            )
    notes = [
        f"graph={graph.name}, mu={gap:.4g}, T-horizon="
        f"{rows and 'per-row' or ''} K={tokens}",
        f"time_to_O(d) target = {config.od_target_factor}*d tokens, "
        f"budget {config.od_budget_multiplier}*T rounds "
        "(None = not reached, matching Table 1's '7' cells)",
    ]
    return ExperimentResult(
        experiment_id="E1",
        title="Table 1 regenerated: discrepancy after O(T), "
        "time to O(d), property flags",
        rows=rows,
        notes=notes,
        metadata={"graph": graph.describe(), "gap": gap},
        elapsed_seconds=clock.elapsed,
    )
