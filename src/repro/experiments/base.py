"""Shared experiment infrastructure.

Every experiment driver returns an :class:`ExperimentResult` — a list of
row dictionaries plus metadata — which renders as a paper-style text
table, a markdown table (for EXPERIMENTS.md), or JSON.  Experiments are
deterministic given their config (seeds included in the config).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.analysis.tables import render_markdown_table, render_table


@dataclass
class ExperimentResult:
    """Rows + metadata produced by one experiment driver."""

    experiment_id: str
    title: str
    rows: list[dict]
    columns: list[str] | None = None
    notes: list[str] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def to_text(self) -> str:
        parts = [
            render_table(
                self.rows,
                columns=self.columns,
                title=f"[{self.experiment_id}] {self.title}",
            )
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"### {self.experiment_id}: {self.title}", ""]
        parts.append(render_markdown_table(self.rows, self.columns))
        if self.notes:
            parts.append("")
            for note in self.notes:
                parts.append(f"- {note}")
        return "\n".join(parts)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "rows": self.rows,
                "notes": self.notes,
                "metadata": self.metadata,
            },
            indent=2,
            default=str,
        )


class timed:
    """Context manager stamping ``elapsed_seconds`` onto a result."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
