"""Run every experiment; entry point behind ``python -m repro``.

``run_all(fast=True)`` uses the default (laptop-second) configurations;
``fast=False`` enlarges the sweeps to the sizes reported in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablations import (
    AblationConfig,
    run_engine_throughput,
    run_selfloop_ablation,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.lower_bounds import (
    LowerBoundConfig,
    run_rotor_alternating,
    run_stateless,
    run_steady_state,
)
from repro.experiments.deviation import DeviationConfig, run_deviation
from repro.experiments.dynamic_steady_state import (
    DynamicSteadyStateConfig,
    run_dynamic_steady_state,
)
from repro.experiments.figures import TrajectoryConfig, run_trajectories
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.theorem23 import (
    Theorem23Config,
    run_cycle_sweep,
    run_expander_sweep,
    run_minimal_selfloop_sweep,
)
from repro.experiments.theorem33 import (
    Theorem33Config,
    run_good_balancers,
    run_potential_monotonicity,
)

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E1": lambda: run_table1(Table1Config()),
    "E2": lambda: run_expander_sweep(Theorem23Config()),
    "E3": lambda: run_cycle_sweep(Theorem23Config()),
    "E4": lambda: run_minimal_selfloop_sweep(Theorem23Config()),
    "E5": lambda: run_good_balancers(Theorem33Config()),
    "E6": lambda: run_steady_state(LowerBoundConfig()),
    "E7": lambda: run_stateless(LowerBoundConfig()),
    "E8": lambda: run_rotor_alternating(LowerBoundConfig()),
    "E11": lambda: run_selfloop_ablation(AblationConfig()),
    "E12": lambda: run_potential_monotonicity(Theorem33Config()),
    "E13": lambda: run_engine_throughput(n=256, rounds=100),
    "E14": lambda: run_deviation(DeviationConfig(n=64, rounds=150)),
    "E15": lambda: run_dynamic_steady_state(
        DynamicSteadyStateConfig(n=32, rounds=120, tail_window=30)
    ),
    "F1": lambda: run_trajectories(TrajectoryConfig(n=64, degree=6)),
}

FULL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    **EXPERIMENTS,
    "E1": lambda: run_table1(Table1Config(n=256, degree=8)),
    "E2": lambda: run_expander_sweep(
        Theorem23Config(expander_sizes=(64, 128, 256, 512))
    ),
    "E3": lambda: run_cycle_sweep(
        Theorem23Config(cycle_sizes=(17, 25, 33, 49, 65, 97, 129))
    ),
    "E13": lambda: run_engine_throughput(n=1024, rounds=200),
    "E14": lambda: run_deviation(DeviationConfig()),
    "E15": lambda: run_dynamic_steady_state(
        DynamicSteadyStateConfig(n=256, rounds=400, tail_window=100)
    ),
    "F1": lambda: run_trajectories(TrajectoryConfig()),
}


def run_all(
    fast: bool = True,
    only: tuple[str, ...] | None = None,
) -> list[ExperimentResult]:
    """Run all (or selected) experiments; returns their results."""
    table = EXPERIMENTS if fast else FULL_EXPERIMENTS
    selected = only or tuple(table)
    results = []
    for experiment_id in selected:
        if experiment_id not in table:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(table)}"
            )
        results.append(table[experiment_id]())
    return results
