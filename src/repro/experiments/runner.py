"""Run every experiment; entry point behind ``python -m repro``.

``run_all(fast=True)`` uses the default (laptop-second) configurations;
``fast=False`` enlarges the sweeps to the sizes reported in
EXPERIMENTS.md.  Both modes derive from one table of
:class:`ExperimentDef` entries — the fast and full configurations of an
experiment are two keyword-argument sets for the *same* config factory,
so they cannot drift apart structurally (a sync test enforces this).

``run_all(workers=N, cache=...)`` routes every suite-based driver
through the :mod:`repro.exec` subsystem via the ambient execution
context — no per-driver plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.ablations import (
    AblationConfig,
    run_engine_throughput,
    run_selfloop_ablation,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.lower_bounds import (
    LowerBoundConfig,
    run_rotor_alternating,
    run_stateless,
    run_steady_state,
)
from repro.experiments.datacenter_serving import (
    DatacenterServingConfig,
    run_datacenter_serving,
)
from repro.experiments.deviation import DeviationConfig, run_deviation
from repro.experiments.dynamic_steady_state import (
    DynamicSteadyStateConfig,
    run_dynamic_steady_state,
)
from repro.experiments.fault_recovery import (
    FaultRecoveryConfig,
    run_fault_recovery,
)
from repro.experiments.figures import TrajectoryConfig, run_trajectories
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.theorem23 import (
    Theorem23Config,
    run_cycle_sweep,
    run_expander_sweep,
    run_minimal_selfloop_sweep,
)
from repro.experiments.theorem33 import (
    Theorem33Config,
    run_good_balancers,
    run_potential_monotonicity,
)
from repro.experiments.topology_churn import (
    TopologyChurnConfig,
    run_topology_churn,
)


@dataclass(frozen=True)
class ExperimentDef:
    """One experiment: a driver plus its fast/full configurations.

    Attributes:
        runner: the driver function.
        config: config factory whose instance is the driver's single
            argument; None for drivers taking plain keyword arguments.
        fast: keyword arguments for the fast (default) configuration.
        full: keyword arguments for the full-size configuration, or
            None when the experiment has no enlarged variant (full mode
            then reuses the fast arguments).
    """

    runner: Callable[..., ExperimentResult]
    config: Callable[..., object] | None = None
    fast: dict = field(default_factory=dict)
    full: dict | None = None

    def kwargs(self, full: bool) -> dict:
        if full and self.full is not None:
            return dict(self.full)
        return dict(self.fast)

    def build(self, full: bool = False) -> ExperimentResult:
        kwargs = self.kwargs(full)
        if self.config is not None:
            return self.runner(self.config(**kwargs))
        return self.runner(**kwargs)


EXPERIMENT_DEFS: dict[str, ExperimentDef] = {
    "E1": ExperimentDef(
        run_table1, Table1Config, full={"n": 256, "degree": 8}
    ),
    "E2": ExperimentDef(
        run_expander_sweep,
        Theorem23Config,
        full={"expander_sizes": (64, 128, 256, 512)},
    ),
    "E3": ExperimentDef(
        run_cycle_sweep,
        Theorem23Config,
        full={"cycle_sizes": (17, 25, 33, 49, 65, 97, 129)},
    ),
    "E4": ExperimentDef(run_minimal_selfloop_sweep, Theorem23Config),
    "E5": ExperimentDef(run_good_balancers, Theorem33Config),
    "E6": ExperimentDef(run_steady_state, LowerBoundConfig),
    "E7": ExperimentDef(run_stateless, LowerBoundConfig),
    "E8": ExperimentDef(run_rotor_alternating, LowerBoundConfig),
    "E11": ExperimentDef(run_selfloop_ablation, AblationConfig),
    "E12": ExperimentDef(run_potential_monotonicity, Theorem33Config),
    "E13": ExperimentDef(
        run_engine_throughput,
        fast={"n": 256, "rounds": 100},
        full={"n": 1024, "rounds": 200},
    ),
    "E14": ExperimentDef(
        run_deviation,
        DeviationConfig,
        fast={"n": 64, "rounds": 150},
        full={},
    ),
    "E15": ExperimentDef(
        run_dynamic_steady_state,
        DynamicSteadyStateConfig,
        fast={"n": 32, "rounds": 120, "tail_window": 30},
        full={"n": 256, "rounds": 400, "tail_window": 100},
    ),
    "E16": ExperimentDef(
        run_datacenter_serving,
        DatacenterServingConfig,
        fast={
            "rounds": 80,
            "tail_window": 20,
            "offered_loads": (1.0, 8.0),
        },
        full={
            "fat_tree_k": 8,
            "leaves": 16,
            "spines": 8,
            "hosts_per_leaf": 12,
            "rounds": 400,
            "tail_window": 100,
            "offered_loads": (1.0, 4.0, 16.0, 64.0),
            "traffic_models": (
                "poisson_arrivals",
                "pareto_flows",
                "diurnal",
                "hotspot_shift",
                "correlated_burst",
            ),
            "replicas": 3,
        },
    ),
    "E17": ExperimentDef(
        run_fault_recovery,
        FaultRecoveryConfig,
        fast={
            "n": 32,
            "rounds": 120,
            "tail_window": 30,
            "leaves": 4,
            "spines": 2,
            "hosts_per_leaf": 3,
            "replicas": 2,
        },
        full={
            "n": 256,
            "fat_tree_k": 8,
            "leaves": 16,
            "spines": 8,
            "hosts_per_leaf": 12,
            "rounds": 400,
            "tail_window": 100,
            "fail_rates": (0.02, 0.05, 0.1, 0.2, 0.4),
        },
    ),
    "E18": ExperimentDef(
        run_topology_churn,
        TopologyChurnConfig,
        fast={
            "n": 32,
            "rounds": 120,
            "tail_window": 30,
            "leaves": 4,
            "spines": 2,
            "hosts_per_leaf": 3,
            "replicas": 2,
        },
        full={
            "n": 256,
            "fat_tree_k": 8,
            "leaves": 16,
            "spines": 8,
            "hosts_per_leaf": 12,
            "rounds": 400,
            "tail_window": 100,
            "churn_rates": (0.01, 0.02, 0.05, 0.1, 0.2),
        },
    ),
    "F1": ExperimentDef(
        run_trajectories,
        TrajectoryConfig,
        fast={"n": 64, "degree": 6},
        full={},
    ),
}

# Experiments whose full-size configuration actually differs.
FULL_OVERRIDDEN: tuple[str, ...] = tuple(
    sorted(
        experiment_id
        for experiment_id, definition in EXPERIMENT_DEFS.items()
        if definition.full is not None
    )
)


def _thunks(full: bool) -> dict[str, Callable[[], ExperimentResult]]:
    return {
        experiment_id: (
            lambda definition=definition: definition.build(full)
        )
        for experiment_id, definition in EXPERIMENT_DEFS.items()
    }


# Backwards-compatible views of the single definition table.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = _thunks(False)
FULL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = _thunks(
    True
)


def run_all(
    fast: bool = True,
    only: tuple[str, ...] | None = None,
    *,
    workers: int | None = None,
    cache=None,
) -> list[ExperimentResult]:
    """Run all (or selected) experiments; returns their results.

    ``workers``/``cache`` configure the ambient
    :mod:`repro.exec` context for the duration of the run, so every
    ``ScenarioSuite``-based driver shards, fans out, and caches
    without knowing about it.
    """
    from repro.exec import configure

    selected = only or tuple(EXPERIMENT_DEFS)
    for experiment_id in selected:
        if experiment_id not in EXPERIMENT_DEFS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(EXPERIMENT_DEFS)}"
            )
    results = []
    with configure(workers=workers, cache=cache):
        for experiment_id in selected:
            results.append(
                EXPERIMENT_DEFS[experiment_id].build(full=not fast)
            )
    return results
