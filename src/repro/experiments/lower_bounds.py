"""Experiments E6/E7/E8 — the Section 4 lower bounds, executed.

Each construction is built, run on the *actual engine* (not just
analyzed), and checked against its predicted stuck discrepancy:

* E6 (Thm 4.1): steady-state round-fair balancer on cycles and tori —
  loads provably never change; discrepancy ``Ω(d·diam)``.
* E7 (Thm 4.2): stateless algorithms on the ⌊d/2⌋-clique circulant —
  the adversarial loads are a fixed point; discrepancy ``Θ(d)``.
* E8 (Thm 4.3): rotor-router without self-loops on odd cycles and the
  Petersen graph — global state alternates with period 2; discrepancy
  ``Ω(d·φ(G))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.monitors import PeriodDetector
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.lower_bounds.rotor_alternating import (
    build_rotor_alternating_instance,
    verify_period_two,
)
from repro.lower_bounds.stateless_clique import (
    build_stateless_instance,
    clique_is_complete,
    is_fixed_point,
)
from repro.lower_bounds.steady_state import (
    build_steady_state_instance,
    per_node_flow_spread,
)


@dataclass
class LowerBoundConfig:
    run_rounds: int = 200
    cycle_n: int = 32
    torus_side: int = 6
    stateless_n: int = 48
    stateless_degree: int = 12
    odd_cycle_n: int = 33
    stateless_algorithms: tuple[str, ...] = (
        "send_floor",
        "send_rounded",
        "arbitrary_rounding_fixed",
    )


def run_steady_state(
    config: LowerBoundConfig | None = None,
) -> ExperimentResult:
    """E6: Theorem 4.1 on a cycle and a 2-d torus."""
    config = config or LowerBoundConfig()
    graphs = [
        families.cycle(config.cycle_n, num_self_loops=0),
        families.torus(config.torus_side, 2, num_self_loops=0),
        # Degree and diameter independently tunable: shows the bound is
        # genuinely d * diam, not just one of the factors.
        families.ring_of_cliques(6, 4, num_self_loops=0),
    ]
    rows: list[dict] = []
    with timed() as clock:
        for graph in graphs:
            instance = build_steady_state_instance(graph)
            simulator = Simulator(
                graph,
                instance.balancer,
                instance.initial_loads,
                record_history=False,
            )
            unchanged = True
            for _ in range(config.run_rounds):
                loads = simulator.step()
                if not np.array_equal(loads, instance.initial_loads):
                    unchanged = False
                    break
            rows.append(
                {
                    "graph": graph.name,
                    "diam": instance.diameter,
                    "d": graph.degree,
                    "flow_spread(<=1)": per_node_flow_spread(instance),
                    "loads_invariant": unchanged,
                    "discrepancy": instance.actual_discrepancy,
                    "predicted d*(diam-1)": instance.predicted_discrepancy,
                }
            )
    return ExperimentResult(
        experiment_id="E6",
        title="Theorem 4.1: round-fair (not cumulatively fair) stuck at "
        "Ω(d·diam)",
        rows=rows,
        notes=[
            "loads_invariant must be 'yes'; discrepancy >= predicted",
        ],
        elapsed_seconds=clock.elapsed,
    )


def run_stateless(
    config: LowerBoundConfig | None = None,
) -> ExperimentResult:
    """E7: Theorem 4.2 — stateless schemes stuck at Θ(d)."""
    config = config or LowerBoundConfig()
    instance = build_stateless_instance(
        config.stateless_n, config.stateless_degree
    )
    rows: list[dict] = []
    with timed() as clock:
        for name in config.stateless_algorithms:
            balancer = make(name)
            fixed = is_fixed_point(instance, balancer, rounds=16)
            rows.append(
                {
                    "algorithm": name,
                    "clique_size": len(instance.clique),
                    "stuck_discrepancy": instance.predicted_discrepancy,
                    "fixed_point": fixed,
                    "lower_bound_c*d": instance.graph.degree // 2 - 1,
                }
            )
    return ExperimentResult(
        experiment_id="E7",
        title="Theorem 4.2: stateless algorithms stuck at Θ(d) "
        "on the ⌊d/2⌋-clique circulant",
        rows=rows,
        notes=[
            f"clique check: {clique_is_complete(instance)}; "
            "fixed_point must be 'yes' for every stateless algorithm",
        ],
        metadata={"graph": instance.graph.describe()},
        elapsed_seconds=clock.elapsed,
    )


def run_rotor_alternating(
    config: LowerBoundConfig | None = None,
) -> ExperimentResult:
    """E8: Theorem 4.3 — rotor-router without self-loops oscillates."""
    config = config or LowerBoundConfig()
    graphs = [
        families.cycle(config.odd_cycle_n, num_self_loops=0),
        families.petersen(num_self_loops=0),
    ]
    rows: list[dict] = []
    with timed() as clock:
        for graph in graphs:
            instance = build_rotor_alternating_instance(graph)
            alternates = verify_period_two(instance, cycles=8)
            detector = PeriodDetector()
            simulator = Simulator(
                graph,
                instance.balancer,
                instance.initial_loads,
                probes=(detector,),
                record_history=True,
            )
            simulator.run(12)
            rows.append(
                {
                    "graph": graph.name,
                    "phi": instance.phi,
                    "alternates(period2)": alternates,
                    "detected_period": detector.period,
                    "discrepancy": max(simulator.discrepancy_history),
                    "predicted d*phi": instance.predicted_discrepancy,
                }
            )
    return ExperimentResult(
        experiment_id="E8",
        title="Theorem 4.3: rotor-router with d°=0 locked in a period-2 "
        "state at Ω(d·φ(G))",
        rows=rows,
        notes=[
            "alternates must be 'yes'; discrepancy >= predicted d*phi",
        ],
        elapsed_seconds=clock.elapsed,
    )
