"""Figure-equivalent series: discrepancy-vs-time for every algorithm.

The paper has no figures; a systems reader reproducing it wants the
obvious one anyway — discrepancy trajectories of all algorithms on one
instance, on a log-y scale.  :func:`run_trajectories` produces the
aligned series (one column per algorithm) and can dump them as CSV for
any plotting stack; the text rendering prints sampled checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.algorithms.registry import all_names, make
from repro.analysis.convergence import horizon_for
from repro.analysis.export import write_csv
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap


@dataclass
class TrajectoryConfig:
    graph_family: str = "random_regular"
    n: int = 128
    degree: int = 8
    seed: int = 1
    tokens_per_node: int = 64
    horizon_multiplier: float = 1.0
    checkpoints: int = 12
    algorithms: tuple[str, ...] = field(
        default_factory=lambda: tuple(all_names())
    )


def _build_graph(config: TrajectoryConfig):
    if config.graph_family == "random_regular":
        return families.random_regular(
            config.n, config.degree, config.seed
        )
    if config.graph_family == "cycle":
        return families.cycle(config.n)
    if config.graph_family == "torus":
        side = max(3, int(round(config.n ** 0.5)))
        return families.torus(side, 2)
    return families.build(config.graph_family, n=config.n)


def run_trajectories(
    config: TrajectoryConfig | None = None,
    csv_path: str | Path | None = None,
) -> ExperimentResult:
    """Aligned discrepancy-vs-round series for all algorithms.

    The returned rows are sampled checkpoints (for the text table);
    the full per-round series is in ``metadata['series']`` and,
    optionally, in the CSV at ``csv_path``.
    """
    config = config or TrajectoryConfig()
    graph = _build_graph(config)
    gap = eigenvalue_gap(graph)
    initial = point_mass(
        graph.num_nodes, config.tokens_per_node * graph.num_nodes
    )
    rounds = horizon_for(
        graph, initial, config.horizon_multiplier, gap
    )
    series: dict[str, list[int]] = {}
    with timed() as clock:
        for name in config.algorithms:
            simulator = Simulator(
                graph, make(name, seed=config.seed), initial.copy()
            )
            simulator.run(rounds)
            series[name] = simulator.discrepancy_history
    stride = max(1, rounds // max(config.checkpoints - 1, 1))
    sample_points = list(range(0, rounds + 1, stride))
    if sample_points[-1] != rounds:
        sample_points.append(rounds)
    rows = [
        {
            "round": t,
            **{name: series[name][t] for name in config.algorithms},
        }
        for t in sample_points
    ]
    if csv_path is not None:
        full_rows = [
            {
                "round": t,
                **{name: series[name][t] for name in config.algorithms},
            }
            for t in range(rounds + 1)
        ]
        write_csv(full_rows, csv_path)
    return ExperimentResult(
        experiment_id="F1",
        title=f"Discrepancy vs round on {graph.name} "
        f"(K={initial.max()}, T={rounds})",
        rows=rows,
        notes=[
            "full per-round series in metadata['series']"
            + (f"; CSV written to {csv_path}" if csv_path else ""),
        ],
        metadata={"series": series, "gap": gap, "rounds": rounds},
        elapsed_seconds=clock.elapsed,
    )
