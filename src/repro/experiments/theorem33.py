"""Experiment E5/E12 — Theorem 3.3: good s-balancers reach O(d).

Theorem 3.3: a good s-balancer reaches discrepancy
``(2δ+1)d+ + 4d°`` within ``O(log K + (d/s)·log²n/μ)`` rounds.  Two
sweeps:

* **s-sweep at fixed μ**: the generalized ROTOR-ROUTER* with
  ``s ∈ {1, 2, ..., d}`` special self-loops on *one* graph — Theorem
  3.3 predicts the time to reach the bound is non-increasing in ``s``
  (the ``d/s`` factor), cleanly isolated because the graph (hence μ)
  never changes.
* **SEND([x/d+]) at several d+**: the paper's Observation 3.2 cases
  ``d+ > 2d`` and ``d+ >= 3d``.

We record both the formal target ``(2δ+1)d+ + 4d°`` and a stricter
``2·d+`` target, plus (E12) that the φ/φ′ potentials never increase
along the run (Lemmas 3.5/3.7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.rotor_router_star import RotorRouterStar
from repro.algorithms.send_rounded import (
    SendRounded,
    effective_self_preference,
)
from repro.analysis.convergence import measure_time_to_target
from repro.analysis.theory import good_balancer_bound
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.core.potentials import PotentialMonitor
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap


@dataclass
class Theorem33Config:
    n: int = 128
    degree: int = 6
    seed: int = 11
    tokens_per_node: int = 64
    s_values: tuple[int, ...] = (1, 2, 4, 6)
    self_loop_factors: tuple[float, ...] = (1.5, 2.0, 3.0)
    budget_multiplier: float = 40.0


def _star_cases(config: Theorem33Config):
    """Generalized ROTOR-ROUTER* cases on one fixed graph."""
    graph = families.random_regular(config.n, config.degree, config.seed)
    return [
        (
            f"rotor_router_star[s={s}]",
            graph,
            RotorRouterStar(num_special=s),
            s,
        )
        for s in config.s_values
        if s <= graph.num_self_loops
    ]


def _send_rounded_cases(config: Theorem33Config):
    """SEND([x/d+]) cases across self-loop counts (d+ varies)."""
    cases = []
    for factor in config.self_loop_factors:
        loops = max(int(round(factor * config.degree)), config.degree)
        graph = families.random_regular(
            config.n, config.degree, config.seed, num_self_loops=loops
        )
        s = effective_self_preference(graph.degree, graph.total_degree)
        cases.append(
            (
                f"send_rounded[d°={loops}]",
                graph,
                SendRounded(),
                max(s, 1),
            )
        )
    return cases


def run_good_balancers(
    config: Theorem33Config | None = None,
) -> ExperimentResult:
    """E5: time for good s-balancers to reach the Theorem 3.3 bound."""
    config = config or Theorem33Config()
    rows: list[dict] = []
    with timed() as clock:
        for label, graph, balancer, s in (
            _star_cases(config) + _send_rounded_cases(config)
        ):
            gap = eigenvalue_gap(graph)
            bound = int(
                good_balancer_bound(
                    graph.total_degree, graph.num_self_loops, delta=1
                )
            )
            strict_target = 2 * graph.total_degree
            initial = point_mass(
                graph.num_nodes,
                config.tokens_per_node * graph.num_nodes,
            )
            report = measure_time_to_target(
                graph,
                balancer,
                initial,
                strict_target,
                max_multiplier=config.budget_multiplier,
                gap=gap,
            )
            rows.append(
                {
                    "algorithm": label,
                    "d_plus": graph.total_degree,
                    "s": s,
                    "mu": gap,
                    "bound(2δ+1)d++4d°": bound,
                    "target(2d+)": strict_target,
                    "final_disc": report.final_discrepancy,
                    "time_to_target": report.time_to_target,
                    "reached_bound": report.final_discrepancy <= bound,
                }
            )
    notes = [
        "Theorem 3.3: every row must satisfy reached_bound; within the "
        "rotor_router_star[s=...] block (fixed graph, fixed mu) "
        "time_to_target must be non-increasing in s",
    ]
    return ExperimentResult(
        experiment_id="E5",
        title="Theorem 3.3: good s-balancers reach O(d) discrepancy; "
        "speed vs s",
        rows=rows,
        notes=notes,
        elapsed_seconds=clock.elapsed,
    )


def run_potential_monotonicity(
    config: Theorem33Config | None = None,
    rounds: int = 400,
) -> ExperimentResult:
    """E12: Lemmas 3.5/3.7 — potentials never increase along runs."""
    config = config or Theorem33Config()
    rows: list[dict] = []
    with timed() as clock:
        cases = _star_cases(config)[:2] + _send_rounded_cases(config)[:2]
        for label, graph, balancer, s in cases:
            initial = point_mass(
                graph.num_nodes,
                config.tokens_per_node * graph.num_nodes,
            )
            average = initial.sum() / graph.num_nodes
            c_center = int(average // graph.total_degree)
            c_values = sorted(
                {max(c, 0) for c in (c_center, c_center + 1, c_center + 2)}
            )
            monitor = PotentialMonitor(c_values, s)
            simulator = Simulator(
                graph, balancer, initial, probes=(monitor,)
            )
            simulator.run(rounds)
            rows.append(
                {
                    "algorithm": label,
                    "c_values": str(c_values),
                    "phi_monotone": all(
                        monitor.phi_is_monotone(c) for c in c_values
                    ),
                    "phi_prime_monotone": all(
                        monitor.phi_prime_is_monotone(c) for c in c_values
                    ),
                    "phi_final": monitor.phi_history[c_values[0]][-1],
                }
            )
    return ExperimentResult(
        experiment_id="E12",
        title="Lemmas 3.5/3.7: potential monotonicity along good "
        "s-balancer runs",
        rows=rows,
        notes=["every *_monotone column must be 'yes'"],
        elapsed_seconds=clock.elapsed,
    )
