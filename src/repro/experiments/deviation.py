"""Experiment E14 — the proof's engine-room quantity, measured.

Theorem 2.3's proof controls ``‖x_t - y_t‖∞`` (discrete vs continuous
trajectory from the same start) through the corrective terms
``‖ε_t‖∞ <= δ·d+ + r``.  We measure this deviation directly:

* for cumulatively fair balancers it must stay *bounded* — a constant
  number of error scales, independent of t and of K;
* for the adversarial fixed-priority member of [17]'s class it drifts
  far beyond a constant number of error scales.

This is the sharpest mechanically checkable form of "the cumulative
fairness hypothesis is what makes Theorem 2.3 tick".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.registry import make
from repro.analysis.deviation import deviation_report
from repro.core.loads import point_mass
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap


@dataclass
class DeviationConfig:
    n: int = 128
    degree: int = 6
    seed: int = 19
    tokens_per_node: int = 64
    rounds: int = 300
    algorithms: tuple[str, ...] = (
        "rotor_router",
        "send_floor",
        "send_rounded",
        "rotor_router_star",
        "arbitrary_rounding_fixed",
    )


def run_deviation(
    config: DeviationConfig | None = None,
) -> ExperimentResult:
    """E14: max ‖discrete − continuous‖∞ in units of δ·d+ + r."""
    config = config or DeviationConfig()
    graph = families.random_regular(
        config.n, config.degree, config.seed
    )
    gap = eigenvalue_gap(graph)
    rows: list[dict] = []
    with timed() as clock:
        for name in config.algorithms:
            report = deviation_report(
                graph,
                make(name, seed=config.seed),
                point_mass(
                    graph.num_nodes,
                    config.tokens_per_node * graph.num_nodes,
                ),
                config.rounds,
            )
            rows.append(
                {
                    "algorithm": name,
                    "max_deviation": report.max_deviation,
                    "final_deviation": report.final_deviation,
                    "error_scale(δd++r)": report.error_scale,
                    "max/scale": report.normalized_max,
                }
            )
    notes = [
        f"graph={graph.name}, mu={gap:.4g}, rounds={config.rounds}",
        "cumulatively fair rows should sit at O(1) error scales; the "
        "adversarial arbitrary_rounding_fixed row should be the "
        "largest deterministic deviation",
    ]
    return ExperimentResult(
        experiment_id="E14",
        title="Deviation from the continuous process "
        "(Theorem 2.3's proof quantity)",
        rows=rows,
        notes=notes,
        elapsed_seconds=clock.elapsed,
    )
