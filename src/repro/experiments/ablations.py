"""Experiments E11/E13 — ablations and infrastructure scaling.

* **E11 (self-loop ablation)** answers the paper's concluding open
  question 1 empirically: *how many self-loops are necessary?*  We run
  the rotor-router with ``d° ∈ {0, 1, ⌈d/2⌉, d, 2d}`` on an expander
  and on a cycle and record the post-``T`` discrepancy.  Theorem 4.3
  predicts catastrophic behaviour at ``d° = 0`` on odd cycles; the
  upper bounds need ``d° >= d``; the interesting regime is in between.
* **E13 (throughput)** measures engine rounds/second per algorithm —
  the harness's own scalability, reported for reproducibility context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.algorithms.registry import all_names, make
from repro.analysis.convergence import measure_after_t
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap
from repro.lower_bounds.rotor_alternating import (
    build_rotor_alternating_instance,
)


@dataclass
class AblationConfig:
    n: int = 128
    degree: int = 6
    seed: int = 5
    tokens_per_node: int = 64
    cycle_n: int = 33


def _self_loop_grid(degree: int) -> list[int]:
    grid = sorted({0, 1, -(-degree // 2), degree, 2 * degree})
    return [value for value in grid if value >= 0]


def run_selfloop_ablation(
    config: AblationConfig | None = None,
) -> ExperimentResult:
    """E11: post-T discrepancy of the rotor-router vs self-loop count."""
    config = config or AblationConfig()
    rows: list[dict] = []
    with timed() as clock:
        for family, builder in (
            (
                "expander",
                lambda loops: families.random_regular(
                    config.n,
                    config.degree,
                    config.seed,
                    num_self_loops=loops,
                ),
            ),
            (
                "odd_cycle",
                lambda loops: families.cycle(
                    config.cycle_n, num_self_loops=loops
                ),
            ),
        ):
            degree = config.degree if family == "expander" else 2
            for loops in _self_loop_grid(degree):
                graph = builder(loops)
                gap = eigenvalue_gap(graph)
                initial = point_mass(
                    graph.num_nodes,
                    config.tokens_per_node * graph.num_nodes,
                )
                report = measure_after_t(
                    graph, make("rotor_router"), initial, gap=gap
                )
                worst_case = None
                if loops == 0:
                    instance = build_rotor_alternating_instance(
                        builder(0)
                    )
                    worst_case = int(
                        instance.initial_loads.max()
                        - instance.initial_loads.min()
                    )
                rows.append(
                    {
                        "family": family,
                        "d": graph.degree,
                        "d_self": loops,
                        "d_plus": graph.total_degree,
                        "mu": gap,
                        "disc_after_T": report.plateau_discrepancy,
                        "worst_case_stuck": worst_case,
                    }
                )
    notes = [
        "disc_after_T: benign start (point mass, default rotors); "
        "worst_case_stuck: the Theorem 4.3 adversarial instance, which "
        "exists only at d_self=0 — its discrepancy persists forever",
        "Thm 2.3's guarantees need d_self >= d; the adversarial lock-in "
        "disappears as soon as self-loops are added",
    ]
    return ExperimentResult(
        experiment_id="E11",
        title="Self-loop ablation (open question 1): rotor-router "
        "discrepancy vs d°",
        rows=rows,
        notes=notes,
        elapsed_seconds=clock.elapsed,
    )


def run_engine_throughput(
    n: int = 1024,
    degree: int = 8,
    rounds: int = 200,
    seed: int = 3,
) -> ExperimentResult:
    """E13: engine rounds/second for every registered algorithm."""
    graph = families.random_regular(n, degree, seed)
    rows: list[dict] = []
    with timed() as clock:
        for name in all_names():
            balancer = make(name, seed=seed)
            initial = point_mass(n, 64 * n)
            simulator = Simulator(
                graph,
                balancer,
                initial,
                record_history=False,
            )
            start = time.perf_counter()
            simulator.run(rounds)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "algorithm": name,
                    "n": n,
                    "rounds": rounds,
                    "seconds": elapsed,
                    "rounds_per_sec": rounds / elapsed,
                }
            )
    return ExperimentResult(
        experiment_id="E13",
        title="Engine throughput (rounds/second, n=%d)" % n,
        rows=rows,
        elapsed_seconds=clock.elapsed,
    )
