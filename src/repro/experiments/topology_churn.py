"""E18 — self-stabilization under topology churn.

E17 asks what faults *on* the fabric cost; this driver asks what
changes *of* the fabric cost.  With an ``edge_churn`` topology
schedule attached, edges of the initial graph keep failing and
rejoining while the process runs — the engines rewire ports in place
and the balancers refresh only dirty rows — and we measure, on the
four churn-relevant topologies (``cycle``, ``torus`` and both
datacenter fabrics) × {SEND, rotor-router} × churn rate:

* **baseline** — the churn-free tail-mean discrepancy (the plateau
  the scheme reaches on a static fabric);
* **steady_floor** — where the discrepancy settles when edges churn
  every round (``edge_churn`` active for the whole run): the price of
  a permanently shifting fabric;
* **recovery_rounds** — with the same churn active only until mid-run
  (``until=rounds//2``; already-severed edges still rejoin on
  schedule), how many rounds after the fabric heals until the
  discrepancy is back at the baseline plateau.  Replicas that never
  recover inside the run are censored at the remaining-round count
  and reported via ``recovered``.

Qualitative predictions the smoke tests assert: at rate 0 the floor
equals the baseline; the floor grows with the churn rate; recovery
time is finite (the schemes re-converge once the fabric stops
moving).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.metrics import steady_state_discrepancy
from repro.experiments.base import ExperimentResult, timed
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.topology import TopologySpec


@dataclass
class TopologyChurnConfig:
    """Sizes kept laptop-second by default; FULL enlarges them."""

    n: int = 64
    fat_tree_k: int = 4
    leaves: int = 6
    spines: int = 3
    hosts_per_leaf: int = 4
    rounds: int = 200
    tail_window: int = 50
    churn_rates: tuple[float, ...] = (0.02, 0.1)
    downtime: int = 5
    algorithms: tuple[str, ...] = ("send_floor", "rotor_router")
    families: tuple[str, ...] = (
        "cycle",
        "torus",
        "fat_tree",
        "leaf_spine",
    )
    tokens_per_node: int = 16
    replicas: int = 3
    seed: int = 1
    extra: dict = field(default_factory=dict)


def _graph_spec(family: str, config: TopologyChurnConfig) -> GraphSpec:
    """The CLI's uniform ``n`` knob translated per family."""
    if family == "fat_tree":
        return GraphSpec("fat_tree", {"k": config.fat_tree_k})
    if family == "leaf_spine":
        return GraphSpec(
            "leaf_spine",
            {
                "leaves": config.leaves,
                "spines": config.spines,
                "hosts_per_leaf": config.hosts_per_leaf,
            },
        )
    if family == "torus":
        side = max(3, int(round(config.n ** 0.5)))
        return GraphSpec("torus", {"side": side, "dimensions": 2})
    return GraphSpec(family, {"n": config.n})


def _scenario(
    graph_spec: GraphSpec,
    algorithm: str,
    tokens: int,
    topology: TopologySpec | None,
    config: TopologyChurnConfig,
) -> Scenario:
    return Scenario(
        graph=graph_spec,
        algorithm=AlgorithmSpec(algorithm, seed=config.seed),
        loads=LoadSpec(
            "uniform_random",
            {"total_tokens": tokens, "seed": config.seed},
        ),
        stop=StopRule.fixed(config.rounds),
        replicas=config.replicas,
        topology=topology,
    )


def _recovery_rounds(
    history: list[int], heal_round: int, target: int
) -> tuple[int, bool]:
    """Rounds after ``heal_round`` until discrepancy <= ``target``.

    ``history[t - 1]`` is the discrepancy after round ``t``; the first
    qualifying round at or after healing counts as recovered.  Censored
    (never recovered) replicas report the full remaining span.
    """
    for t in range(heal_round, len(history) + 1):
        if history[t - 1] <= target:
            return max(0, t - heal_round), True
    return len(history) - heal_round, False


def run_topology_churn(config: TopologyChurnConfig) -> ExperimentResult:
    rows = []
    heal_round = config.rounds // 2
    with timed() as clock:
        for family in config.families:
            graph_spec = _graph_spec(family, config)
            graph = graph_spec.build()
            tokens = config.tokens_per_node * graph.num_nodes
            for algorithm in config.algorithms:
                baseline = _scenario(
                    graph_spec, algorithm, tokens, None, config
                ).run(graph=graph)
                base_tails = [
                    steady_state_discrepancy(
                        result.discrepancy_history, config.tail_window
                    )
                    for result in baseline.results
                ]
                base_mean = sum(base_tails) / len(base_tails)
                targets = [
                    int(math.ceil(tail)) for tail in base_tails
                ]
                rows.append(
                    {
                        "family": family,
                        "n": graph.num_nodes,
                        "algorithm": algorithm,
                        "churn_rate": 0.0,
                        "baseline": round(base_mean, 2),
                        "steady_floor": round(base_mean, 2),
                        "recovery_rounds": 0.0,
                        "recovered": config.replicas,
                        "edges_severed_mean": 0,
                        "executor": baseline.executor,
                    }
                )
                for rate in config.churn_rates:
                    floor_spec = TopologySpec(
                        "edge_churn",
                        {
                            "rate": rate,
                            "downtime": config.downtime,
                            "seed": config.seed,
                        },
                    )
                    floor = _scenario(
                        graph_spec, algorithm, tokens, floor_spec, config
                    ).run(graph=graph)
                    floor_tails = [
                        steady_state_discrepancy(
                            result.discrepancy_history,
                            config.tail_window,
                        )
                        for result in floor.results
                    ]
                    severed = [
                        result.record.summary.get("edges_severed", 0)
                        for result in floor.results
                    ]
                    heal_spec = TopologySpec(
                        "edge_churn",
                        {
                            "rate": rate,
                            "downtime": config.downtime,
                            "until": heal_round,
                            "seed": config.seed,
                        },
                    )
                    healing = _scenario(
                        graph_spec, algorithm, tokens, heal_spec, config
                    ).run(graph=graph)
                    recoveries = [
                        _recovery_rounds(
                            result.discrepancy_history,
                            heal_round,
                            target,
                        )
                        for result, target in zip(
                            healing.results, targets
                        )
                    ]
                    rows.append(
                        {
                            "family": family,
                            "n": graph.num_nodes,
                            "algorithm": algorithm,
                            "churn_rate": rate,
                            "baseline": round(base_mean, 2),
                            "steady_floor": round(
                                sum(floor_tails) / len(floor_tails), 2
                            ),
                            "recovery_rounds": round(
                                sum(r for r, _ in recoveries)
                                / len(recoveries),
                                1,
                            ),
                            "recovered": sum(
                                1 for _, ok in recoveries if ok
                            ),
                            "edges_severed_mean": int(
                                sum(severed) / len(severed)
                            ),
                            "executor": floor.executor,
                        }
                    )
    return ExperimentResult(
        experiment_id="E18",
        title=(
            "discrepancy recovery and steady floor vs edge-churn "
            f"rate (n={config.n}, {config.rounds} rounds, heal at "
            f"{heal_round})"
        ),
        rows=rows,
        columns=[
            "family",
            "n",
            "algorithm",
            "churn_rate",
            "baseline",
            "steady_floor",
            "recovery_rounds",
            "recovered",
            "edges_severed_mean",
            "executor",
        ],
        notes=[
            "steady_floor is the tail-mean discrepancy with edge_churn "
            "active all run; baseline is the static-fabric plateau",
            "recovery_rounds averages, over replicas, the rounds after "
            "churn stops (until=rounds/2; severed edges still rejoin "
            "on schedule) until the discrepancy is back at that "
            "replica's static plateau; 'recovered' counts replicas "
            "that got there within the run",
        ],
        metadata={"config": config.__dict__},
        elapsed_seconds=clock.elapsed,
    )
