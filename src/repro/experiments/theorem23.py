"""Experiments E2/E3/E4/E9 — Theorem 2.3's three discrepancy regimes.

* **E2 (expanders, claim i)**: on random d-regular graphs the
  post-``T`` discrepancy of cumulatively fair balancers should track
  ``d·√(log n/μ)``, while the adversarial round-fair baseline tracks
  the much larger ``d·log n/μ``.
* **E3 (cycles, claim ii)**: on cycles ``μ = Θ(1/n²)`` makes claim (i)
  useless; claim (ii) predicts ``O(d·√n)``.  We sweep cycle sizes and
  fit the scaling exponent of discrepancy vs n — the reproduction
  succeeds if it is ≈ 0.5 (and nowhere near the ``n²`` of claim iii).
* **E4 (minimal self-loops, claim iii)**: with only ``d° = 1``
  self-loop claims (i)/(ii) don't apply; we check the discrepancy still
  sits below ``d·log n/μ``.
* **E9 (separation)**: same instances, cumulatively-fair vs adversarial
  arbitrary rounding — who wins and by how much.

Each sweep assembles **one** :class:`~repro.scenarios.ScenarioSuite`
over serializable :class:`~repro.scenarios.GraphSpec`\\ s and executes
it in a single ``suite.run()`` call, so the whole grid inherits the
ambient :mod:`repro.exec` configuration — ``repro-lb run --workers 4``
fans the measurements out over a process pool, and a result cache
skips everything already computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.convergence import ConvergenceReport, horizon_for
from repro.analysis.sweeps import fit_power_law
from repro.analysis.theory import (
    cumulative_fair_bound_i,
    cumulative_fair_bound_ii,
    cumulative_fair_bound_iii,
    rabani_bound,
)
from repro.core.loads import point_mass
from repro.core.probes import ProbeSpec
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)


@dataclass
class Theorem23Config:
    """Shared configuration for the Theorem 2.3 sweeps."""

    expander_sizes: tuple[int, ...] = (64, 128, 256)
    expander_degree: int = 6
    cycle_sizes: tuple[int, ...] = (17, 25, 33, 49, 65)
    tokens_per_node: int = 64
    seed: int = 7
    algorithms: tuple[str, ...] = field(
        default_factory=lambda: ("rotor_router", "send_floor")
    )
    adversary: str = "arbitrary_rounding_fixed"


def _scenario(
    graph_spec: GraphSpec,
    graph,
    name: str,
    tokens_per_node: int,
    seed: int,
    gap: float,
) -> Scenario:
    """Standardized O(T)-horizon measurement as a declarative Scenario."""
    tokens = tokens_per_node * graph.num_nodes
    horizon = horizon_for(
        graph, point_mass(graph.num_nodes, tokens), gap=gap
    )
    return Scenario(
        graph=graph_spec,
        algorithm=AlgorithmSpec(name, seed=seed),
        loads=LoadSpec("point_mass", {"tokens": tokens}),
        stop=StopRule.fixed(horizon),
        probes=(ProbeSpec("load_bounds"),),
        name=f"{name} @ {graph.name}",
    )


def _report(scenario: Scenario, outcome, graph, gap: float):
    summary = outcome.replica_summary()
    return ConvergenceReport(
        algorithm=scenario.algorithm.name,
        graph=graph.name,
        n=graph.num_nodes,
        degree=graph.degree,
        d_plus=graph.total_degree,
        gap=gap,
        horizon=scenario.stop.rounds,
        rounds_executed=summary["rounds"],
        initial_discrepancy=summary["initial_discrepancy"],
        final_discrepancy=summary["final_discrepancy"],
        plateau_discrepancy=summary["plateau"],
        min_load_ever=summary["min_load"],
    )


def _sweep(graph_entries, names, config) -> list[list[ConvergenceReport]]:
    """Run every (graph, algorithm) cell as one suite.

    ``graph_entries`` is a list of ``(graph_spec, graph, gap)``
    triples; returns one report list per entry, in ``names`` order.
    """
    scenarios = [
        _scenario(
            graph_spec, graph, name, config.tokens_per_node,
            config.seed, gap,
        )
        for graph_spec, graph, gap in graph_entries
        for name in names
    ]
    suite = ScenarioSuite(tuple(scenarios), name="theorem23")
    outcomes = suite.run()
    reports: list[list[ConvergenceReport]] = []
    cursor = 0
    for graph_spec, graph, gap in graph_entries:
        row = []
        for _ in names:
            row.append(
                _report(scenarios[cursor], outcomes[cursor], graph, gap)
            )
            cursor += 1
        reports.append(row)
    return reports


def run_expander_sweep(
    config: Theorem23Config | None = None,
) -> ExperimentResult:
    """E2: claim (i) on expanders + E9 separation from the [17] class."""
    config = config or Theorem23Config()
    names = tuple(config.algorithms) + (config.adversary,)
    rows: list[dict] = []
    with timed() as clock:
        entries = []
        for n in config.expander_sizes:
            spec = GraphSpec(
                "random_regular",
                {
                    "n": n,
                    "degree": config.expander_degree,
                    "seed": config.seed,
                },
            )
            graph = spec.build()
            entries.append((spec, graph, eigenvalue_gap(graph)))
        sweep = _sweep(entries, names, config)
        for (spec, graph, gap), reports in zip(entries, sweep):
            n = graph.num_nodes
            bound_i = cumulative_fair_bound_i(n, graph.degree, gap)
            bound_17 = rabani_bound(n, graph.degree, gap)
            row = {
                "n": n,
                "d": graph.degree,
                "mu": gap,
                "bound_i": bound_i,
                "bound_[17]": bound_17,
            }
            for name, report in zip(names[:-1], reports[:-1]):
                row[name] = report.plateau_discrepancy
                row[f"{name}/bound_i"] = (
                    report.plateau_discrepancy / bound_i
                )
            row["adversary"] = reports[-1].plateau_discrepancy
            rows.append(row)
    notes = [
        "claim (i): fair-balancer columns should stay within a constant "
        "multiple of bound_i as n grows",
        "E9 separation: 'adversary' (fixed-priority rounding, the [17] "
        "class) should exceed the fair balancers",
    ]
    return ExperimentResult(
        experiment_id="E2",
        title="Theorem 2.3(i) on expanders: discrepancy after O(T) "
        "vs d*sqrt(log n/mu)",
        rows=rows,
        notes=notes,
        elapsed_seconds=clock.elapsed,
    )


def run_cycle_sweep(
    config: Theorem23Config | None = None,
) -> ExperimentResult:
    """E3: claim (ii) on cycles — scaling of discrepancy vs n.

    Odd cycle sizes are used so the same table can carry the
    *worst-case* contrast: the Theorem 4.3 construction (rotor-router
    with ``d° = 0``, adversarial rotors) is locked at ``2·d·φ ≈ 2n``
    forever, while the cumulatively fair balancers (``d° = d``) stay
    below ``d·√n`` after ``O(T)`` — a linear-vs-sublinear crossover in
    one sweep.
    """
    from repro.lower_bounds.rotor_alternating import (
        build_rotor_alternating_instance,
    )

    config = config or Theorem23Config()
    names = tuple(config.algorithms)
    rows: list[dict] = []
    with timed() as clock:
        entries = []
        for n in config.cycle_sizes:
            spec = GraphSpec("cycle", {"n": n})
            graph = spec.build()
            entries.append((spec, graph, eigenvalue_gap(graph)))
        sweep = _sweep(entries, names, config)
        for (spec, graph, gap), reports in zip(entries, sweep):
            n = graph.num_nodes
            bound_ii = cumulative_fair_bound_ii(n, graph.degree)
            bound_iii = cumulative_fair_bound_iii(n, graph.degree, gap)
            row = {
                "n": n,
                "mu": gap,
                "bound_ii(d*sqrt n)": bound_ii,
                "bound_iii(d*logn/mu)": bound_iii,
            }
            for name, report in zip(names, reports):
                row[name] = report.plateau_discrepancy
            bare = families.cycle(n, num_self_loops=0)
            instance = build_rotor_alternating_instance(bare)
            row["worst_case_d0"] = int(
                instance.initial_loads.max() - instance.initial_loads.min()
            )
            rows.append(row)
        fits = {}
        if len(rows) >= 2:
            for name in list(config.algorithms) + ["worst_case_d0"]:
                xs = [row["n"] for row in rows]
                ys = [max(row[name], 1) for row in rows]
                fits[name] = fit_power_law(xs, ys)
    notes = [
        "claim (ii): fair-balancer discrepancy stays below d*sqrt(n) "
        "(and far below the ~n^2-scale claim iii bound)",
        "worst_case_d0 = Theorem 4.3 instance (no self-loops, "
        "adversarial rotors): locked at ~2n forever — the linear "
        "scaling the fair balancers escape",
    ]
    for name, fit in fits.items():
        notes.append(
            f"power-law fit {name}: discrepancy ~ n^{fit.slope:.2f} "
            f"(R^2={fit.r_squared:.3f})"
        )
    return ExperimentResult(
        experiment_id="E3",
        title="Theorem 2.3(ii) on cycles: discrepancy after O(T) vs d*sqrt(n)",
        rows=rows,
        notes=notes,
        metadata={"fits": {k: vars(v) for k, v in fits.items()}},
        elapsed_seconds=clock.elapsed,
    )


def run_minimal_selfloop_sweep(
    config: Theorem23Config | None = None,
) -> ExperimentResult:
    """E4: claim (iii) with d° = 1 self-loop."""
    config = config or Theorem23Config()
    names = tuple(config.algorithms)
    rows: list[dict] = []
    with timed() as clock:
        entries = []
        for n in config.expander_sizes:
            spec = GraphSpec(
                "random_regular",
                {
                    "n": n,
                    "degree": config.expander_degree,
                    "seed": config.seed,
                    "num_self_loops": 1,
                },
            )
            graph = spec.build()
            entries.append((spec, graph, eigenvalue_gap(graph)))
        sweep = _sweep(entries, names, config)
        for (spec, graph, gap), reports in zip(entries, sweep):
            n = graph.num_nodes
            bound = cumulative_fair_bound_iii(n, graph.degree, gap)
            row = {
                "n": n,
                "d_plus": graph.total_degree,
                "mu": gap,
                "bound_iii": bound,
            }
            for name, report in zip(names, reports):
                row[name] = report.plateau_discrepancy
                row[f"{name}/bound"] = report.plateau_discrepancy / bound
            rows.append(row)
    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 2.3(iii): single self-loop (d°=1), bound d*log n/mu",
        rows=rows,
        notes=[
            "claim (iii) is the only claim applicable at d°=1; ratios "
            "must stay below a constant"
        ],
        elapsed_seconds=clock.elapsed,
    )
