"""E16 — serving a datacenter fabric under realistic traffic.

The closest this reproduction gets to the ROADMAP north-star: both
datacenter fabrics (``fat_tree``, ``leaf_spine``) balanced by the
paper's deterministic schemes while :mod:`repro.traffic` generators
pour load onto the host tier.  For each fabric × traffic model ×
offered load × algorithm the driver reports where the discrepancy
settles (tail-mean over the final ``tail_window`` rounds) and the
serving percentiles — p99 and peak node load, plus the host-tier p99
from the ``tier_loads`` probe.

``offered`` is normalized to *tokens per host per round in
expectation*, so rows are comparable across traffic models whose raw
parameters (flow rates, burst sizes, hotspot intensities) live on
different scales.

The whole grid is one :class:`~repro.scenarios.spec.ScenarioSuite`
executed by ``suite.run()``, so the driver inherits the ambient
:func:`repro.exec.configure` context: ``workers=k`` shards it over a
process pool, ``cache=dir`` makes reruns replay byte-identically from
cached RunRecords — which is also why every reported number comes
from summaries and trace columns, never from in-memory load vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import steady_state_discrepancy
from repro.core.probes import ProbeSpec
from repro.dynamics import DynamicsSpec
from repro.experiments.base import ExperimentResult, timed
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)
from repro.traffic import host_rates

#: Mean of the clipped Pareto(alpha=1.5, min=1) size distribution —
#: used to convert an offered token rate into a flow arrival rate.
_PARETO_MEAN_SIZE = 3.0


@dataclass
class DatacenterServingConfig:
    """Sizes kept laptop-second by default; FULL enlarges them."""

    fat_tree_k: int = 4
    leaves: int = 6
    spines: int = 3
    hosts_per_leaf: int = 4
    rounds: int = 160
    tail_window: int = 40
    offered_loads: tuple[float, ...] = (1.0, 4.0, 16.0)
    traffic_models: tuple[str, ...] = (
        "poisson_arrivals",
        "pareto_flows",
        "hotspot_shift",
    )
    algorithms: tuple[str, ...] = ("send_floor", "rotor_router")
    tokens_per_node: int = 8
    replicas: int = 2
    percentile: float = 99.0
    seed: int = 1
    extra: dict = field(default_factory=dict)


def _fabric_specs(
    config: DatacenterServingConfig,
) -> list[GraphSpec]:
    return [
        GraphSpec("fat_tree", {"k": config.fat_tree_k}),
        GraphSpec(
            "leaf_spine",
            {
                "leaves": config.leaves,
                "spines": config.spines,
                "hosts_per_leaf": config.hosts_per_leaf,
            },
        ),
    ]


def _traffic_spec(
    model: str,
    offered: float,
    graph,
    config: DatacenterServingConfig,
) -> DynamicsSpec:
    """``offered`` tokens/host/round translated per traffic model."""
    hosts = graph.tier_counts().get("host", 0) or graph.num_nodes
    seed = config.seed
    if model == "poisson_arrivals":
        params = {"rate": host_rates(graph, offered), "seed": seed}
    elif model == "diurnal":
        params = {
            "rate": host_rates(graph, offered),
            "period": max(2, config.rounds // 4),
            "seed": seed,
        }
    elif model == "pareto_flows":
        params = {
            "rate": round(offered * hosts / _PARETO_MEAN_SIZE, 6),
            "alpha": 1.5,
            "seed": seed,
        }
    elif model == "hotspot_shift":
        params = {
            "rate": max(1, int(round(offered * hosts))),
            "hotspots": max(1, hosts // 8),
            "shift_every": 25,
            "seed": seed,
        }
    elif model == "correlated_burst":
        # probability * nodes = 1, so expectation stays offered*hosts.
        params = {
            "tokens": max(1, int(round(offered * hosts))),
            "nodes": 4,
            "probability": 0.25,
            "seed": seed,
        }
    else:
        raise ValueError(f"unknown traffic model {model!r}")
    return DynamicsSpec(model, params)


def run_datacenter_serving(
    config: DatacenterServingConfig,
) -> ExperimentResult:
    probe = ProbeSpec("tier_loads", {"percentile": config.percentile})
    p_key = f"p{config.percentile:g}_load"
    metas: list[dict] = []
    scenarios: list[Scenario] = []
    for fabric_spec in _fabric_specs(config):
        graph = fabric_spec.build()
        for model in config.traffic_models:
            for offered in config.offered_loads:
                dynamics = _traffic_spec(
                    model, offered, graph, config
                )
                for algorithm in config.algorithms:
                    metas.append(
                        {
                            "fabric": fabric_spec.family,
                            "n": graph.num_nodes,
                            "hosts": graph.tier_counts()["host"],
                            "traffic": model,
                            "offered": offered,
                            "algorithm": algorithm,
                        }
                    )
                    scenarios.append(
                        Scenario(
                            graph=fabric_spec,
                            algorithm=AlgorithmSpec(
                                algorithm, seed=config.seed
                            ),
                            loads=LoadSpec(
                                "balanced",
                                {"per_node": config.tokens_per_node},
                            ),
                            stop=StopRule.fixed(config.rounds),
                            replicas=config.replicas,
                            probes=(probe,),
                            dynamics=dynamics,
                        )
                    )
    suite = ScenarioSuite(tuple(scenarios), name="E16")
    rows = []
    with timed() as clock:
        outcomes = suite.run()
        for meta, outcome in zip(metas, outcomes):
            tails = [
                steady_state_discrepancy(
                    result.discrepancy_history, config.tail_window
                )
                for result in outcome.results
            ]
            summaries = [
                result.record.summary for result in outcome.results
            ]
            rows.append(
                {
                    **meta,
                    "steady_state": round(
                        sum(tails) / len(tails), 2
                    ),
                    p_key: round(
                        sum(s[p_key] for s in summaries)
                        / len(summaries),
                        2,
                    ),
                    "peak_load": max(
                        s["peak_load"] for s in summaries
                    ),
                    "host_mean_load": round(
                        sum(
                            s["tier_host_mean_load"]
                            for s in summaries
                        )
                        / len(summaries),
                        2,
                    ),
                    "tokens_injected_mean": int(
                        sum(
                            s.get("tokens_injected", 0)
                            for s in summaries
                        )
                        / len(summaries)
                    ),
                    "executor": outcome.executor,
                }
            )
    return ExperimentResult(
        experiment_id="E16",
        title=(
            "datacenter serving: steady-state discrepancy and "
            f"p{config.percentile:g} node load vs offered load "
            f"({config.rounds} rounds, tail {config.tail_window})"
        ),
        rows=rows,
        columns=[
            "fabric",
            "n",
            "hosts",
            "traffic",
            "offered",
            "algorithm",
            "steady_state",
            p_key,
            "peak_load",
            "host_mean_load",
            "tokens_injected_mean",
            "executor",
        ],
        notes=[
            "offered is tokens per host per round in expectation; "
            "traffic parameters are normalized per model",
            "steady_state is the tail-mean discrepancy averaged over "
            f"{config.replicas} replicas; load percentiles come from "
            "the tier_loads probe at the final round",
            "fabrics are padded irregular graphs (hosts degree 1), so "
            "all engine fast paths stay valid",
        ],
        metadata={"config": config.__dict__},
        elapsed_seconds=clock.elapsed,
    )
