"""Fairness checkers: Definitions 2.1 and 3.1 as runtime verdicts.

The paper's algorithm classes are defined by per-round and cumulative
conditions on the sends matrix:

* **round-fair** ([17]): every port receives ``⌊x/d+⌋`` or ``⌈x/d+⌉``;
* **cumulatively δ-fair** (Def. 2.1): every port always receives at
  least ``⌊x/d+⌋``, and cumulative flows over any two original edges of
  a node never differ by more than δ;
* **good s-balancer** (Def. 3.1): round-fair, cumulatively 1-fair, and
  in every round at least ``min(s, e(u))`` self-loops receive the ceiling
  share, where ``e(u) = x(u) mod d+``.

Each condition is available both as a pure function on one round's data
and as a sends-consuming :class:`~repro.core.probes.Probe` accumulating
a verdict over a whole run.  These probes power the Observation
2.2 / 3.2 tests and the property columns regenerated for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.probes import SENDS, Probe, register_probe


def floor_share(loads: np.ndarray, d_plus: int) -> np.ndarray:
    """``⌊x/d+⌋`` per node."""
    return loads // d_plus


def ceil_share(loads: np.ndarray, d_plus: int) -> np.ndarray:
    """``⌈x/d+⌉`` per node."""
    return -(-loads // d_plus)


def excess_tokens(loads: np.ndarray, d_plus: int) -> np.ndarray:
    """The paper's ``e(u) = x(u) - d+·⌊x(u)/d+⌋``."""
    return loads % d_plus


def violates_floor(
    loads: np.ndarray, sends: np.ndarray, d_plus: int
) -> np.ndarray:
    """Bool per node: some port received fewer than ``⌊x/d+⌋`` tokens."""
    return (sends < floor_share(loads, d_plus)[:, None]).any(axis=1)


def violates_ceil(
    loads: np.ndarray, sends: np.ndarray, d_plus: int
) -> np.ndarray:
    """Bool per node: some port received more than ``⌈x/d+⌉`` tokens."""
    return (sends > ceil_share(loads, d_plus)[:, None]).any(axis=1)


def is_round_fair(
    loads: np.ndarray, sends: np.ndarray, d_plus: int
) -> bool:
    """True if every port of every node received floor or ceil."""
    low = violates_floor(loads, sends, d_plus)
    high = violates_ceil(loads, sends, d_plus)
    return not bool((low | high).any())


def self_preference_deficit(
    loads: np.ndarray,
    sends: np.ndarray,
    degree: int,
    d_plus: int,
    s: int,
) -> np.ndarray:
    """Per-node shortfall of Def. 3.1's s-self-preference condition.

    Returns ``max(0, min(s, e(u)) - #{self-loops receiving ⌈x/d+⌉})``;
    zero everywhere iff the round was s-self-preferring.
    """
    ceil = ceil_share(loads, d_plus)
    excess = excess_tokens(loads, d_plus)
    preferred = (sends[:, degree:] >= ceil[:, None]).sum(axis=1)
    required = np.minimum(s, excess)
    # When e(u) == 0 floor == ceil and the condition is vacuous.
    required = np.where(excess == 0, 0, required)
    return np.maximum(0, required - preferred)


@dataclass
class RoundVerdict:
    """Per-round fairness facts collected by :class:`FairnessMonitor`."""

    floor_violations: int
    ceil_violations: int
    self_preference_deficit: int


@register_probe("fairness")
class FairnessMonitor(Probe):
    """Accumulates every per-round fairness condition over a run.

    A sends-consuming probe (registered as ``fairness``): the fairness
    definitions are statements about per-port token counts.  On the
    structured engine it reconstructs the exact sends matrix from the
    compact round (``accepts_structured``), so the balancer and engine
    stay matrix-free even while fairness is being audited.

    Args:
        s: self-preference parameter to check (Def. 3.1); 0 disables.
        keep_rounds: record a :class:`RoundVerdict` per round (tests).
    """

    needs = SENDS
    accepts_structured = True

    def __init__(self, s: int = 0, keep_rounds: bool = False) -> None:
        self.s = s
        self.keep_rounds = keep_rounds
        self.rounds: list[RoundVerdict] = []
        self.total_floor_violations = 0
        self.total_ceil_violations = 0
        self.total_self_preference_deficit = 0
        self._degree = 0
        self._d_plus = 0
        self._graph = None

    def start(self, graph, balancer, loads) -> None:
        self._graph = graph
        self._degree = graph.degree
        self._d_plus = graph.total_degree
        self.rounds = []
        self.total_floor_violations = 0
        self.total_ceil_violations = 0
        self.total_self_preference_deficit = 0

    def observe_structured(self, t, loads_before, compact, loads_after):
        self.observe(
            t, loads_before, compact.to_dense(self._graph), loads_after
        )

    def observe(self, t, loads_before, sends, loads_after) -> None:
        floor_bad = int(
            violates_floor(loads_before, sends, self._d_plus).sum()
        )
        ceil_bad = int(violates_ceil(loads_before, sends, self._d_plus).sum())
        deficit = 0
        if self.s > 0:
            deficit = int(
                self_preference_deficit(
                    loads_before,
                    sends,
                    self._degree,
                    self._d_plus,
                    self.s,
                ).sum()
            )
        self.total_floor_violations += floor_bad
        self.total_ceil_violations += ceil_bad
        self.total_self_preference_deficit += deficit
        if self.keep_rounds:
            self.rounds.append(RoundVerdict(floor_bad, ceil_bad, deficit))

    @property
    def always_at_least_floor(self) -> bool:
        """Def. 2.1's first bullet held in every observed round."""
        return self.total_floor_violations == 0

    @property
    def always_round_fair(self) -> bool:
        """[17]'s round-fairness held in every observed round."""
        return (
            self.total_floor_violations == 0
            and self.total_ceil_violations == 0
        )

    @property
    def always_self_preferring(self) -> bool:
        """Def. 3.1's condition 2 held in every observed round."""
        return self.total_self_preference_deficit == 0

    def summary(self) -> dict:
        return {
            "floor_violations": self.total_floor_violations,
            "ceil_violations": self.total_ceil_violations,
            "self_preference_deficit": (
                self.total_self_preference_deficit
            ),
        }


@register_probe("cumulative_fairness")
class CumulativeFairnessMonitor(Probe):
    """Tracks Def. 2.1's cumulative spread over original edges.

    ``observed_delta`` is the largest value, over all rounds and nodes,
    of ``max_{e1,e2 in E_u} |F_t(e1) - F_t(e2)|``.  An algorithm is
    *cumulatively δ-fair on the run* iff ``observed_delta <= δ`` and the
    floor condition held (checked by :class:`FairnessMonitor`).

    A sends consumer (registered as ``cumulative_fairness``) with a
    genuine structured fast path: a compact round updates the
    cumulative original-edge flows directly from the uniform edge share
    plus the rotor window's per-edge hits — no ``(n, d+)`` matrix is
    materialized.
    """

    needs = SENDS
    accepts_structured = True

    def __init__(self) -> None:
        self.observed_delta = 0
        self._cumulative: np.ndarray | None = None
        self._degree = 0
        self._graph = None

    def start(self, graph, balancer, loads) -> None:
        self._graph = graph
        self._degree = graph.degree
        self._cumulative = np.zeros(
            (graph.num_nodes, graph.degree), dtype=np.int64
        )
        self.observed_delta = 0

    def _update_spread(self) -> None:
        spread = int(
            (
                self._cumulative.max(axis=1) - self._cumulative.min(axis=1)
            ).max()
        )
        self.observed_delta = max(self.observed_delta, spread)

    def observe(self, t, loads_before, sends, loads_after) -> None:
        self._cumulative += sends[:, : self._degree]
        self._update_spread()

    def observe_structured(self, t, loads_before, compact, loads_after):
        self._cumulative += compact.edge_share[:, None]
        if compact.window is not None:
            self._cumulative += compact.window.edge_hit_matrix(
                self._graph
            )
        self._update_spread()

    def is_cumulatively_fair(self, delta: int) -> bool:
        return self.observed_delta <= delta

    def summary(self) -> dict:
        return {"observed_delta": self.observed_delta}


@dataclass(frozen=True)
class ClassVerdict:
    """Aggregated classification of a run against the paper's classes."""

    at_least_floor: bool
    round_fair: bool
    observed_delta: int
    self_preferring: bool
    s: int

    def is_cumulatively_fair(self, delta: int) -> bool:
        """Def. 2.1 with parameter δ."""
        return self.at_least_floor and self.observed_delta <= delta

    @property
    def is_good_balancer(self) -> bool:
        """Def. 3.1 with the monitor's parameter s."""
        return (
            self.round_fair
            and self.observed_delta <= 1
            and self.self_preferring
            and self.s >= 1
        )


def classify_run(
    fairness: FairnessMonitor,
    cumulative: CumulativeFairnessMonitor,
) -> ClassVerdict:
    """Combine the two monitors into a single verdict."""
    return ClassVerdict(
        at_least_floor=fairness.always_at_least_floor,
        round_fair=fairness.always_round_fair,
        observed_delta=cumulative.observed_delta,
        self_preferring=fairness.always_self_preferring,
        s=fairness.s,
    )
