"""Columnar run records: sampling schedules, traces, and run summaries.

Observability results used to be scattered — the engine's ad-hoc
``discrepancy_history`` list, per-replica monitor tuples on
:class:`~repro.scenarios.spec.ScenarioResult`, and bespoke row dicts in
every experiment driver.  This module unifies them:

* :class:`SamplingSchedule` — *when* to record a per-round value
  (every ``k`` rounds, geometrically spaced boundaries, or only the
  run's endpoints);
* :class:`Trace` — a columnar store of per-round series: each column
  owns its sampled round indices, so probes with different schedules
  coexist in one record;
* :class:`RunRecord` — one replica's complete outcome: scalar summary
  (engine facts merged with every probe's :meth:`~repro.core.probes.\
Probe.summary`) plus the :class:`Trace` of per-round columns.

Everything round-trips through plain dictionaries, so records flow
straight into ``analysis.export`` (JSON lines / CSV) and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

SCHEDULE_KINDS = ("every", "geometric", "boundary")


@dataclass(frozen=True)
class SamplingSchedule:
    """When a per-round column samples the trajectory.

    Kinds:

    * ``every`` — every ``stride`` round boundaries (``stride=1`` is
      the classic full-resolution history);
    * ``geometric`` — boundaries ``0, 1`` and then the first boundary
      at or past each power of ``base`` (``0, 1, 2, 4, 8, ...`` for
      ``base=2``) — long runs in O(log T) samples;
    * ``boundary`` — only the initial boundary (recorders add the final
      one themselves), for cheapest-possible endpoint records.

    The initial boundary (``t = 0``) is always sampled; recorders are
    expected to also retain the final observed boundary so a sampled
    trace still ends at the run's last state.
    """

    kind: str = "every"
    stride: int = 1
    base: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule kind {self.kind!r}; "
                f"known: {SCHEDULE_KINDS}"
            )
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.base <= 1.0:
            raise ValueError("geometric base must be > 1")

    @classmethod
    def every(cls, stride: int = 1) -> "SamplingSchedule":
        return cls(kind="every", stride=stride)

    @classmethod
    def geometric(cls, base: float = 2.0) -> "SamplingSchedule":
        return cls(kind="geometric", base=base)

    @classmethod
    def boundary(cls) -> "SamplingSchedule":
        return cls(kind="boundary")

    def wants(self, t: int) -> bool:
        """Should the boundary after round ``t`` be sampled? (``0`` =
        the initial vector; always sampled.)"""
        if t <= 0:
            return True
        if self.kind == "every":
            return t % self.stride == 0
        if self.kind == "boundary":
            return False
        if t == 1:
            return True
        # Geometric: sample the first boundary at or past each power of
        # base, i.e. some power p satisfies t-1 < p <= t.  Built by
        # repeated multiplication rather than math.log, whose rounding
        # (log(1000, 10) == 2.999...96) skips exact power boundaries.
        power = 1.0
        while power <= t - 1:
            power *= self.base
        return power <= t

    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind}
        if self.kind == "every" and self.stride != 1:
            data["stride"] = self.stride
        if self.kind == "geometric":
            data["base"] = self.base
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SamplingSchedule":
        return cls(**data)


def _plain(value):
    """Convert numpy scalars/arrays into JSON-friendly Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class Trace:
    """Columnar per-round record.

    Each column is an independent ``(rounds, values)`` pair —
    ``rounds[i]`` is the round boundary at which ``values[i]`` was
    sampled (``0`` describes the initial vector) — so columns recorded
    on different :class:`SamplingSchedule`\\ s coexist.  Values are
    usually scalars; trajectory-style columns may hold vectors.
    """

    def __init__(self) -> None:
        self._rounds: dict[str, list[int]] = {}
        self._values: dict[str, list] = {}

    # -- construction ---------------------------------------------------

    def add_column(
        self,
        name: str,
        rounds: Sequence[int],
        values: Sequence,
    ) -> None:
        if len(rounds) != len(values):
            raise ValueError(
                f"column {name!r}: {len(rounds)} rounds for "
                f"{len(values)} values"
            )
        if name in self._values:
            raise ValueError(f"column {name!r} already present")
        self._rounds[name] = [int(r) for r in rounds]
        self._values[name] = [_plain(v) for v in values]

    def merge(self, columns: Mapping[str, tuple[Sequence[int], Sequence]]) -> None:
        """Add several ``name -> (rounds, values)`` columns at once."""
        for name, (rounds, values) in columns.items():
            self.add_column(name, rounds, values)

    # -- access ---------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def column(self, name: str) -> np.ndarray:
        """Sampled values of ``name`` as an array."""
        return np.asarray(self._values[name])

    def rounds(self, name: str) -> list[int]:
        """Round boundaries at which ``name`` was sampled."""
        return list(self._rounds[name])

    def series(self, name: str) -> tuple[list[int], list]:
        return list(self._rounds[name]), list(self._values[name])

    # -- export ---------------------------------------------------------

    def to_rows(self) -> list[dict]:
        """Row-major view: one dict per sampled round (outer join).

        Columns sampled on different schedules leave ``None`` holes —
        CSV/JSON consumers see an explicit missing value rather than a
        misaligned series.
        """
        boundaries = sorted(
            {r for rounds in self._rounds.values() for r in rounds}
        )
        index = {
            name: dict(zip(rounds, self._values[name]))
            for name, rounds in self._rounds.items()
        }
        return [
            {
                "round": boundary,
                **{
                    name: index[name].get(boundary)
                    for name in self._values
                },
            }
            for boundary in boundaries
        ]

    def to_dict(self) -> dict:
        return {
            "columns": {
                name: {
                    "rounds": list(self._rounds[name]),
                    "values": list(self._values[name]),
                }
                for name in self._values
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        trace = cls()
        for name, column in data.get("columns", {}).items():
            trace.add_column(name, column["rounds"], column["values"])
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(columns={self.names()})"


@dataclass
class RunRecord:
    """One replica's complete outcome in columnar form.

    Attributes:
        replica: replica index within its scenario (0 for single runs).
        rounds_executed: rounds actually executed.
        stopped_early: True if a stop predicate fired.
        summary: scalar facts — engine outcomes (initial/final
            discrepancy) merged with every probe's ``summary()``.
        trace: per-round columns contributed by the engine history and
            every probe's ``columns()``.
    """

    replica: int
    rounds_executed: int
    stopped_early: bool
    summary: dict = field(default_factory=dict)
    trace: Trace = field(default_factory=Trace)

    def row(self) -> dict:
        """Flat summary row (the experiment-driver / CSV shape)."""
        return {
            "replica": self.replica,
            "rounds": self.rounds_executed,
            "stopped_early": self.stopped_early,
            **{key: _plain(value) for key, value in self.summary.items()},
        }

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "rounds_executed": self.rounds_executed,
            "stopped_early": self.stopped_early,
            "summary": {
                key: _plain(value) for key, value in self.summary.items()
            },
            "trace": self.trace.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            replica=int(data.get("replica", 0)),
            rounds_executed=int(data["rounds_executed"]),
            stopped_early=bool(data.get("stopped_early", False)),
            summary=dict(data.get("summary", {})),
            trace=Trace.from_dict(data.get("trace", {})),
        )


def build_record(
    *,
    replica: int,
    rounds_executed: int,
    stopped_early: bool,
    engine_summary: Mapping | None = None,
    discrepancy_history: Sequence | None = None,
    probes: Iterable = (),
) -> RunRecord:
    """Assemble a :class:`RunRecord` from engine facts plus probes.

    Probe columns win name collisions against the engine's discrepancy
    history (a discrepancy probe re-records the same series, possibly
    on a sparser schedule); colliding probe-vs-probe columns get a
    ``#k`` suffix rather than raising, so two instances of the same
    probe class can ride one run.
    """
    record = RunRecord(
        replica=replica,
        rounds_executed=rounds_executed,
        stopped_early=stopped_early,
        summary=dict(engine_summary or {}),
    )
    for probe in probes:
        for name, (rounds, values) in probe.columns().items():
            unique = name
            suffix = 1
            while unique in record.trace:
                suffix += 1
                unique = f"{name}#{suffix}"
            record.trace.add_column(unique, rounds, values)
        for key, value in probe.summary().items():
            record.summary.setdefault(key, _plain(value))
    if discrepancy_history and "discrepancy" not in record.trace:
        record.trace.add_column(
            "discrepancy",
            range(len(discrepancy_history)),
            discrepancy_history,
        )
    return record
