"""Load-vector quality metrics used across the paper's statements.

* **discrepancy** — ``max x - min x`` (the headline metric);
* **balancedness** — ``max x - x̄`` (gap to the average from above);
* **underload gap** — ``x̄ - min x``;
* **deviation norms** — ``‖x - x̄‖_p`` for trajectory analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def discrepancy(loads: np.ndarray) -> int | float:
    """``max_u x(u) - min_u x(u)``.

    Type-preserving: integer load vectors (the discrete token model)
    yield a Python ``int``; real-valued vectors (continuous diffusion)
    yield an exact ``float`` rather than a silently truncated integer.
    """
    span = loads.max() - loads.min()
    return span.item() if isinstance(span, np.generic) else span


def balancedness(loads: np.ndarray) -> float:
    """``max_u x(u) - x̄`` — the paper's "balancedness" (overload gap)."""
    return float(loads.max() - loads.mean())


def underload_gap(loads: np.ndarray) -> float:
    """``x̄ - min_u x(u)`` — symmetric counterpart of balancedness."""
    return float(loads.mean() - loads.min())


def deviation_norm(loads: np.ndarray, p: float = np.inf) -> float:
    """``‖x - x̄‖_p`` with the paper's vector-norm convention."""
    centered = loads.astype(np.float64) - loads.mean()
    if np.isinf(p):
        return float(np.abs(centered).max())
    return float((np.abs(centered) ** p).sum() ** (1.0 / p))


def is_perfectly_balanced(loads: np.ndarray) -> bool:
    """True if the discrepancy is at most 1 token.

    ``m`` tokens on ``n`` nodes cannot do better than discrepancy
    ``0`` (if ``n | m``) or ``1`` (otherwise).
    """
    return discrepancy(loads) <= 1


@dataclass(frozen=True)
class LoadSummary:
    """Snapshot statistics of one load vector."""

    minimum: int
    maximum: int
    mean: float
    discrepancy: int
    balancedness: float
    underload_gap: float

    @classmethod
    def of(cls, loads: np.ndarray) -> "LoadSummary":
        return cls(
            minimum=int(loads.min()),
            maximum=int(loads.max()),
            mean=float(loads.mean()),
            discrepancy=discrepancy(loads),
            balancedness=balancedness(loads),
            underload_gap=underload_gap(loads),
        )

    def as_dict(self) -> dict:
        return {
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "discrepancy": self.discrepancy,
            "balancedness": self.balancedness,
            "underload_gap": self.underload_gap,
        }


def time_to_discrepancy(
    history: list[int | float] | np.ndarray,
    target: int | float,
) -> int | None:
    """First index (round) at which the recorded discrepancy is <= target.

    ``history[i]`` is the discrepancy at the *beginning* of round ``i+1``
    (i.e. ``history[0]`` describes the initial vector).  Returns None if
    the target is never reached within the recorded horizon.
    """
    for index, value in enumerate(history):
        if value <= target:
            return index
    return None


def steady_state_discrepancy(
    history: list[int | float] | np.ndarray, window: int = 50
) -> float:
    """Mean discrepancy over the last ``window`` recorded rounds.

    The headline statistic for *dynamic* workloads: under sustained
    injection the discrepancy does not converge to a plateau value but
    fluctuates around a steady state set by the arrival rate; the tail
    mean is that steady state (:func:`final_plateau` reports the tail
    *maximum* — the pessimistic variant).
    """
    if len(history) == 0:
        raise ValueError("history is empty")
    tail = np.asarray(history[-window:], dtype=np.float64)
    return float(tail.mean())


def final_plateau(
    history: list[int | float] | np.ndarray, window: int = 16
) -> int | float:
    """Maximum discrepancy over the last ``window`` recorded rounds.

    Deterministic schemes often settle into short cycles rather than a
    fixed point; the plateau maximum is the honest "final discrepancy".
    Type-preserving like :func:`discrepancy`: float histories (the
    continuous model) are not truncated to integers.
    """
    if len(history) == 0:
        raise ValueError("history is empty")
    tail = history[-window:]
    value = max(tail)
    return value.item() if isinstance(value, np.generic) else value
