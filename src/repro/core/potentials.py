"""Section 3's potential functions ``φ_t(c)`` and ``φ'_t(c)``.

For a threshold parameter ``c``:

* ``φ_t(c)  = Σ_v max(x_t(v) - c·d+, 0)`` counts tokens stacked above
  height ``c·d+`` ("red tokens" in the proof of Lemma 3.5);
* ``φ'_t(c) = Σ_v max(c·d+ + s - x_t(v), 0)`` counts gaps below height
  ``c·d+ + s`` (Lemma 3.7).

Lemmas 3.5/3.7 show both are non-increasing along any good s-balancer
run; Theorem 3.3 drives them to zero phase by phase.  The monitor
records the trajectories so tests and experiment E12 can verify the
monotone drop empirically.
"""

from __future__ import annotations

import numpy as np

from repro.core.probes import LOADS, Probe, register_probe


def phi(loads: np.ndarray, c: int, d_plus: int) -> int:
    """``φ(c) = Σ_v max(x(v) - c·d+, 0)``."""
    return int(np.maximum(loads - c * d_plus, 0).sum())


def phi_prime(loads: np.ndarray, c: int, d_plus: int, s: int) -> int:
    """``φ'(c) = Σ_v max(c·d+ + s - x(v), 0)``."""
    return int(np.maximum(c * d_plus + s - loads, 0).sum())


def phi_profile(loads: np.ndarray, d_plus: int, c_max: int) -> np.ndarray:
    """``φ(c)`` for ``c = 0..c_max`` as one vector."""
    return np.array(
        [phi(loads, c, d_plus) for c in range(c_max + 1)], dtype=np.int64
    )


def potential_drop(
    loads_before: np.ndarray,
    loads_after: np.ndarray,
    c: int,
    d_plus: int,
    s: int,
) -> int:
    """Lemma 3.5's guaranteed one-round drop ``Σ_u Δ_t(c, u)``.

    ``Δ_t(c, u) = min(x_{t-1}(u), c·d+ + s) - max(x_t(u), c·d+)`` for
    nodes whose load crossed downwards through the band, else 0.
    """
    upper = np.minimum(loads_before, c * d_plus + s)
    lower = np.maximum(loads_after, c * d_plus)
    eligible = (
        (loads_before > loads_after)
        & (loads_before > c * d_plus)
        & (loads_after < c * d_plus + s)
    )
    drops = np.where(eligible, upper - lower, 0)
    return int(np.maximum(drops, 0).sum())


def potential_drop_prime(
    loads_before: np.ndarray,
    loads_after: np.ndarray,
    c: int,
    d_plus: int,
    s: int,
) -> int:
    """Lemma 3.7's guaranteed one-round drop ``Σ_u Δ'_t(c, u)``."""
    upper = np.minimum(loads_after, c * d_plus + s)
    lower = np.maximum(loads_before, c * d_plus)
    eligible = (
        (loads_before < loads_after)
        & (loads_before < c * d_plus + s)
        & (loads_after > c * d_plus)
    )
    drops = np.where(eligible, upper - lower, 0)
    return int(np.maximum(drops, 0).sum())


@register_probe("potentials")
class PotentialMonitor(Probe):
    """Records ``φ_t(c)`` and ``φ'_t(c)`` trajectories for several ``c``.

    Both potentials are pure functions of the load vector, so this is a
    loads-only probe: it rides the structured engine and the vectorized
    batch runner (registered as probe ``potentials``).

    Args:
        c_values: thresholds to track.
        s: the balancer's self-preference parameter (enters ``φ'``).
    """

    needs = LOADS

    def __init__(self, c_values: list[int], s: int) -> None:
        self.c_values = list(c_values)
        self.s = s
        self.phi_history: dict[int, list[int]] = {}
        self.phi_prime_history: dict[int, list[int]] = {}
        self._d_plus = 0

    def start(self, graph, balancer, loads) -> None:
        self._d_plus = graph.total_degree
        self.phi_history = {
            c: [phi(loads, c, self._d_plus)] for c in self.c_values
        }
        self.phi_prime_history = {
            c: [phi_prime(loads, c, self._d_plus, self.s)]
            for c in self.c_values
        }

    def observe_loads(self, t, loads) -> None:
        for c in self.c_values:
            self.phi_history[c].append(phi(loads, c, self._d_plus))
            self.phi_prime_history[c].append(
                phi_prime(loads, c, self._d_plus, self.s)
            )

    def phi_is_monotone(self, c: int) -> bool:
        """True if ``φ(c)`` never increased along the run (Lemma 3.5)."""
        history = self.phi_history[c]
        return all(b <= a for a, b in zip(history, history[1:]))

    def phi_prime_is_monotone(self, c: int) -> bool:
        """True if ``φ'(c)`` never increased along the run (Lemma 3.7)."""
        history = self.phi_prime_history[c]
        return all(b <= a for a, b in zip(history, history[1:]))

    def all_monotone(self) -> bool:
        return all(
            self.phi_is_monotone(c) and self.phi_prime_is_monotone(c)
            for c in self.c_values
        )

    def columns(self):
        columns = {}
        for c in self.c_values:
            history = self.phi_history[c]
            columns[f"phi[{c}]"] = (list(range(len(history))), list(history))
            prime = self.phi_prime_history[c]
            columns[f"phi_prime[{c}]"] = (
                list(range(len(prime))),
                list(prime),
            )
        return columns

    def summary(self) -> dict:
        return {"potentials_monotone": self.all_monotone()}


def threshold_c0(average: float, d_plus: int, d_self: int, delta: int) -> int:
    """Theorem 3.3's first threshold ``c₀``.

    The smallest integer with ``c₀·d+ >= x̄ + δ·d+ + 2d° + d+/2``.
    """
    target = average + delta * d_plus + 2 * d_self + d_plus / 2.0
    return int(np.ceil(target / d_plus))


def final_discrepancy_bound(d_plus: int, d_self: int, delta: int = 1) -> int:
    """Theorem 3.3's explicit discrepancy bound ``(2δ+1)d+ + 4d°``."""
    return (2 * delta + 1) * d_plus + 4 * d_self
