"""Flow accounting: the paper's ``f_t``, ``F_t``, ``F^in``, ``F^out``.

For a directed edge ``e = (u, v)`` the paper writes ``f_t(e)`` for the
tokens sent over ``e`` in round ``t`` and ``F_t(e) = Σ_{τ<=t} f_τ(e)``
for the cumulative flow.  :class:`FlowTracker` is a probe maintaining
these quantities per *port* (so per directed original edge, plus the
aggregated self-loop flow ``F_t(u, u)``), along with the remainder
vector ``r_t`` of Proposition A.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.probes import SENDS, Probe, register_probe


@register_probe("flows")
class FlowTracker(Probe):
    """Accumulates per-port flows over an entire run.

    A sends-consuming probe (registered as ``flows``) with a structured
    fast path: a compact round updates the cumulative matrix directly
    from the uniform edge share, the self-loop floor/ceil assignment,
    and the rotor window — the balancer and engine stay matrix-free.
    On the structured path ``last_sends`` is only materialized when
    ``record_rounds`` asks for per-round matrices.

    Attributes:
        cumulative: ``(n, d+)`` int64; ``cumulative[u, p]`` is
            ``F_t(u, port p target)`` after the last observed round.
        last_sends: the most recent round's ``(n, d+)`` sends (``None``
            on the structured path unless ``record_rounds``).
        last_remainder: the most recent remainder vector ``r_t``.
        max_abs_remainder: ``max_t max_u |r_t(u)|`` (the paper's ``r``).
    """

    needs = SENDS
    accepts_structured = True

    def __init__(self, record_rounds: bool = False) -> None:
        self.record_rounds = record_rounds
        self.cumulative: np.ndarray | None = None
        self.last_sends: np.ndarray | None = None
        self.last_remainder: np.ndarray | None = None
        self.max_abs_remainder: int = 0
        self.round_history: list[np.ndarray] = []
        self._graph = None

    def start(self, graph, balancer, loads) -> None:
        self._graph = graph
        self.cumulative = np.zeros(
            (graph.num_nodes, graph.total_degree), dtype=np.int64
        )
        self.last_sends = None
        self.last_remainder = None
        self.max_abs_remainder = 0
        self.round_history = []

    def observe(self, t, loads_before, sends, loads_after) -> None:
        self.cumulative += sends
        self.last_sends = sends
        remainder = loads_before - sends.sum(axis=1)
        self.last_remainder = remainder
        self.max_abs_remainder = max(
            self.max_abs_remainder, int(np.abs(remainder).max())
        )
        if self.record_rounds:
            self.round_history.append(sends.copy())

    def observe_structured(self, t, loads_before, compact, loads_after):
        graph = self._graph
        degree = graph.degree
        num_loops = graph.num_self_loops
        self.cumulative[:, :degree] += compact.edge_share[:, None]
        if compact.loop_base is not None:
            self.cumulative[:, degree:] += compact.loop_base[:, None]
        if compact.loop_ceil is not None and num_loops > 0:
            self.cumulative[:, degree:] += (
                np.arange(num_loops) < compact.loop_ceil[:, None]
            )
        if compact.window is not None:
            window = compact.window
            offsets = (
                window.positions - window.rotors[:, None]
            ) % graph.total_degree
            self.cumulative += offsets < window.extra[:, None]
        remainder = compact.remainder(graph, loads_before)
        self.last_remainder = remainder
        self.max_abs_remainder = max(
            self.max_abs_remainder, int(np.abs(remainder).max())
        )
        if self.record_rounds:
            sends = compact.to_dense(graph)
            self.last_sends = sends
            self.round_history.append(sends)
        else:
            self.last_sends = None

    # ------------------------------------------------------------------
    # Paper quantities
    # ------------------------------------------------------------------

    def cumulative_original(self) -> np.ndarray:
        """``(n, d)`` cumulative flow over original edges only."""
        return self.cumulative[:, : self._graph.degree]

    def cumulative_self(self) -> np.ndarray:
        """``F_t(u, u)`` — total cumulative flow over u's self-loops."""
        return self.cumulative[:, self._graph.degree:].sum(axis=1)

    def cumulative_out(self) -> np.ndarray:
        """``F^out_t(u)`` — all flow that left ``u`` (incl. self-loops)."""
        return self.cumulative.sum(axis=1)

    def cumulative_in(self) -> np.ndarray:
        """``F^in_t(u)`` — all flow that arrived at ``u`` (incl. loops)."""
        graph = self._graph
        incoming = self.cumulative[
            graph.adjacency, graph.reverse_port
        ].sum(axis=1)
        return incoming + self.cumulative_self()

    def original_spread(self) -> np.ndarray:
        """Per-node cumulative-fairness spread over original edges.

        ``spread[u] = max_{e1,e2 in E_u} |F_t(e1) - F_t(e2)|`` — the
        quantity Definition 2.1 bounds by δ.
        """
        original = self.cumulative_original()
        return original.max(axis=1) - original.min(axis=1)

    def conservation_identity_error(self, initial_loads) -> np.ndarray:
        """Residual of the paper's flow identity (1).

        Identity (1): ``x₁(u) + F^in_{t-1}(u) = r_t(u) + F^out_t(u)``.
        Rearranged to the equivalent end-of-round form used here:
        ``x_{t+1}(u) = x₁(u) + F^in_t(u) - F^out_t(u)``, so the residual
        of ``x₁ + F^in - F^out`` against the current load vector must be
        zero.  Callers provide the initial vector; the current vector is
        reconstructed from flows.
        """
        reconstructed = (
            initial_loads + self.cumulative_in() - self.cumulative_out()
        )
        return reconstructed

    def summary(self) -> dict:
        return {"max_abs_remainder": self.max_abs_remainder}

    def flow_per_round(self) -> np.ndarray:
        """Stacked ``(rounds, n, d+)`` history (requires record_rounds)."""
        if not self.record_rounds:
            raise RuntimeError(
                "FlowTracker(record_rounds=True) required for history"
            )
        return np.stack(self.round_history, axis=0)


def directed_edge_flows(
    tracker: FlowTracker,
    graph,
) -> dict[tuple[int, int], int]:
    """Cumulative flow per directed original edge as a dictionary."""
    flows: dict[tuple[int, int], int] = {}
    original = tracker.cumulative_original()
    for u in range(graph.num_nodes):
        for port, v in enumerate(graph.neighbors(u)):
            flows[(u, v)] = int(original[u, port])
    return flows


def antisymmetric_net_flow(
    tracker: FlowTracker,
    graph,
) -> dict[tuple[int, int], int]:
    """Net cumulative flow ``F(u,v) - F(v,u)`` per undirected edge."""
    directed = directed_edge_flows(tracker, graph)
    net: dict[tuple[int, int], int] = {}
    for (u, v), flow in directed.items():
        if u < v:
            net[(u, v)] = flow - directed[(v, u)]
    return net
