"""Compact round descriptions — the matrix-free structured-sends protocol.

The paper's deterministic schemes never need a full ``(n, d+)`` sends
matrix: a round of SEND(⌊x/d+⌋) / SEND([x/d+]) is fully described by a
*uniform per-edge share* plus a floor/ceil assignment over the
self-loops, and a rotor-router round by the same uniform share plus a
cyclic *window* of ports receiving one extra token.  Self-loop tokens
never leave their node, so executing a round only needs the per-node
edge outflow and a share-gather over the adjacency:

    ``x_{t+1}(u) = x_t(u) - out(u) + Σ_{v ~ u} share(v) [+ window hits]``

:class:`StructuredRound` is that compact description.  Balancers that
can produce it set :attr:`~repro.core.balancer.Balancer.\
supports_structured_sends` and implement ``sends_structured``; the
engines (:class:`~repro.core.engine.Simulator`,
:class:`~repro.scenarios.batch.BatchRunner`) then execute rounds with a
handful of O(n·d) operations and validate invariants on the compact
form — no ``(n, d+)`` allocation anywhere on the hot path.  The dense
``sends`` protocol remains the fallback for arbitrary balancers and
for dense-requiring probes (loads-only and structured-capable probes
ride this path; see :mod:`repro.core.probes`), and
:meth:`StructuredRound.to_dense` reconstructs the exact sends matrix
for parity tests.

All arrays are integer; the structured execution is bit-identical to
the dense engine (enforced by the property suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InvalidSendMatrix
from repro.graphs.balancing import BalancingGraph


@dataclass
class RotorWindow:
    """A cyclic +1 window over each node's ports, in rotor-order space.

    Port ``p`` of node ``u`` receives one extra token iff its cyclic
    position ``positions[u, p]`` lies in the half-open window
    ``[rotors[u], rotors[u] + extra[u])`` taken modulo ``d+``.

    A window describes exactly one round (fresh ``rotors``/``extra``
    every round), so the derived hit matrices are computed at most once
    per instance and cached — ``edge_hit_matrix``/``edge_hits``/
    ``loop_hits`` used to redo the ``(positions - rotors) % d+`` modulo
    work on every call, up to three times per round across the engine,
    probe, and fault paths.  Callers must not mutate ``rotors``/
    ``extra`` after the first query.

    ``positions`` and ``reverse_flat`` are static per-bind precomputes
    owned by the balancer (shared across rounds):

    * ``positions[u, p]`` — cyclic position of port ``p`` in node
      ``u``'s rotor order (the inverse permutation of the port order);
    * ``reverse_flat`` — flat index ``adjacency * d + reverse_port``
      (raveled): gathering the sender-side ``(n, d)`` edge-hit matrix
      through it yields, for each ``(u, j)``, whether the token
      arriving at ``u`` over port ``j`` carries the sender's window +1.
      One hit matrix thus serves both the outgoing and the incoming
      side of the round.
    """

    rotors: np.ndarray
    extra: np.ndarray
    positions: np.ndarray
    reverse_flat: np.ndarray
    _edge_hit_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _loop_hit_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def edge_hit_matrix(self, graph: BalancingGraph) -> np.ndarray:
        """``(n, d)`` bool: does port ``j`` of ``u`` get a window token?"""
        if self._edge_hit_cache is None:
            d_plus = graph.total_degree
            offsets = (
                self.positions[:, : graph.degree] - self.rotors[:, None]
            ) % d_plus
            self._edge_hit_cache = offsets < self.extra[:, None]
        return self._edge_hit_cache

    def edge_hits(self, graph: BalancingGraph) -> np.ndarray:
        """Per-node count of original-edge ports inside the window."""
        return self.edge_hit_matrix(graph).sum(axis=1)

    def loop_hits(self, graph: BalancingGraph) -> np.ndarray:
        """Per-node count of self-loop ports inside the window."""
        if self._loop_hit_cache is None:
            d_plus = graph.total_degree
            offsets = (
                self.positions[:, graph.degree:] - self.rotors[:, None]
            ) % d_plus
            self._loop_hit_cache = (
                (offsets < self.extra[:, None]).sum(axis=1)
            )
        return self._loop_hit_cache


@dataclass
class StructuredRound:
    """One round of sends in compact (matrix-free) form.

    Dense equivalent (see :meth:`to_dense`): every original-edge port of
    node ``u`` carries ``edge_share[u]``, every self-loop port carries
    ``loop_base[u]`` with the first ``loop_ceil[u]`` loops receiving one
    extra token, and — if a :class:`RotorWindow` is attached — every
    port whose cyclic position falls inside the window receives one
    more.  Tokens not covered by any of these stay at the node as its
    remainder.

    ``edge_share`` / ``loop_base`` / ``loop_ceil`` may carry leading
    batch dimensions (``(replicas, n)``) for stateless schemes; a
    ``window`` (stateful rotor schemes) requires plain ``(n,)`` shapes.
    """

    edge_share: np.ndarray
    loop_base: np.ndarray | None = None
    loop_ceil: np.ndarray | None = None
    window: RotorWindow | None = None

    # -- derived per-node totals (all O(n) vectors) ---------------------

    def edge_outflow(self, graph: BalancingGraph) -> np.ndarray:
        """Tokens leaving each node over original edges this round."""
        out = graph.degree * self.edge_share
        if self.window is not None:
            out = out + self.window.edge_hits(graph)
        return out

    def kept_tokens(self, graph: BalancingGraph) -> np.ndarray:
        """Tokens assigned to self-loop ports (they stay at the node)."""
        kept = np.zeros_like(self.edge_share)
        if self.loop_base is not None:
            kept = kept + graph.num_self_loops * self.loop_base
        if self.loop_ceil is not None:
            kept = kept + self.loop_ceil
        if self.window is not None:
            kept = kept + self.window.loop_hits(graph)
        return kept

    def remainder(
        self, graph: BalancingGraph, loads: np.ndarray
    ) -> np.ndarray:
        """Unassigned tokens per node (negative means overdraw).

        O(n) with no gathers: a rotor window of length ``extra < d+``
        covers exactly ``extra`` distinct ports, so the total assigned
        is ``d·edge_share + d°·loop_base + loop_ceil + extra``
        regardless of where the window falls.
        """
        assigned = graph.degree * self.edge_share
        if self.loop_base is not None:
            assigned = assigned + graph.num_self_loops * self.loop_base
        if self.loop_ceil is not None:
            assigned = assigned + self.loop_ceil
        if self.window is not None:
            assigned = assigned + self.window.extra
        return loads - assigned

    # -- execution ------------------------------------------------------

    def apply(
        self, graph: BalancingGraph, loads: np.ndarray
    ) -> np.ndarray:
        """Execute the round: the new load vector (or stacked vectors).

        Self-loop tokens and the remainder both stay at the node, so
        only the edge flows move:
        ``new = loads - edge_outflow + share-gather (+ window hits)``.
        """
        share = self.edge_share
        incoming = np.take(share, graph.adjacency, axis=-1).sum(axis=-1)
        outgoing = graph.degree * share
        if self.window is not None:
            # One sender-side hit matrix serves both directions: its
            # row sums are the extra outflow, and gathering it through
            # the precomputed reverse-edge index yields the extra
            # inflow.
            hits = self.window.edge_hit_matrix(graph)
            outgoing = outgoing + hits.sum(axis=1)
            incoming = incoming + (
                hits.reshape(-1)[self.window.reverse_flat]
                .reshape(graph.adjacency.shape)
                .sum(axis=1)
            )
        return loads - outgoing + incoming

    # -- validation (compact form; no dense allocation) -----------------

    def validate(self, graph: BalancingGraph, loads: np.ndarray) -> None:
        """Structural validation mirroring the dense sends checks.

        Shape/dtype/nonnegativity of every component, ``loop_ceil``
        within the number of self-loops, window lengths within
        ``[0, d+)`` — all on O(n) vectors.  Overdraw (negative
        remainder) is checked separately by the engines because it is
        enforced even when per-round validation is off.
        """
        expected = loads.shape
        num_loops = graph.num_self_loops
        for label, array in (
            ("edge_share", self.edge_share),
            ("loop_base", self.loop_base),
            ("loop_ceil", self.loop_ceil),
        ):
            if array is None:
                continue
            if array.shape != expected:
                raise InvalidSendMatrix(
                    f"structured {label} has shape {array.shape}, "
                    f"expected {expected}"
                )
            if not np.issubdtype(array.dtype, np.integer):
                raise InvalidSendMatrix(
                    f"structured {label} must be integer, got dtype "
                    f"{array.dtype}"
                )
            if array.size and array.min() < 0:
                raise InvalidSendMatrix(
                    f"structured {label} contains negative entries; "
                    "tokens can only move forward along edges"
                )
        if num_loops == 0 and (
            (self.loop_base is not None and np.any(self.loop_base != 0))
            or (self.loop_ceil is not None and np.any(self.loop_ceil != 0))
        ):
            raise InvalidSendMatrix(
                "structured round assigns self-loop tokens but the graph "
                "has no self-loops"
            )
        if self.loop_ceil is not None and num_loops > 0:
            if self.loop_ceil.max() > num_loops:
                raise InvalidSendMatrix(
                    f"structured loop_ceil exceeds the {num_loops} "
                    "self-loops available"
                )
        window = self.window
        if window is not None:
            if self.edge_share.ndim != 1:
                raise InvalidSendMatrix(
                    "rotor windows describe per-node state and require "
                    "1-D structured rounds (got batched shares)"
                )
            d_plus = graph.total_degree
            n = graph.num_nodes
            for label, array in (
                ("rotors", window.rotors),
                ("extra", window.extra),
            ):
                if array.shape != (n,):
                    raise InvalidSendMatrix(
                        f"rotor window {label} has shape {array.shape}, "
                        f"expected ({n},)"
                    )
            if window.extra.min() < 0 or window.extra.max() >= d_plus:
                raise InvalidSendMatrix(
                    f"rotor window lengths must lie in [0, {d_plus})"
                )
            if window.rotors.min() < 0 or window.rotors.max() >= d_plus:
                raise InvalidSendMatrix(
                    f"rotor positions must lie in [0, {d_plus})"
                )

    # -- interop --------------------------------------------------------

    def to_dense(self, graph: BalancingGraph) -> np.ndarray:
        """The exact ``(..., n, d+)`` sends matrix this round describes.

        Bit-identical to the balancer's dense ``sends`` output; used by
        the parity tests and anywhere a monitor needs real matrices.
        """
        degree = graph.degree
        d_plus = graph.total_degree
        num_loops = graph.num_self_loops
        sends = np.zeros(self.edge_share.shape + (d_plus,), dtype=np.int64)
        sends[..., :degree] = self.edge_share[..., None]
        if self.loop_base is not None:
            sends[..., degree:] = self.loop_base[..., None]
        if self.loop_ceil is not None and num_loops > 0:
            sends[..., degree:] += (
                np.arange(num_loops) < self.loop_ceil[..., None]
            )
        if self.window is not None:
            offsets = (
                self.window.positions - self.window.rotors[:, None]
            ) % d_plus
            sends += offsets < self.window.extra[:, None]
        return sends
