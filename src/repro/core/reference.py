"""A deliberately naive reference engine for differential testing.

:class:`ReferenceSimulator` executes the same round semantics as
:class:`~repro.core.engine.Simulator` using per-token Python loops — no
vectorization, no index precomputation, nothing clever.  It exists so
the fast engine can be property-tested against an implementation whose
correctness is obvious by inspection.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import Balancer
from repro.core.errors import NegativeLoadError
from repro.graphs.balancing import BalancingGraph


class ReferenceSimulator:
    """Slow, obviously-correct round execution (tests only)."""

    def __init__(
        self,
        graph: BalancingGraph,
        balancer: Balancer,
        initial_loads: np.ndarray,
    ) -> None:
        self.graph = graph
        self.balancer = balancer.bind(graph)
        self.loads = [int(v) for v in initial_loads]
        self.round = 1

    def step(self) -> list[int]:
        graph = self.graph
        loads_array = np.array(self.loads, dtype=np.int64)
        sends = self.balancer.sends(loads_array, self.round)
        new_loads = [0] * graph.num_nodes
        # Remainders stay put.
        for node in range(graph.num_nodes):
            outgoing = int(sends[node].sum())
            remainder = self.loads[node] - outgoing
            if remainder < 0 and not self.balancer.allows_negative:
                raise NegativeLoadError(
                    f"node {node} overdrew in reference engine"
                )
            new_loads[node] += remainder
        # Tokens travel one port at a time.
        for node in range(graph.num_nodes):
            for port in range(graph.total_degree):
                target = graph.port_target(node, port)
                new_loads[target] += int(sends[node, port])
        self.loads = new_loads
        self.round += 1
        return new_loads

    def run(self, rounds: int) -> list[int]:
        for _ in range(rounds):
            self.step()
        return self.loads
