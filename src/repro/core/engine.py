"""Synchronous simulation engine.

A round of the discrete diffusion process (Section 1.3 of the paper):

1. every node ``u`` looks at its load ``x_t(u)`` and assigns tokens to
   its ``d+`` ports (the balancer's :meth:`sends`);
2. tokens move simultaneously; self-loop tokens and the unassigned
   remainder stay at the node;
3. the new load is ``x_{t+1}(u) = r_t(u) + f^in_t(u)``.

The engine executes this with vectorized gathers (using the graph's
reverse-port map), enforces structural invariants every round (shape,
nonnegative sends, no overdraw unless the balancer opted in, token
conservation), and feeds attached probes.

Execution backends are registry plugins (:mod:`repro.engines`); the
simulator orchestrates the round and delegates the array computation
to the selected backend.  The **dense** protocol asks the balancer for
the full ``(n, d+)`` sends matrix every round (backends: ``dense``,
``spmm``).  The **structured** protocol asks for a compact
:class:`~repro.core.structured.StructuredRound` (uniform edge share +
loop/rotor-window assignment) and executes the round matrix-free in
O(n·d) (backends: ``structured``, ``compiled``) — at large ``n`` the
dense matrix is the entire memory and time budget, so this is the fast
path for SEND/rotor-style schemes.

Observers are capability-typed :class:`~repro.core.probes.Probe`\\ s:
the engine feeds each probe the cheapest representation it accepts, so
``engine="auto"`` stays on the structured path with loads-only probes
attached (and with sends probes that accept compact rounds) and only
falls back to dense for probes that demand real sends matrices.  The
legacy ``monitors=`` parameter remains and conservatively pins the
dense engine, exactly as monitors always did — prefer ``probes=``.
Both engines produce bit-identical trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.balancer import Balancer
from repro.core.errors import (
    ConservationError,
    InvalidSendMatrix,
    NegativeLoadError,
)
from repro.core.loads import validate_delta, validate_loads
from repro.engines import (
    ENGINES,
    STRUCTURED,
    create_engine,
    engine_names,
    split_engine_spec,
)
from repro.core.metrics import discrepancy
from repro.faults.schedules import (
    apply_round_faults,
    dense_port_values,
    structured_port_values,
    validate_round_faults,
)
from repro.core.probes import LOADS, Probe, build_probes, dense_required
from repro.core.trace import RunRecord, build_record
from repro.topology.schedules import (
    apply_topology_events,
    validate_topology_events,
)


class _AttachGuard(tuple):
    """Read-only view of a simulator's probes.

    Mutating the old ``Simulator.monitors`` list after construction
    silently skipped ``start()`` and changed engine selection; the
    supported path is :meth:`Simulator.attach`, and every mutation
    attempt says so loudly instead of half-working.
    """

    def _refuse(self, *args, **kwargs):
        raise TypeError(
            "Simulator.monitors is read-only; attach observers with "
            "Simulator.attach(probe), which starts the probe and "
            "re-selects the engine"
        )

    append = extend = insert = remove = clear = _refuse
    __iadd__ = _refuse


@dataclass
class SimulationResult:
    """Outcome of a (partial) run.

    Attributes:
        initial_loads: the vector the run started from.
        final_loads: the vector after the last executed round.
        rounds_executed: number of rounds actually executed.
        discrepancy_history: discrepancy at each round boundary
            (``[0]`` is the initial discrepancy) if recording was on.
            Entries are ``int`` for the discrete token model; real-
            valued dynamics (e.g. continuous diffusion results
            repackaged through this type) carry ``float`` entries.
        stopped_early: True if a ``run_until`` predicate fired.
        record: the columnar :class:`~repro.core.trace.RunRecord` —
            engine summary plus every probe's columns and scalars.
    """

    initial_loads: np.ndarray
    final_loads: np.ndarray
    rounds_executed: int
    discrepancy_history: list[int | float] = field(default_factory=list)
    stopped_early: bool = False
    record: RunRecord | None = None

    @property
    def initial_discrepancy(self) -> int | float:
        return discrepancy(self.initial_loads)

    @property
    def final_discrepancy(self) -> int | float:
        return discrepancy(self.final_loads)

    def summary(self) -> dict:
        return {
            "rounds": self.rounds_executed,
            "initial_discrepancy": self.initial_discrepancy,
            "final_discrepancy": self.final_discrepancy,
            "stopped_early": self.stopped_early,
        }


class Simulator:
    """Drives one balancer on one graph from one initial vector.

    Args:
        graph: the balancing graph ``G+``.
        balancer: the algorithm; it is (re)bound to ``graph``.
        initial_loads: length-``n`` nonnegative integer vector.
        monitors: legacy observers; they pin the dense engine
            (deprecated — pass ``probes=`` instead).
        probes: capability-typed observers (:class:`Probe` instances,
            :class:`~repro.core.probes.ProbeSpec`\\ s, or zero-argument
            factories).  Loads-only probes keep ``engine="auto"`` on
            the structured fast path.
        dynamics: optional dynamic workload — an
            :class:`~repro.dynamics.injectors.Injector` instance or a
            :class:`~repro.dynamics.spec.DynamicsSpec`.  Its delta is
            applied at the *beginning* of every round, before the
            balancing step (adversary moves first); the running token
            total is adjusted accordingly, so conservation of the
            balancing step itself stays fully checked.  Injection is a
            vector add and rides every engine unchanged.
        faults: optional network-fault schedule — a
            :class:`~repro.faults.schedules.FaultSchedule` instance or
            a :class:`~repro.faults.spec.FaultSpec`.  Each round opens
            with its crash/recover epochs (before injection); the
            balancing step then runs over the live topology: sends on
            dead links bounce back to the sender and dropped sends
            vanish from the running total in a tracked way, so the
            conservation check stays an exact equality.
        topology: optional dynamic-topology schedule — a
            :class:`~repro.topology.schedules.TopologySchedule`
            instance or a :class:`~repro.topology.spec.TopologySpec`.
            Each round opens with its churn events (before everything
            else): the engine copies the input graph into a
            :class:`~repro.graphs.mutable.MutableBalancingGraph` and
            mutates it in place, then hands the dirty node set to the
            balancer's ``refresh_topology`` — per-round cost scales
            with the number of mutated edges, not ``n``.  Leaving
            nodes hand their load to surviving neighbors, so topology
            changes conserve tokens and the conservation check stays
            exact.  Mutually exclusive with ``faults`` (fault
            schedules precompute canonical port maps that churn would
            silently invalidate).
        record_history: keep the per-round discrepancy trajectory.
        validate_every_round: full structural validation of each sends
            matrix (or compact round description).  Cheap (vectorized)
            and on by default; can be turned off for the innermost
            benchmark loops.
        engine: any name registered in :data:`repro.engines.ENGINES`
            (``"dense"``, ``"structured"``, ``"spmm"``,
            ``"compiled"``, ...) or ``"auto"`` (default) — auto picks
            ``structured`` when the balancer supports it and no
            attached observer demands dense sends matrices, ``dense``
            otherwise.  Structured-protocol backends carry the same
            constraints as ``"structured"``; dense-protocol backends
            work with everything.
    """

    def __init__(
        self,
        graph,
        balancer: Balancer,
        initial_loads: np.ndarray,
        *,
        monitors: Iterable = (),
        probes: Iterable = (),
        dynamics=None,
        faults=None,
        topology=None,
        record_history: bool = True,
        validate_every_round: bool = True,
        engine: str = "auto",
    ) -> None:
        initial_loads = validate_loads(initial_loads)
        if initial_loads.shape[0] != graph.num_nodes:
            raise InvalidSendMatrix(
                f"load vector has {initial_loads.shape[0]} entries for a "
                f"graph with {graph.num_nodes} nodes"
            )
        if topology is not None:
            if faults is not None:
                raise ValueError(
                    "faults and topology cannot be combined: fault "
                    "schedules precompute canonical port maps from the "
                    "initial graph, which topology churn invalidates"
                )
            from repro.graphs.mutable import MutableBalancingGraph
            from repro.topology.spec import as_topology_schedule

            topology = as_topology_schedule(topology)
            # Private mutable copy: churn must never leak into the
            # caller's (possibly shared/prebuilt) graph instance.
            graph = MutableBalancingGraph.from_graph(graph)
        self._topology = topology
        self.graph = graph
        self.balancer = balancer.bind(graph)
        self.initial_loads = initial_loads.copy()
        self._loads = initial_loads.copy()
        legacy = build_probes(monitors)
        self._legacy_dense = bool(legacy)
        self._probes: list[Probe] = list(legacy) + list(
            build_probes(probes)
        )
        self.record_history = record_history
        self.validate_every_round = validate_every_round
        if engine != "auto" and split_engine_spec(engine)[0] not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; registered engines: "
                f"{', '.join(engine_names())} (or 'auto')"
            )
        self._requested_engine = engine
        if engine == "auto":
            engine = (
                "structured"
                if self.balancer.supports_structured_sends
                and not self._legacy_dense
                and not dense_required(self._probes)
                else "dense"
            )
        self._backend = create_engine(engine)
        if self._backend.protocol == STRUCTURED:
            if not self.balancer.supports_structured_sends:
                raise ValueError(
                    f"balancer {self.balancer.name!r} does not implement "
                    "structured sends; use the dense engine"
                )
            if self._legacy_dense:
                raise ValueError(
                    "monitors consume dense sends matrices; use the "
                    "dense engine (or pass them as probes=)"
                )
            if dense_required(self._probes):
                bad = next(
                    p
                    for p in self._probes
                    if p.needs != LOADS and not p.accepts_structured
                )
                raise ValueError(
                    f"probe {type(bad).__name__} requires dense sends "
                    "matrices; use the dense engine"
                )
        self.engine = engine
        if dynamics is not None:
            from repro.dynamics.spec import as_injector

            dynamics = as_injector(dynamics)
        self._injector = dynamics
        if faults is not None:
            from repro.faults.spec import as_fault_schedule

            faults = as_fault_schedule(faults)
        self._faults = faults
        self._round_faults = None
        self._tokens_injected = 0
        self._tokens_dropped = 0
        self._topology_rounds = 0
        self.total_tokens = int(initial_loads.sum())
        self.round = 1  # the paper's convention: x_1 is the initial vector
        self.discrepancy_history: list[int | float] = (
            [discrepancy(initial_loads)] if record_history else []
        )
        if self._topology is not None:
            self._topology.start(graph, self._loads)
        if self._faults is not None:
            self._faults.start(graph, self._loads)
        if self._injector is not None:
            self._injector.start(graph, self._loads)
        for probe in self._probes:
            probe.start(graph, self.balancer, self._loads)

    # ------------------------------------------------------------------

    @property
    def loads(self) -> np.ndarray:
        """Current load vector (owned by the engine; copy to mutate)."""
        return self._loads

    @property
    def monitors(self) -> tuple:
        """Attached observers (read-only; use :meth:`attach` to add)."""
        return _AttachGuard(self._probes)

    @property
    def probes(self) -> tuple:
        """Attached observers (read-only; use :meth:`attach` to add)."""
        return _AttachGuard(self._probes)

    def attach(self, probe) -> Probe:
        """Attach an observer mid-run (the supported late-attach path).

        The probe is ``start``-ed with the *current* load vector, so it
        observes from this round onward.  If the run is on the auto-
        selected structured engine and the probe demands dense sends,
        the engine transparently switches to dense (bit-identical
        trajectories); an explicitly requested structured engine raises
        instead of silently changing execution.
        """
        (probe,) = build_probes((probe,))
        if (
            self._backend.protocol == STRUCTURED
            and probe.needs != LOADS
            and not probe.accepts_structured
        ):
            if self._requested_engine != "auto":
                raise ValueError(
                    f"probe {type(probe).__name__} requires dense sends "
                    f"matrices but the {self.engine} engine was "
                    "explicitly requested"
                )
            self.engine = "dense"
            self._backend = create_engine("dense")
        probe.start(self.graph, self.balancer, self._loads)
        self._probes.append(probe)
        return probe

    def _apply_injection(self) -> None:
        """Apply this round's load events (the adversary moves first).

        Applied in place: the engine owns ``_loads`` (observers that
        retain vectors must copy, per the probe contract), and a fresh
        O(n) allocation every round costs more in allocator churn than
        the add itself at large ``n``.
        """
        delta = self._injector.delta(self.round, self._loads)
        delta = validate_delta(
            delta, self._loads, self._injector.name, self.round
        )
        np.add(self._loads, delta, out=self._loads)
        moved = int(delta.sum())
        self.total_tokens += moved
        self._tokens_injected += moved

    def _apply_fault_events(self) -> None:
        """Open the round with the fault schedule's epoch events.

        Crash/recover load movement lands *before* injection; the
        round's dead/dropped port sets are stashed for the balancing
        step to correct against.
        """
        faults = self._faults.round_state(self.round, self._loads)
        if faults is not None:
            if self.validate_every_round and not faults.trusted:
                validate_round_faults(faults, self.graph)
            if faults.load_delta is not None:
                delta = validate_delta(
                    faults.load_delta,
                    self._loads,
                    self._faults.name,
                    self.round,
                )
                np.add(self._loads, delta, out=self._loads)
                self.total_tokens += int(delta.sum())
        self._round_faults = faults

    def _apply_topology_events(self) -> None:
        """Open the round with the topology schedule's churn events.

        The graph is mutated in place (the engine owns its private
        mutable copy); load handoff from leaving nodes lands before
        fault epochs and injection; the balancer then repairs its
        graph-derived structures from the dirty node set only.
        """
        events = self._topology.round_events(self.round, self._loads)
        if events is None or events.is_empty():
            return
        if self.validate_every_round and not events.trusted:
            validate_topology_events(events, self.graph)
        apply_topology_events(self.graph, events, self._loads)
        dirty = self.graph.consume_dirty()
        self.balancer.refresh_topology(self.graph, dirty)
        self._backend.refresh_topology(self.graph, dirty)
        self._topology_rounds += 1

    def step(self) -> np.ndarray:
        """Execute one synchronous round; returns the new load vector."""
        if self._topology is not None:
            self._apply_topology_events()
        if self._faults is not None:
            self._apply_fault_events()
        if self._injector is not None:
            self._apply_injection()
        if self._backend.protocol == STRUCTURED:
            return self._step_structured()
        graph = self.graph
        loads = self._loads
        sends = self.balancer.sends(loads, self.round)
        if self.validate_every_round:
            self._validate_sends(sends, loads)
        outgoing = sends.sum(axis=1)
        remainder = loads - outgoing
        if not self.balancer.allows_negative and remainder.min() < 0:
            node = int(np.argmin(remainder))
            raise NegativeLoadError(
                f"round {self.round}: node {node} sent "
                f"{int(outgoing[node])} tokens but holds "
                f"{int(loads[node])} "
                f"(balancer {self.balancer.name!r} does not allow "
                "negative load)"
            )
        incoming = self._backend.incoming(graph, sends)
        kept = sends[:, graph.degree:].sum(axis=1)
        new_loads = remainder + incoming + kept
        if self._round_faults is not None:
            dropped = apply_round_faults(
                new_loads,
                graph,
                self._round_faults,
                lambda pairs: dense_port_values(sends, pairs),
            )
            self.total_tokens -= dropped
            self._tokens_dropped += dropped
        if new_loads.sum() != self.total_tokens:
            raise ConservationError(
                f"round {self.round}: token count changed from "
                f"{self.total_tokens} to {int(new_loads.sum())}"
            )
        for probe in self._probes:
            probe.observe(self.round, loads, sends, new_loads)
        if self.record_history:
            self.discrepancy_history.append(discrepancy(new_loads))
        self._loads = new_loads
        self.round += 1
        return new_loads

    def _step_structured(self) -> np.ndarray:
        """One round executed matrix-free from a compact description.

        Probes ride along at their declared capability: loads-only
        probes receive the post-round vector, structured-capable sends
        probes receive the compact round itself.
        """
        graph = self.graph
        loads = self._loads
        compact = self.balancer.sends_structured(loads, self.round)
        if self.validate_every_round:
            compact.validate(graph, loads)
        if not self.balancer.allows_negative:
            remainder = compact.remainder(graph, loads)
            if remainder.min() < 0:
                node = int(np.argmin(remainder))
                raise NegativeLoadError(
                    f"round {self.round}: node {node} sent "
                    f"{int(loads[node] - remainder[node])} tokens but "
                    f"holds {int(loads[node])} "
                    f"(balancer {self.balancer.name!r} does not allow "
                    "negative load)"
                )
        new_loads = self._backend.apply(graph, compact, loads)
        if self._round_faults is not None:
            dropped = apply_round_faults(
                new_loads,
                graph,
                self._round_faults,
                lambda pairs: structured_port_values(
                    compact, graph, pairs
                ),
            )
            self.total_tokens -= dropped
            self._tokens_dropped += dropped
        if new_loads.sum() != self.total_tokens:
            raise ConservationError(
                f"round {self.round}: token count changed from "
                f"{self.total_tokens} to {int(new_loads.sum())}"
            )
        for probe in self._probes:
            if probe.needs == LOADS:
                probe.observe_loads(self.round, new_loads)
            else:
                probe.observe_structured(
                    self.round, loads, compact, new_loads
                )
        if self.record_history:
            self.discrepancy_history.append(discrepancy(new_loads))
        self._loads = new_loads
        self.round += 1
        return new_loads

    def run(self, rounds: int) -> SimulationResult:
        """Execute ``rounds`` rounds."""
        for _ in range(rounds):
            self.step()
        return self._result(stopped_early=False)

    def run_until(
        self,
        predicate: Callable[[np.ndarray], bool],
        max_rounds: int,
        check_every: int = 1,
    ) -> SimulationResult:
        """Run until ``predicate(loads)`` holds or ``max_rounds`` elapse."""
        executed = 0
        if predicate(self._loads):
            return self._result(stopped_early=True)
        while executed < max_rounds:
            self.step()
            executed += 1
            if executed % check_every == 0 and predicate(self._loads):
                return self._result(stopped_early=True)
        return self._result(stopped_early=False)

    def run_to_discrepancy(
        self,
        target: int,
        max_rounds: int,
        check_every: int = 1,
    ) -> SimulationResult:
        """Run until the discrepancy is at most ``target``."""
        return self.run_until(
            lambda loads: discrepancy(loads) <= target,
            max_rounds,
            check_every=check_every,
        )

    # ------------------------------------------------------------------

    def _validate_sends(self, sends: np.ndarray, loads: np.ndarray) -> None:
        expected = (self.graph.num_nodes, self.graph.total_degree)
        if sends.shape != expected:
            raise InvalidSendMatrix(
                f"sends matrix has shape {sends.shape}, expected {expected}"
            )
        if not np.issubdtype(sends.dtype, np.integer):
            raise InvalidSendMatrix(
                f"sends matrix must be integer, got dtype {sends.dtype}"
            )
        if sends.min() < 0:
            raise InvalidSendMatrix(
                "sends matrix contains negative entries; tokens can only "
                "move forward along edges"
            )

    def record(self, replica: int = 0) -> RunRecord:
        """Columnar record of the run so far (engine facts + probes)."""
        engine_summary = {
            "initial_discrepancy": discrepancy(self.initial_loads),
            "final_discrepancy": discrepancy(self._loads),
        }
        if self._injector is not None:
            engine_summary["tokens_injected"] = self._tokens_injected
            engine_summary.update(self._injector.summary())
        if self._faults is not None:
            engine_summary["fault_schedule"] = self._faults.name
            engine_summary["tokens_dropped"] = self._tokens_dropped
            engine_summary.update(self._faults.summary())
        if self._topology is not None:
            engine_summary["topology_schedule"] = self._topology.name
            engine_summary["topology_rounds"] = self._topology_rounds
            engine_summary.update(self._topology.summary())
        return build_record(
            replica=replica,
            rounds_executed=self.round - 1,
            stopped_early=False,
            engine_summary=engine_summary,
            discrepancy_history=(
                self.discrepancy_history if self.record_history else None
            ),
            probes=self._probes,
        )

    def _result(self, *, stopped_early: bool) -> SimulationResult:
        """Snapshot the run so far.

        ``rounds_executed`` is always the cumulative ``self.round - 1``
        (total rounds since construction), regardless of how many calls
        to :meth:`run`/:meth:`run_until` produced them — including the
        early-return path of :meth:`run_until`.
        """
        record = self.record()
        record.stopped_early = stopped_early
        return SimulationResult(
            initial_loads=self.initial_loads,
            final_loads=self._loads.copy(),
            rounds_executed=self.round - 1,
            discrepancy_history=list(self.discrepancy_history),
            stopped_early=stopped_early,
            record=record,
        )


def simulate(
    graph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    rounds: int,
    *,
    monitors: Iterable = (),
    probes: Iterable = (),
    dynamics=None,
    faults=None,
    topology=None,
    record_history: bool = True,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        graph,
        balancer,
        initial_loads,
        monitors=monitors,
        probes=probes,
        dynamics=dynamics,
        faults=faults,
        topology=topology,
        record_history=record_history,
    )
    return simulator.run(rounds)
