"""Synchronous simulation engine.

A round of the discrete diffusion process (Section 1.3 of the paper):

1. every node ``u`` looks at its load ``x_t(u)`` and assigns tokens to
   its ``d+`` ports (the balancer's :meth:`sends`);
2. tokens move simultaneously; self-loop tokens and the unassigned
   remainder stay at the node;
3. the new load is ``x_{t+1}(u) = r_t(u) + f^in_t(u)``.

The engine executes this with vectorized gathers (using the graph's
reverse-port map), enforces structural invariants every round (shape,
nonnegative sends, no overdraw unless the balancer opted in, token
conservation), and feeds attached monitors.

Two execution engines are available.  The **dense** engine asks the
balancer for the full ``(n, d+)`` sends matrix every round.  The
**structured** engine asks for a compact
:class:`~repro.core.structured.StructuredRound` (uniform edge share +
loop/rotor-window assignment) and executes the round matrix-free in
O(n·d) — at large ``n`` the dense matrix is the entire memory and time
budget, so this is the fast path for SEND/rotor-style schemes.  The
default ``engine="auto"`` picks structured whenever the balancer
supports it and no monitors are attached (monitors consume dense sends
matrices); both engines produce bit-identical trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.balancer import Balancer
from repro.core.errors import (
    ConservationError,
    InvalidSendMatrix,
    NegativeLoadError,
)
from repro.core.loads import validate_loads
from repro.core.metrics import discrepancy
from repro.core.monitors import Monitor
from repro.graphs.balancing import BalancingGraph


@dataclass
class SimulationResult:
    """Outcome of a (partial) run.

    Attributes:
        initial_loads: the vector the run started from.
        final_loads: the vector after the last executed round.
        rounds_executed: number of rounds actually executed.
        discrepancy_history: discrepancy at each round boundary
            (``[0]`` is the initial discrepancy) if recording was on.
        stopped_early: True if a ``run_until`` predicate fired.
    """

    initial_loads: np.ndarray
    final_loads: np.ndarray
    rounds_executed: int
    discrepancy_history: list[int] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def initial_discrepancy(self) -> int:
        return discrepancy(self.initial_loads)

    @property
    def final_discrepancy(self) -> int:
        return discrepancy(self.final_loads)

    def summary(self) -> dict:
        return {
            "rounds": self.rounds_executed,
            "initial_discrepancy": self.initial_discrepancy,
            "final_discrepancy": self.final_discrepancy,
            "stopped_early": self.stopped_early,
        }


class Simulator:
    """Drives one balancer on one graph from one initial vector.

    Args:
        graph: the balancing graph ``G+``.
        balancer: the algorithm; it is (re)bound to ``graph``.
        initial_loads: length-``n`` nonnegative integer vector.
        monitors: observers receiving every round.
        record_history: keep the per-round discrepancy trajectory.
        validate_every_round: full structural validation of each sends
            matrix (or compact round description).  Cheap (vectorized)
            and on by default; can be turned off for the innermost
            benchmark loops.
        engine: ``"dense"``, ``"structured"``, or ``"auto"`` (default)
            — structured when the balancer supports it and no monitors
            are attached, dense otherwise.
    """

    def __init__(
        self,
        graph: BalancingGraph,
        balancer: Balancer,
        initial_loads: np.ndarray,
        *,
        monitors: Iterable[Monitor] = (),
        record_history: bool = True,
        validate_every_round: bool = True,
        engine: str = "auto",
    ) -> None:
        initial_loads = validate_loads(initial_loads)
        if initial_loads.shape[0] != graph.num_nodes:
            raise InvalidSendMatrix(
                f"load vector has {initial_loads.shape[0]} entries for a "
                f"graph with {graph.num_nodes} nodes"
            )
        self.graph = graph
        self.balancer = balancer.bind(graph)
        self.initial_loads = initial_loads.copy()
        self._loads = initial_loads.copy()
        self.monitors = list(monitors)
        self.record_history = record_history
        self.validate_every_round = validate_every_round
        if engine not in ("auto", "dense", "structured"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "auto":
            engine = (
                "structured"
                if self.balancer.supports_structured_sends
                and not self.monitors
                else "dense"
            )
        elif engine == "structured":
            if not self.balancer.supports_structured_sends:
                raise ValueError(
                    f"balancer {self.balancer.name!r} does not implement "
                    "structured sends; use the dense engine"
                )
            if self.monitors:
                raise ValueError(
                    "monitors consume dense sends matrices; use the "
                    "dense engine"
                )
        self.engine = engine
        self.total_tokens = int(initial_loads.sum())
        self.round = 1  # the paper's convention: x_1 is the initial vector
        self.discrepancy_history: list[int] = (
            [discrepancy(initial_loads)] if record_history else []
        )
        for monitor in self.monitors:
            monitor.start(graph, self.balancer, self._loads)

    # ------------------------------------------------------------------

    @property
    def loads(self) -> np.ndarray:
        """Current load vector (owned by the engine; copy to mutate)."""
        return self._loads

    def step(self) -> np.ndarray:
        """Execute one synchronous round; returns the new load vector.

        Monitors appended to :attr:`monitors` after construction force
        the round back onto the dense path so their ``observe`` hooks
        receive real sends matrices — but the engine only calls
        ``start`` on monitors passed to the constructor, so a late
        addition must be ``start``-ed by the caller first.
        """
        if self.engine == "structured" and not self.monitors:
            return self._step_structured()
        graph = self.graph
        loads = self._loads
        sends = self.balancer.sends(loads, self.round)
        if self.validate_every_round:
            self._validate_sends(sends, loads)
        outgoing = sends.sum(axis=1)
        remainder = loads - outgoing
        if not self.balancer.allows_negative and remainder.min() < 0:
            node = int(np.argmin(remainder))
            raise NegativeLoadError(
                f"round {self.round}: node {node} sent "
                f"{int(outgoing[node])} tokens but holds "
                f"{int(loads[node])} "
                f"(balancer {self.balancer.name!r} does not allow "
                "negative load)"
            )
        incoming = sends[graph.adjacency, graph.reverse_port].sum(axis=1)
        kept = sends[:, graph.degree:].sum(axis=1)
        new_loads = remainder + incoming + kept
        if new_loads.sum() != self.total_tokens:
            raise ConservationError(
                f"round {self.round}: token count changed from "
                f"{self.total_tokens} to {int(new_loads.sum())}"
            )
        for monitor in self.monitors:
            monitor.observe(self.round, loads, sends, new_loads)
        if self.record_history:
            self.discrepancy_history.append(discrepancy(new_loads))
        self._loads = new_loads
        self.round += 1
        return new_loads

    def _step_structured(self) -> np.ndarray:
        """One round executed matrix-free from a compact description."""
        graph = self.graph
        loads = self._loads
        compact = self.balancer.sends_structured(loads, self.round)
        if self.validate_every_round:
            compact.validate(graph, loads)
        if not self.balancer.allows_negative:
            remainder = compact.remainder(graph, loads)
            if remainder.min() < 0:
                node = int(np.argmin(remainder))
                raise NegativeLoadError(
                    f"round {self.round}: node {node} sent "
                    f"{int(loads[node] - remainder[node])} tokens but "
                    f"holds {int(loads[node])} "
                    f"(balancer {self.balancer.name!r} does not allow "
                    "negative load)"
                )
        new_loads = compact.apply(graph, loads)
        if new_loads.sum() != self.total_tokens:
            raise ConservationError(
                f"round {self.round}: token count changed from "
                f"{self.total_tokens} to {int(new_loads.sum())}"
            )
        if self.record_history:
            self.discrepancy_history.append(discrepancy(new_loads))
        self._loads = new_loads
        self.round += 1
        return new_loads

    def run(self, rounds: int) -> SimulationResult:
        """Execute ``rounds`` rounds."""
        for _ in range(rounds):
            self.step()
        return self._result(stopped_early=False)

    def run_until(
        self,
        predicate: Callable[[np.ndarray], bool],
        max_rounds: int,
        check_every: int = 1,
    ) -> SimulationResult:
        """Run until ``predicate(loads)`` holds or ``max_rounds`` elapse."""
        executed = 0
        if predicate(self._loads):
            return self._result(stopped_early=True)
        while executed < max_rounds:
            self.step()
            executed += 1
            if executed % check_every == 0 and predicate(self._loads):
                return self._result(stopped_early=True)
        return self._result(stopped_early=False)

    def run_to_discrepancy(
        self,
        target: int,
        max_rounds: int,
        check_every: int = 1,
    ) -> SimulationResult:
        """Run until the discrepancy is at most ``target``."""
        return self.run_until(
            lambda loads: discrepancy(loads) <= target,
            max_rounds,
            check_every=check_every,
        )

    # ------------------------------------------------------------------

    def _validate_sends(self, sends: np.ndarray, loads: np.ndarray) -> None:
        expected = (self.graph.num_nodes, self.graph.total_degree)
        if sends.shape != expected:
            raise InvalidSendMatrix(
                f"sends matrix has shape {sends.shape}, expected {expected}"
            )
        if not np.issubdtype(sends.dtype, np.integer):
            raise InvalidSendMatrix(
                f"sends matrix must be integer, got dtype {sends.dtype}"
            )
        if sends.min() < 0:
            raise InvalidSendMatrix(
                "sends matrix contains negative entries; tokens can only "
                "move forward along edges"
            )

    def _result(self, *, stopped_early: bool) -> SimulationResult:
        """Snapshot the run so far.

        ``rounds_executed`` is always the cumulative ``self.round - 1``
        (total rounds since construction), regardless of how many calls
        to :meth:`run`/:meth:`run_until` produced them — including the
        early-return path of :meth:`run_until`.
        """
        return SimulationResult(
            initial_loads=self.initial_loads,
            final_loads=self._loads.copy(),
            rounds_executed=self.round - 1,
            discrepancy_history=list(self.discrepancy_history),
            stopped_early=stopped_early,
        )


def simulate(
    graph: BalancingGraph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    rounds: int,
    *,
    monitors: Iterable[Monitor] = (),
    record_history: bool = True,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        graph,
        balancer,
        initial_loads,
        monitors=monitors,
        record_history=record_history,
    )
    return simulator.run(rounds)
