"""Monitor framework: per-round observers attached to the engine.

Monitors receive every round's ``(t, loads_before, sends, loads_after)``
and are the mechanism behind flow accounting, fairness verification,
potential tracking, and trajectory recording.  They deliberately have no
ability to influence the simulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import Balancer
from repro.core.metrics import discrepancy
from repro.graphs.balancing import BalancingGraph


class Monitor:
    """Base class for simulation observers (no-op by default)."""

    def start(
        self,
        graph: BalancingGraph,
        balancer: Balancer,
        loads: np.ndarray,
    ) -> None:
        """Called once before the first round with the initial vector."""

    def observe(
        self,
        t: int,
        loads_before: np.ndarray,
        sends: np.ndarray,
        loads_after: np.ndarray,
    ) -> None:
        """Called after every completed round ``t``."""


class DiscrepancyRecorder(Monitor):
    """Records the discrepancy trajectory (one entry per round boundary).

    ``history[0]`` is the initial discrepancy; ``history[t]`` the
    discrepancy at the beginning of round ``t + 1``.
    """

    def __init__(self) -> None:
        self.history: list[int] = []

    def start(self, graph, balancer, loads) -> None:
        self.history = [discrepancy(loads)]

    def observe(self, t, loads_before, sends, loads_after) -> None:
        self.history.append(discrepancy(loads_after))

    @property
    def final(self) -> int:
        return self.history[-1]

    @property
    def minimum(self) -> int:
        return min(self.history)


class LoadBoundsMonitor(Monitor):
    """Tracks the global min/max load ever observed.

    Used to verify the NL (no negative load) column of Table 1: an
    algorithm is negative-load safe on a run iff ``min_ever >= 0``.
    """

    def __init__(self) -> None:
        self.min_ever: int | None = None
        self.max_ever: int | None = None

    def start(self, graph, balancer, loads) -> None:
        self.min_ever = int(loads.min())
        self.max_ever = int(loads.max())

    def observe(self, t, loads_before, sends, loads_after) -> None:
        self.min_ever = min(self.min_ever, int(loads_after.min()))
        self.max_ever = max(self.max_ever, int(loads_after.max()))

    @property
    def went_negative(self) -> bool:
        return self.min_ever is not None and self.min_ever < 0


class TrajectoryRecorder(Monitor):
    """Records full load vectors every ``stride`` rounds (memory heavy)."""

    def __init__(self, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self.snapshots: list[np.ndarray] = []
        self.rounds: list[int] = []

    def start(self, graph, balancer, loads) -> None:
        self.snapshots = [loads.copy()]
        self.rounds = [0]

    def observe(self, t, loads_before, sends, loads_after) -> None:
        if t % self.stride == 0:
            self.snapshots.append(loads_after.copy())
            self.rounds.append(t)

    def as_array(self) -> np.ndarray:
        return np.stack(self.snapshots, axis=0)


class PeriodDetector(Monitor):
    """Detects when the load vector revisits a previous state.

    Deterministic stateless dynamics on a finite state space must enter
    a cycle; Theorem 4.3's construction alternates with period 2.  The
    detector hashes each vector and reports the first recurrence.
    """

    def __init__(self) -> None:
        self._seen: dict[bytes, int] = {}
        self.period: int | None = None
        self.first_repeat_round: int | None = None

    def start(self, graph, balancer, loads) -> None:
        self._seen = {loads.tobytes(): 0}
        self.period = None
        self.first_repeat_round = None

    def observe(self, t, loads_before, sends, loads_after) -> None:
        if self.period is not None:
            return
        key = loads_after.tobytes()
        if key in self._seen:
            self.period = t - self._seen[key]
            self.first_repeat_round = t
        else:
            self._seen[key] = t
