"""Observers: the legacy ``Monitor`` base and the loads-only recorders.

Historically every observer was a :class:`Monitor` receiving each
round's dense ``(t, loads_before, sends, loads_after)`` — which forced
the engines off the matrix-free structured path.  The observation layer
is now capability-typed (:mod:`repro.core.probes`): observers are
:class:`~repro.core.probes.Probe`\\ s declaring what they consume, and
the recorders in this module — discrepancy, load bounds, trajectory
snapshots, period detection — consume only load vectors, so they ride
the structured engine and the vectorized batch runner at full speed.

:class:`Monitor` remains as the *legacy* base class: it is simply a
dense-requiring probe (``needs = "sends"``), so third-party subclasses
keep working unchanged — at the cost of pinning the run to the dense
engine.  **Deprecated:** new observers should subclass
:class:`~repro.core.probes.Probe` directly and declare the cheapest
capability they can live with.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import Balancer
from repro.core.metrics import discrepancy
from repro.core.probes import LOADS, SENDS, Probe, register_probe
from repro.core.trace import SamplingSchedule
from repro.graphs.balancing import BalancingGraph


class Monitor(Probe):
    """Legacy base class for dense observers (no-op by default).

    .. deprecated::
        Subclass :class:`~repro.core.probes.Probe` instead and declare
        a capability; a ``Monitor`` is a probe that demands dense
        ``(n, d+)`` sends matrices and therefore forces the engines off
        their structured fast path.
    """

    needs = SENDS

    def start(
        self,
        graph: BalancingGraph,
        balancer: Balancer,
        loads: np.ndarray,
    ) -> None:
        """Called once before the first round with the initial vector."""

    def observe(
        self,
        t: int,
        loads_before: np.ndarray,
        sends: np.ndarray,
        loads_after: np.ndarray,
    ) -> None:
        """Called after every completed round ``t``."""


class SampledRecorder(Probe):
    """Shared machinery for loads recorders on a sampling schedule.

    Subclasses implement :meth:`_capture` (what to record from a load
    vector).  The recorder keeps the initial boundary, every boundary
    the schedule wants, and — so sparse schedules still end at the
    run's last state — holds the most recent unsampled boundary as a
    pending sample that :meth:`_flushed` appends.
    """

    needs = LOADS

    def __init__(self, schedule: SamplingSchedule | None = None) -> None:
        self.schedule = schedule or SamplingSchedule.every(1)
        self.rounds: list[int] = []
        self._samples: list = []
        self._pending: tuple | None = None

    def _capture(self, loads):
        """The value recorded at a sampled boundary (override)."""
        raise NotImplementedError

    def start(self, graph, balancer, loads) -> None:
        self.rounds = [0]
        self._samples = [self._capture(loads)]
        self._pending = None

    def observe_loads(self, t, loads) -> None:
        value = self._capture(loads)
        if self.schedule.wants(t):
            self.rounds.append(t)
            self._samples.append(value)
            self._pending = None
        else:
            self._pending = (t, value)

    def _flushed(self) -> tuple[list[int], list]:
        """Sampled series plus the retained final boundary (if any)."""
        if self._pending is None:
            return self.rounds, self._samples
        t, value = self._pending
        return self.rounds + [t], self._samples + [value]


class DiscrepancyRecorder(SampledRecorder):
    """Records the discrepancy trajectory (one entry per round boundary).

    ``history[i]`` pairs with ``rounds[i]``; on the default every-round
    schedule ``history[0]`` is the initial discrepancy and
    ``history[t]`` the discrepancy at the beginning of round ``t + 1``.
    A sparser :class:`~repro.core.trace.SamplingSchedule` keeps the
    initial and final boundaries and samples between them.
    """

    def _capture(self, loads) -> int | float:
        return discrepancy(loads)

    @property
    def history(self) -> list[int | float]:
        """Sampled discrepancies (pairs with :attr:`rounds`)."""
        return self._samples

    @property
    def final(self) -> int | float:
        return self._flushed()[1][-1]

    @property
    def minimum(self) -> int | float:
        return min(self._flushed()[1])

    def columns(self):
        rounds, history = self._flushed()
        return {"discrepancy": (list(rounds), list(history))}

    def summary(self) -> dict:
        _, history = self._flushed()
        return {
            "final_discrepancy": history[-1],
            "min_discrepancy": min(history),
        }


@register_probe("load_bounds")
class LoadBoundsMonitor(Probe):
    """Tracks the global min/max load ever observed.

    Used to verify the NL (no negative load) column of Table 1: an
    algorithm is negative-load safe on a run iff ``min_ever >= 0``.
    """

    needs = LOADS

    def __init__(self) -> None:
        self.min_ever: int | None = None
        self.max_ever: int | None = None

    def start(self, graph, balancer, loads) -> None:
        self.min_ever = int(loads.min())
        self.max_ever = int(loads.max())

    def observe_loads(self, t, loads) -> None:
        self.min_ever = min(self.min_ever, int(loads.min()))
        self.max_ever = max(self.max_ever, int(loads.max()))

    @property
    def went_negative(self) -> bool:
        return self.min_ever is not None and self.min_ever < 0

    def summary(self) -> dict:
        return {"min_load": self.min_ever, "max_load": self.max_ever}


@register_probe("tier_loads")
class TierLoadProbe(Probe):
    """Final-state load percentiles, overall and per fabric tier.

    A loads-only probe (structured/batch fast paths stay live) whose
    :meth:`summary` carries the serving metrics — peak and p99 node
    load, plus per-tier mean/p99 when the graph exposes the
    ``node_tiers`` metadata channel (fat-tree, leaf-spine).  Putting
    the numbers in the summary (not the final vector) is what lets
    cached/parallel replays report them: :class:`RecordedRun` ships
    summaries but no load vectors.
    """

    needs = LOADS

    def __init__(self, percentile: float = 99.0) -> None:
        if not 0 <= percentile <= 100:
            raise ValueError(
                f"percentile must be in [0, 100], got {percentile}"
            )
        self.percentile = float(percentile)
        self._last: np.ndarray | None = None
        self._tiers: np.ndarray | None = None
        self._tier_names: tuple[str, ...] | None = None

    def start(self, graph, balancer, loads) -> None:
        self._tiers = getattr(graph, "node_tiers", None)
        names = getattr(graph, "tier_names", None)
        self._tier_names = tuple(names) if names is not None else None
        self._last = np.array(loads, dtype=np.int64, copy=True)

    def observe_loads(self, t, loads) -> None:
        np.copyto(self._last, loads)

    def _stats(self, loads: np.ndarray) -> tuple[float, int]:
        return (
            round(float(np.percentile(loads, self.percentile)), 6),
            int(loads.max()),
        )

    def summary(self) -> dict:
        key = f"p{self.percentile:g}_load"
        p_all, peak = self._stats(self._last)
        out = {key: p_all, "peak_load": peak}
        if self._tiers is not None:
            for tier_id, name in enumerate(self._tier_names):
                members = self._last[self._tiers == tier_id]
                if members.size == 0:
                    continue
                p_tier, peak_tier = self._stats(members)
                out[f"tier_{name}_mean_load"] = round(
                    float(members.mean()), 6
                )
                out[f"tier_{name}_{key}"] = p_tier
                out[f"tier_{name}_peak_load"] = peak_tier
        return out


class TrajectoryRecorder(SampledRecorder):
    """Records full load vectors on a sampling schedule (memory heavy).

    ``stride=k`` is shorthand for ``SamplingSchedule.every(k)``; pass
    ``schedule=`` for geometric or boundary-only sampling.  The final
    observed vector is always retained, so sparse schedules still end
    at the run's last state.
    """

    def __init__(
        self,
        stride: int = 1,
        schedule: SamplingSchedule | None = None,
    ) -> None:
        if schedule is None:
            if stride < 1:
                raise ValueError("stride must be >= 1")
            schedule = SamplingSchedule.every(stride)
        elif stride != 1:
            raise ValueError("pass either stride or schedule, not both")
        super().__init__(schedule)
        self.stride = stride

    def _capture(self, loads) -> np.ndarray:
        return loads.copy()

    @property
    def snapshots(self) -> list[np.ndarray]:
        """Sampled load vectors (pairs with :attr:`rounds`)."""
        return self._samples

    def as_array(self) -> np.ndarray:
        return np.stack(self._flushed()[1], axis=0)

    def columns(self):
        rounds, snapshots = self._flushed()
        return {
            "load_vector": (
                list(rounds),
                [snapshot.tolist() for snapshot in snapshots],
            )
        }


@register_probe("period")
class PeriodDetector(Probe):
    """Detects when the load vector revisits a previous state.

    Deterministic stateless dynamics on a finite state space must enter
    a cycle; Theorem 4.3's construction alternates with period 2.  The
    detector hashes each vector and reports the first recurrence.
    """

    needs = LOADS

    def __init__(self) -> None:
        self._seen: dict[bytes, int] = {}
        self.period: int | None = None
        self.first_repeat_round: int | None = None

    def start(self, graph, balancer, loads) -> None:
        self._seen = {loads.tobytes(): 0}
        self.period = None
        self.first_repeat_round = None

    def observe_loads(self, t, loads) -> None:
        if self.period is not None:
            return
        key = loads.tobytes()
        if key in self._seen:
            self.period = t - self._seen[key]
            self.first_repeat_round = t
        else:
            self._seen[key] = t

    def summary(self) -> dict:
        return {
            "period": self.period,
            "first_repeat_round": self.first_repeat_round,
        }


def _coerce_schedule(
    schedule: SamplingSchedule | dict | None,
) -> SamplingSchedule | None:
    if isinstance(schedule, dict):  # JSON-borne ProbeSpec params
        return SamplingSchedule.from_dict(schedule)
    return schedule


@register_probe("discrepancy")
def _discrepancy_probe(schedule=None) -> DiscrepancyRecorder:
    return DiscrepancyRecorder(schedule=_coerce_schedule(schedule))


@register_probe("trajectory")
def _trajectory_probe(stride: int = 1, schedule=None) -> TrajectoryRecorder:
    return TrajectoryRecorder(
        stride=stride, schedule=_coerce_schedule(schedule)
    )
