"""Capability-typed probes: observers that scale *with* the engine.

The legacy :class:`~repro.core.monitors.Monitor` contract hands every
observer a dense ``(n, d+)`` sends matrix, which forces the engines off
their matrix-free structured fast path even for observers that only
ever look at load vectors.  A :class:`Probe` instead *declares what it
consumes* and the engine feeds it the cheapest representation it
accepts:

* ``needs = "loads"`` — the probe only reads load vectors.  It runs on
  the structured engine and inside the batch runner's vectorized
  ``(replicas, n)`` executor; the engine calls :meth:`Probe.\
observe_loads` with the post-round vector.
* ``needs = "sends"`` — the probe consumes per-port sends.  On the
  dense engine it receives real ``(n, d+)`` matrices via
  :meth:`Probe.observe`; if it also sets ``accepts_structured`` it can
  ride the structured engine and receive the compact
  :class:`~repro.core.structured.StructuredRound` via
  :meth:`Probe.observe_structured` instead (often with an O(n·d)
  fast path of its own).

A probe that needs sends and does *not* accept structured rounds is
"dense-requiring": ``engine="auto"`` falls back to the dense engine for
it, exactly as legacy monitors always did.

Probes register by name in :data:`PROBES` (``@register_probe``) so
scenario JSON and the CLI can request them declaratively via
:class:`ProbeSpec` — the observability counterpart of
:class:`~repro.scenarios.spec.AlgorithmSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.registry import Registry, freeze_params, parse_spec_shorthand

#: Capability constants — what a probe consumes each round.
LOADS = "loads"
SENDS = "sends"

CAPABILITIES = (LOADS, SENDS)

#: Named probes available to scenario specs and the CLI.
PROBES: Registry = Registry("probe")

#: Decorator registering a probe factory: ``@register_probe(name)``.
register_probe = PROBES.register


class Probe:
    """Base class for capability-typed simulation observers.

    Subclasses declare :attr:`needs` (and, for sends consumers,
    :attr:`accepts_structured`), then implement the matching observe
    hook.  Probes deliberately cannot influence the simulation.

    Results flow into the columnar :class:`~repro.core.trace.Trace`
    model through two optional hooks: :meth:`columns` (per-round
    series) and :meth:`summary` (end-of-run scalars).
    """

    #: What this probe consumes: ``"loads"`` or ``"sends"``.
    needs: str = LOADS

    #: Sends consumers only: True if :meth:`observe_structured` is
    #: implemented, letting the probe ride the structured engine.
    accepts_structured: bool = False

    def start(self, graph, balancer, loads) -> None:
        """Called once before the first round with the initial vector."""

    def observe_loads(self, t: int, loads: np.ndarray) -> None:
        """Loads-capability hook: post-round vector of round ``t``."""

    def observe(
        self,
        t: int,
        loads_before: np.ndarray,
        sends: np.ndarray,
        loads_after: np.ndarray,
    ) -> None:
        """Dense hook: full round data.  Defaults to the loads hook, so
        loads-only probes work unchanged on the dense engine."""
        self.observe_loads(t, loads_after)

    def observe_structured(
        self,
        t: int,
        loads_before: np.ndarray,
        compact,
        loads_after: np.ndarray,
    ) -> None:
        """Structured hook: compact round description.

        Only called on probes with ``accepts_structured = True`` (or on
        loads-only probes, for which the default forwards to
        :meth:`observe_loads`); sends consumers that opt in override
        this with their own compact-form accounting.
        """
        self.observe_loads(t, loads_after)

    # -- results --------------------------------------------------------

    def columns(self) -> dict[str, tuple[Sequence[int], Sequence]]:
        """Per-round trace columns: ``name -> (rounds, values)``."""
        return {}

    def summary(self) -> dict:
        """End-of-run scalar facts merged into the run's summary."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(needs={self.needs!r})"


class MonitorProbe(Probe):
    """Adapter presenting a duck-typed legacy monitor as a probe.

    Anything with ``start(graph, balancer, loads)`` and
    ``observe(t, loads_before, sends, loads_after)`` methods — e.g. a
    third-party observer written against the pre-probe API without
    subclassing :class:`~repro.core.monitors.Monitor` — wraps into a
    dense-requiring probe.
    """

    needs = SENDS

    def __init__(self, monitor) -> None:
        self.monitor = monitor

    def start(self, graph, balancer, loads) -> None:
        self.monitor.start(graph, balancer, loads)

    def observe(self, t, loads_before, sends, loads_after) -> None:
        self.monitor.observe(t, loads_before, sends, loads_after)

    def summary(self) -> dict:
        summary = getattr(self.monitor, "summary", None)
        return summary() if callable(summary) else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonitorProbe({self.monitor!r})"


def as_probe(observer) -> Probe:
    """Coerce ``observer`` into a :class:`Probe`.

    Probe instances (including all built-in monitors, which now derive
    from :class:`Probe`) pass through; duck-typed legacy observers wrap
    in :class:`MonitorProbe`.
    """
    if isinstance(observer, Probe):
        return observer
    if isinstance(observer, ProbeSpec):
        return observer.build()
    if hasattr(observer, "start") and hasattr(observer, "observe"):
        return MonitorProbe(observer)
    raise TypeError(
        f"cannot interpret {observer!r} as a probe: expected a Probe, "
        "a ProbeSpec, or an object with start/observe methods"
    )


def dense_required(probes: Iterable[Probe]) -> bool:
    """True if some probe needs dense sends matrices.

    Such a probe pins ``engine="auto"`` to the dense engine; everything
    else rides the structured fast path.
    """
    return any(
        probe.needs == SENDS and not probe.accepts_structured
        for probe in probes
    )


def loads_only(probes: Iterable[Probe]) -> bool:
    """True if every probe consumes plain load vectors.

    Loads-only probe sets are the ones the vectorized batch runner can
    carry without leaving its stacked ``(replicas, n)`` execution.
    """
    return all(probe.needs == LOADS for probe in probes)


@dataclass(frozen=True)
class ProbeSpec:
    """A registered probe by name plus construction parameters.

    The declarative counterpart of instantiating a probe class: round-
    trips through JSON (scenario files, ``repro-lb simulate --probe``)
    and builds fresh instances per replica, so stateful probes never
    leak state across runs.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.name, freeze_params(self.params)))

    def build(self) -> Probe:
        probe = PROBES.create(self.name, **self.params)
        if not isinstance(probe, Probe):
            probe = as_probe(probe)
        return probe

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeSpec":
        return cls(data["name"], dict(data.get("params", {})))

    @classmethod
    def parse(cls, text: str) -> "ProbeSpec":
        """Parse CLI shorthand: ``name`` or ``name:{json params}``."""
        return cls(*parse_spec_shorthand(text, "probe"))


def build_probes(
    specs: Iterable,
) -> tuple[Probe, ...]:
    """Build a fresh probe set from specs/factories/instances.

    Accepts a mix of :class:`ProbeSpec`, probe classes / zero-argument
    factories, and ready probe instances (passed through
    :func:`as_probe`).  Used by the scenario layer to instantiate one
    independent set per replica.
    """
    built: list[Probe] = []
    for spec in specs:
        if isinstance(spec, ProbeSpec):
            built.append(spec.build())
        elif isinstance(spec, Probe):
            built.append(spec)
        elif isinstance(spec, type) or callable(spec):
            built.append(as_probe(spec()))
        else:
            built.append(as_probe(spec))
    return tuple(built)
