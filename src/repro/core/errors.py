"""Exception types raised by the simulation core."""


class SimulationError(Exception):
    """Base class for simulation-core errors."""


class InvalidLoadVector(SimulationError):
    """Raised when an initial load vector fails validation."""


class InvalidSendMatrix(SimulationError):
    """Raised when a balancer emits a malformed sends matrix."""


class NegativeLoadError(SimulationError):
    """Raised when a balancer tries to send more tokens than a node holds.

    Algorithms that legitimately overdraw (the paper's "negative load"
    processes, e.g. randomized edge rounding [18] or continuous-mimicking
    [4]) must declare ``allows_negative = True`` to opt out of this guard.
    """


class ConservationError(SimulationError):
    """Raised when a round does not conserve the total number of tokens."""


class InvalidInjection(SimulationError):
    """Raised when a dynamic-workload injector breaks its contract.

    Injector deltas must be integer vectors of the loads' shape and may
    never drain a node below zero (departures are clipped by well-behaved
    injectors such as ``random_churn``; a scripted stream that overdraws
    is a bug in the stream).
    """


class BindingError(SimulationError):
    """Raised when a balancer is bound to an incompatible graph."""
