"""Balancer interface and the Table 1 property taxonomy.

A *balancer* is a synchronous token-distribution rule: given the current
load vector it decides, for every node, how many tokens go over each of
the node's ``d+`` ports this round (ports ``0..d-1`` are original edges
in adjacency order, ``d..d+-1`` are self-loops).  Tokens not assigned to
any port stay at the node as its *remainder* (the paper's ``r_t(u)``,
cf. Proposition A.2).

The :class:`AlgorithmProperties` flags mirror the columns of Table 1:

* ``deterministic`` (D) — no randomness;
* ``stateless`` (SL) — sends depend only on the current load;
* ``negative_load_safe`` (NL) — can never overdraw a node;
* ``communication_free`` (NC) — needs no information beyond the node's
  own load (not even neighbors' loads).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.errors import BindingError
from repro.graphs.balancing import BalancingGraph


@dataclass(frozen=True)
class AlgorithmProperties:
    """The D / SL / NL / NC flags of Table 1."""

    deterministic: bool
    stateless: bool
    negative_load_safe: bool
    communication_free: bool

    def flags(self) -> str:
        """Compact ``D SL NL NC`` rendering using ✓/✗."""
        marks = [
            "D" if self.deterministic else "-",
            "SL" if self.stateless else "-",
            "NL" if self.negative_load_safe else "-",
            "NC" if self.communication_free else "-",
        ]
        return " ".join(marks)

    def as_dict(self) -> dict[str, bool]:
        return {
            "deterministic": self.deterministic,
            "stateless": self.stateless,
            "negative_load_safe": self.negative_load_safe,
            "communication_free": self.communication_free,
        }


class Balancer(ABC):
    """Abstract synchronous load-balancing algorithm.

    Lifecycle: construct, :meth:`bind` to a graph (precomputes index
    structures and resets mutable state), then the engine calls
    :meth:`sends` once per round.  :meth:`reset` restores the initial
    mutable state so the same instance can be reused across runs.
    """

    #: Human-readable name used in tables and reports.
    name: str = "balancer"

    #: Table 1 property flags; concrete classes override.
    properties: AlgorithmProperties = AlgorithmProperties(
        deterministic=True,
        stateless=True,
        negative_load_safe=True,
        communication_free=True,
    )

    #: If True the engine permits a node's remainder to go negative.
    allows_negative: bool = False

    #: True if :meth:`sends_batch` is implemented (stateless schemes
    #: whose rule vectorizes over a stack of independent load vectors).
    supports_batched_sends: bool = False

    #: True if :meth:`sends_structured` is implemented (schemes whose
    #: round compresses to a uniform edge share plus a loop/rotor
    #: assignment; the engines then execute matrix-free).
    supports_structured_sends: bool = False

    def __init__(self) -> None:
        self._graph: BalancingGraph | None = None

    @property
    def graph(self) -> BalancingGraph:
        if self._graph is None:
            raise BindingError(
                f"{type(self).__name__} is not bound to a graph; "
                "call bind(graph) first"
            )
        return self._graph

    @property
    def is_bound(self) -> bool:
        return self._graph is not None

    def bind(self, graph: BalancingGraph) -> "Balancer":
        """Attach to ``graph``; validates compatibility and resets state."""
        self._validate_graph(graph)
        self._graph = graph
        self._on_bind(graph)
        self.reset()
        return self

    def reset(self) -> None:
        """Restore initial mutable state (rotors, RNG streams, caches)."""

    def refresh_topology(self, graph: BalancingGraph, dirty=None) -> None:
        """Re-sync per-graph structures after an in-place topology change.

        Called by the engines after applying a round's
        :class:`~repro.topology.schedules.TopologyEvents` to the
        (mutable) bound graph.  Unlike :meth:`bind` this must NOT
        reset mutable algorithm state — rotors keep their positions
        across churn; only graph-derived index structures are redone.

        Args:
            graph: the mutated graph (usually the already-bound
                instance, mutated in place).
            dirty: optional sorted ``int64`` array of node indices
                whose port layout changed this round.  Implementations
                may use it to repair incrementally; the default redoes
                the full :meth:`_on_bind` precompute.
        """
        self._graph = graph
        self._on_bind(graph)

    def _validate_graph(self, graph: BalancingGraph) -> None:
        """Hook: raise :class:`BindingError` on incompatible graphs."""

    def _on_bind(self, graph: BalancingGraph) -> None:
        """Hook: precompute per-graph index structures."""

    @abstractmethod
    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        """Per-port token counts for round ``t``.

        Args:
            loads: current load vector ``x_t`` (``int64``, length ``n``).
            t: 1-based round index (the paper's time convention).

        Returns:
            ``(n, d+)`` nonnegative ``int64`` array.  Row sums may be
            smaller than the corresponding load; the difference is the
            node's remainder for this round.
        """

    def sends_batch(self, loads: np.ndarray, t: int) -> np.ndarray:
        """Per-port token counts for a stack of independent replicas.

        Args:
            loads: ``(replicas, n)`` stacked load vectors.
            t: 1-based round index.

        Returns:
            ``(replicas, n, d+)`` nonnegative ``int64`` array; each
            slice along axis 0 must equal :meth:`sends` of that row.
            The array may be an internal scratch buffer reused by the
            next ``sends``/``sends_batch`` call — it is only valid
            until then; callers that retain per-round sends must copy.

        Only meaningful for stateless schemes (per-replica state cannot
        live in one shared instance); implementations set
        :attr:`supports_batched_sends` and the batch runner falls back
        to per-replica :meth:`sends` calls otherwise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batched sends"
        )

    def sends_structured(self, loads: np.ndarray, t: int):
        """Compact round description for matrix-free execution.

        Args:
            loads: current load vector ``x_t`` (``int64``, length
                ``n``); stateless schemes that also set
                :attr:`supports_batched_sends` must accept a
                ``(replicas, n)`` stack as well.
            t: 1-based round index.

        Returns:
            A :class:`~repro.core.structured.StructuredRound` whose
            :meth:`~repro.core.structured.StructuredRound.to_dense`
            expansion is bit-identical to :meth:`sends` on the same
            loads (and, for stateful schemes, advances internal state
            exactly as :meth:`sends` would).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement structured sends"
        )

    def describe(self) -> dict:
        """Summary used in experiment reports."""
        return {"name": self.name, **self.properties.as_dict()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def split_extras_over_self_loops(
    base_sends: np.ndarray,
    extras: np.ndarray,
    degree: int,
) -> None:
    """Distribute per-node extra tokens over self-loop ports, in place.

    ``base_sends`` is an ``(..., n, d+)`` array already holding the
    uniform part (any number of leading batch dimensions); ``extras``
    has shape ``(..., n)`` and ``extras[..., u]`` additional tokens are
    layered onto node ``u``'s self-loop ports ``d, d+1, ...`` as evenly
    as possible (first loops receive the odd token).  This is the
    deterministic, stateless "remaining tokens over self-loops" rule
    used by the SEND algorithms.
    """
    num_loops = base_sends.shape[-1] - degree
    if num_loops == 0:
        if np.any(extras != 0):
            raise ValueError(
                "cannot place extra tokens: graph has no self-loops"
            )
        return
    per_loop, leftover = np.divmod(extras, num_loops)
    base_sends[..., degree:] += per_loop[..., None]
    loop_index = np.arange(num_loops)
    base_sends[..., degree:] += loop_index < leftover[..., None]
