"""Initial load-vector generators.

The paper's results are parameterized by the initial discrepancy
``K = max x₁ - min x₁``; these helpers build the standard workloads used
throughout the experiments, all returning validated ``int64`` vectors.

Every generator is registered in :data:`LOAD_SPECS` under its function
name, so scenario specs (:class:`repro.scenarios.LoadSpec`) can refer to
workloads declaratively.  Custom workloads plug in the same way::

    from repro.core.loads import register_load_spec

    @register_load_spec("my_workload")
    def my_workload(n: int, *, seed: int = 0) -> np.ndarray:
        ...

Registered generators take ``n`` (number of nodes) first; seeded ones
take a ``seed`` parameter, which batch replicas offset for independent
samples.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidInjection, InvalidLoadVector
from repro.registry import Registry

#: Named initial-load distributions available to scenario specs.
LOAD_SPECS: Registry = Registry("load spec")

#: Decorator registering a load generator: ``@register_load_spec(name)``.
register_load_spec = LOAD_SPECS.register


def validate_loads(loads: np.ndarray, *, allow_negative: bool = False) -> np.ndarray:
    """Validate and normalize a load vector to contiguous ``int64``."""
    loads = np.ascontiguousarray(loads)
    if loads.ndim != 1:
        raise InvalidLoadVector(
            f"load vector must be 1-dimensional, got shape {loads.shape}"
        )
    if loads.size == 0:
        raise InvalidLoadVector("load vector must be non-empty")
    if not np.issubdtype(loads.dtype, np.integer):
        if np.any(loads != np.floor(loads)):
            raise InvalidLoadVector(
                "loads must be integers (tokens are indivisible)"
            )
    loads = loads.astype(np.int64)
    if not allow_negative and loads.min() < 0:
        raise InvalidLoadVector("loads must be nonnegative")
    return loads


def validate_load_matrix(
    loads: np.ndarray, *, allow_negative: bool = False
) -> np.ndarray:
    """Validate a stacked ``(replicas, n)`` load array in one pass.

    The batch counterpart of :func:`validate_loads`: every check is a
    single vectorized operation over the whole stack (no per-row Python
    loop), and failures name the offending replica.
    """
    loads = np.ascontiguousarray(loads)
    if loads.ndim != 2:
        raise InvalidLoadVector(
            "batch initial loads must be a (replicas, n) array, got "
            f"shape {loads.shape}"
        )
    if loads.shape[0] == 0 or loads.shape[1] == 0:
        raise InvalidLoadVector(
            f"batch loads must be non-empty, got shape {loads.shape}"
        )
    if not np.issubdtype(loads.dtype, np.integer):
        fractional = loads != np.floor(loads)
        if np.any(fractional):
            replica = int(np.nonzero(fractional.any(axis=1))[0][0])
            raise InvalidLoadVector(
                f"replica {replica}: loads must be integers "
                "(tokens are indivisible)"
            )
    loads = loads.astype(np.int64)
    if not allow_negative and loads.min() < 0:
        replica = int(np.nonzero((loads < 0).any(axis=1))[0][0])
        raise InvalidLoadVector(
            f"replica {replica}: loads must be nonnegative"
        )
    return loads


def validate_delta(
    delta: np.ndarray, loads: np.ndarray, name: str, t: int
) -> np.ndarray:
    """Check a dynamic-workload delta against the injector contract.

    The engines apply injector deltas at the beginning of every round
    (see :mod:`repro.dynamics.injectors`); this is the corresponding
    engine-side validator, the delta sibling of :func:`validate_loads`:
    the delta must be an integer vector of the loads' shape and may
    never drain a node below zero.  Returns the delta as ``int64``.
    """
    delta = np.asarray(delta)
    if delta.shape != loads.shape:
        raise InvalidInjection(
            f"round {t}: injector {name!r} emitted shape {delta.shape}, "
            f"expected {loads.shape}"
        )
    if not np.issubdtype(delta.dtype, np.integer):
        raise InvalidInjection(
            f"round {t}: injector {name!r} emitted dtype {delta.dtype}; "
            "deltas must be integer (tokens are indivisible)"
        )
    delta = delta.astype(np.int64, copy=False)
    # Overdraw is only possible when some entry is negative; skipping
    # the temporary ``loads + delta`` otherwise keeps arrival-only
    # injection allocation-free on the hot path.
    if delta.size and delta.min() < 0 and (loads + delta).min() < 0:
        node = int(np.argmin(loads + delta))
        raise InvalidInjection(
            f"round {t}: injector {name!r} drained node {node} below "
            f"zero ({int(loads[node])} tokens held, "
            f"{int(-delta[node])} removed)"
        )
    return delta


@register_load_spec("point_mass")
def point_mass(n: int, tokens: int, node: int = 0) -> np.ndarray:
    """All ``tokens`` on a single node — initial discrepancy ``K = tokens``."""
    if not 0 <= node < n:
        raise InvalidLoadVector(f"node {node} out of range [0, {n})")
    if tokens < 0:
        raise InvalidLoadVector("tokens must be nonnegative")
    loads = np.zeros(n, dtype=np.int64)
    loads[node] = tokens
    return loads


@register_load_spec("bimodal")
def bimodal(n: int, high: int, low: int = 0) -> np.ndarray:
    """First half of the nodes at ``high``, second half at ``low``."""
    if high < low:
        raise InvalidLoadVector("high must be >= low")
    loads = np.full(n, low, dtype=np.int64)
    loads[: n // 2] = high
    return loads


@register_load_spec("uniform_random")
def uniform_random(
    n: int,
    total_tokens: int,
    seed: int,
) -> np.ndarray:
    """``total_tokens`` thrown uniformly at random onto ``n`` nodes."""
    if total_tokens < 0:
        raise InvalidLoadVector("total_tokens must be nonnegative")
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(total_tokens, np.full(n, 1.0 / n))
    return counts.astype(np.int64)


@register_load_spec("balanced")
def balanced(n: int, per_node: int) -> np.ndarray:
    """Perfectly balanced vector (useful as a fixed point in tests)."""
    if per_node < 0:
        raise InvalidLoadVector("per_node must be nonnegative")
    return np.full(n, per_node, dtype=np.int64)


@register_load_spec("linear_gradient")
def linear_gradient(n: int, step: int = 1, base: int = 0) -> np.ndarray:
    """Loads ``base, base+step, ..., base+(n-1)*step`` — discrepancy ``(n-1)*step``."""
    if step < 0 or base < 0:
        raise InvalidLoadVector("step and base must be nonnegative")
    return (base + step * np.arange(n)).astype(np.int64)


@register_load_spec("random_spikes")
def random_spikes(
    n: int,
    num_spikes: int,
    spike_height: int,
    seed: int,
    base: int = 0,
) -> np.ndarray:
    """``num_spikes`` random nodes at ``base + spike_height``, rest at ``base``."""
    if num_spikes < 0 or num_spikes > n:
        raise InvalidLoadVector(f"num_spikes must be in [0, {n}]")
    rng = np.random.default_rng(seed)
    loads = np.full(n, base, dtype=np.int64)
    spikes = rng.choice(n, size=num_spikes, replace=False)
    loads[spikes] += spike_height
    return loads


@register_load_spec("adversarial_split")
def adversarial_split(
    n: int,
    tokens: int,
    fraction: float = 0.5,
) -> np.ndarray:
    """Two opposing point masses on nodes ``0`` and ``n // 2``.

    ``ceil(fraction * tokens)`` tokens land on node 0 and the rest on
    the antipodal index — the adversarial placement for ring-like
    topologies, maximizing the distance mass must travel.
    """
    if tokens < 0:
        raise InvalidLoadVector("tokens must be nonnegative")
    if not 0.0 <= fraction <= 1.0:
        raise InvalidLoadVector(f"fraction must be in [0, 1], got {fraction}")
    loads = np.zeros(n, dtype=np.int64)
    first = int(np.ceil(fraction * tokens))
    loads[0] = first
    loads[(n // 2) % n] += tokens - first
    return loads


@register_load_spec("skewed")
def skewed(
    n: int,
    total_tokens: int,
    alpha: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Power-law (Zipf-like) workload: node ``i`` has weight ``(i+1)^-α``.

    ``total_tokens`` are multinomially sampled with those weights, so a
    few nodes carry most of the mass — the heavy-tailed traffic shape of
    real schedulers, between ``point_mass`` and ``uniform_random``.
    """
    if total_tokens < 0:
        raise InvalidLoadVector("total_tokens must be nonnegative")
    if alpha < 0:
        raise InvalidLoadVector(f"alpha must be nonnegative, got {alpha}")
    weights = (1.0 + np.arange(n)) ** -alpha
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    return rng.multinomial(total_tokens, weights).astype(np.int64)


def initial_discrepancy(loads: np.ndarray) -> int:
    """The paper's ``K``: max minus min of the initial vector."""
    return int(loads.max() - loads.min())


def average_load(loads: np.ndarray) -> float:
    """The paper's ``x̄`` — average tokens per node."""
    return float(loads.mean())
