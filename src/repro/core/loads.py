"""Initial load-vector generators.

The paper's results are parameterized by the initial discrepancy
``K = max x₁ - min x₁``; these helpers build the standard workloads used
throughout the experiments, all returning validated ``int64`` vectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidLoadVector


def validate_loads(loads: np.ndarray, *, allow_negative: bool = False) -> np.ndarray:
    """Validate and normalize a load vector to contiguous ``int64``."""
    loads = np.ascontiguousarray(loads)
    if loads.ndim != 1:
        raise InvalidLoadVector(
            f"load vector must be 1-dimensional, got shape {loads.shape}"
        )
    if loads.size == 0:
        raise InvalidLoadVector("load vector must be non-empty")
    if not np.issubdtype(loads.dtype, np.integer):
        if np.any(loads != np.floor(loads)):
            raise InvalidLoadVector(
                "loads must be integers (tokens are indivisible)"
            )
    loads = loads.astype(np.int64)
    if not allow_negative and loads.min() < 0:
        raise InvalidLoadVector("loads must be nonnegative")
    return loads


def point_mass(n: int, tokens: int, node: int = 0) -> np.ndarray:
    """All ``tokens`` on a single node — initial discrepancy ``K = tokens``."""
    if not 0 <= node < n:
        raise InvalidLoadVector(f"node {node} out of range [0, {n})")
    if tokens < 0:
        raise InvalidLoadVector("tokens must be nonnegative")
    loads = np.zeros(n, dtype=np.int64)
    loads[node] = tokens
    return loads


def bimodal(n: int, high: int, low: int = 0) -> np.ndarray:
    """First half of the nodes at ``high``, second half at ``low``."""
    if high < low:
        raise InvalidLoadVector("high must be >= low")
    loads = np.full(n, low, dtype=np.int64)
    loads[: n // 2] = high
    return loads


def uniform_random(
    n: int,
    total_tokens: int,
    seed: int,
) -> np.ndarray:
    """``total_tokens`` thrown uniformly at random onto ``n`` nodes."""
    if total_tokens < 0:
        raise InvalidLoadVector("total_tokens must be nonnegative")
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(total_tokens, np.full(n, 1.0 / n))
    return counts.astype(np.int64)


def balanced(n: int, per_node: int) -> np.ndarray:
    """Perfectly balanced vector (useful as a fixed point in tests)."""
    if per_node < 0:
        raise InvalidLoadVector("per_node must be nonnegative")
    return np.full(n, per_node, dtype=np.int64)


def linear_gradient(n: int, step: int = 1, base: int = 0) -> np.ndarray:
    """Loads ``base, base+step, ..., base+(n-1)*step`` — discrepancy ``(n-1)*step``."""
    if step < 0 or base < 0:
        raise InvalidLoadVector("step and base must be nonnegative")
    return (base + step * np.arange(n)).astype(np.int64)


def random_spikes(
    n: int,
    num_spikes: int,
    spike_height: int,
    seed: int,
    base: int = 0,
) -> np.ndarray:
    """``num_spikes`` random nodes at ``base + spike_height``, rest at ``base``."""
    if num_spikes < 0 or num_spikes > n:
        raise InvalidLoadVector(f"num_spikes must be in [0, {n}]")
    rng = np.random.default_rng(seed)
    loads = np.full(n, base, dtype=np.int64)
    spikes = rng.choice(n, size=num_spikes, replace=False)
    loads[spikes] += spike_height
    return loads


def initial_discrepancy(loads: np.ndarray) -> int:
    """The paper's ``K``: max minus min of the initial vector."""
    return int(loads.max() - loads.min())


def average_load(loads: np.ndarray) -> float:
    """The paper's ``x̄`` — average tokens per node."""
    return float(loads.mean())
