"""The token-coloring argument of Lemma 3.5, executable.

The proof of Lemma 3.5 colors tokens black/red: node ``u`` holds
``min(x_t(u), c·d+)`` black tokens, the rest are red, and
``φ_t(c)`` equals the number of red tokens in the system.  Two rules
make the potential drop visible:

1. no node ever sends more than ``c`` black tokens along one edge;
2. after each round, red tokens are recolored black so rule's invariant
   ``|black at u| = min(x(u), c·d+)`` is restored — each recoloring is
   one unit of potential drop.

:class:`TokenColoringLedger` maintains exactly this accounting as a
loads-only probe.  It verifies, on real runs, the two facts the proof rests on:
the red count always equals ``φ_t(c)``, and red tokens are never
created (recolorings are one-way).  This is a *proof-level* verifier —
stronger than just checking that the potential is monotone.
"""

from __future__ import annotations

import numpy as np

from repro.core.potentials import phi
from repro.core.probes import LOADS, Probe, register_probe


@register_probe("token_coloring")
class TokenColoringLedger(Probe):
    """Black/red token accounting for one threshold ``c``.

    The ledger only ever counts tokens above the ``c·d+`` cap, a pure
    function of the load vector — so despite verifying a sends-level
    proof invariant it is a loads-only probe (registered as
    ``token_coloring``) and rides the structured engine.  The sends-
    level rule 1 check lives in the standalone
    :func:`black_send_capacity_respected`.

    Attributes:
        red_history: red-token count after each round (``[0]`` initial).
        recolored_total: total red→black recolorings so far.
        consistent: red count always equaled ``φ_t(c)``.
    """

    needs = LOADS

    def __init__(self, c: int) -> None:
        self.c = c
        self.red_history: list[int] = []
        self.recolored_total = 0
        self.consistent = True
        self._d_plus = 0

    def start(self, graph, balancer, loads) -> None:
        self._d_plus = graph.total_degree
        self.red_history = [self._red_count(loads)]
        self.recolored_total = 0
        self.consistent = True

    def _red_count(self, loads: np.ndarray) -> int:
        cap = self.c * self._d_plus
        return int(np.maximum(loads - cap, 0).sum())

    def observe_loads(self, t, loads) -> None:
        red_before = self.red_history[-1]
        red_after = self._red_count(loads)
        # Rule 2: recoloring only ever turns red tokens black.
        dropped = red_before - red_after
        if dropped < 0:
            self.consistent = False
        else:
            self.recolored_total += dropped
        if red_after != phi(loads, self.c, self._d_plus):
            self.consistent = False
        self.red_history.append(red_after)

    @property
    def initial_red(self) -> int:
        return self.red_history[0]

    @property
    def final_red(self) -> int:
        return self.red_history[-1]

    def conservation_holds(self) -> bool:
        """Initial red = final red + total recolored (no red created)."""
        return self.initial_red == self.final_red + self.recolored_total

    def columns(self):
        history = self.red_history
        return {"red_tokens": (list(range(len(history))), list(history))}

    def summary(self) -> dict:
        return {
            "recolored_total": self.recolored_total,
            "coloring_consistent": self.consistent,
        }


def black_send_capacity_respected(
    loads: np.ndarray,
    sends: np.ndarray,
    c: int,
    d_plus: int,
) -> bool:
    """Check rule 1 of the coloring argument for one round.

    A node with ``x <= c·d+`` holds only black tokens, so each of its
    ports carries at most ``min(port tokens, c)`` black ones trivially;
    a node with ``x > c·d+`` holds exactly ``c·d+`` black tokens and,
    being round-fair, sends at least ``c`` per port — so a valid
    black assignment sends exactly ``c`` black per port.  The rule is
    violated only if some port of an overloaded node received fewer
    than ``c`` tokens in total.
    """
    overloaded = loads > c * d_plus
    if not overloaded.any():
        return True
    return bool((sends[overloaded] >= c).all())
