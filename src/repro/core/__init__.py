"""Simulation core: engine, balancer interface, monitors, metrics."""

from repro.core.balancer import AlgorithmProperties, Balancer
from repro.core.coloring import (
    TokenColoringLedger,
    black_send_capacity_respected,
)
from repro.core.engine import SimulationResult, Simulator, simulate
from repro.core.reference import ReferenceSimulator
from repro.core.errors import (
    BindingError,
    ConservationError,
    InvalidLoadVector,
    InvalidSendMatrix,
    NegativeLoadError,
    SimulationError,
)
from repro.core.fairness import (
    ClassVerdict,
    CumulativeFairnessMonitor,
    FairnessMonitor,
    classify_run,
    is_round_fair,
)
from repro.core.flows import FlowTracker
from repro.core.loads import (
    LOAD_SPECS,
    adversarial_split,
    balanced,
    bimodal,
    initial_discrepancy,
    linear_gradient,
    point_mass,
    random_spikes,
    register_load_spec,
    skewed,
    uniform_random,
    validate_load_matrix,
    validate_loads,
)
from repro.core.metrics import (
    LoadSummary,
    balancedness,
    deviation_norm,
    discrepancy,
    final_plateau,
    time_to_discrepancy,
    underload_gap,
)
from repro.core.monitors import (
    DiscrepancyRecorder,
    LoadBoundsMonitor,
    Monitor,
    PeriodDetector,
    TrajectoryRecorder,
)
from repro.core.potentials import (
    PotentialMonitor,
    final_discrepancy_bound,
    phi,
    phi_prime,
)
from repro.core.probes import (
    PROBES,
    MonitorProbe,
    Probe,
    ProbeSpec,
    as_probe,
    register_probe,
)
from repro.core.structured import RotorWindow, StructuredRound
from repro.core.trace import RunRecord, SamplingSchedule, Trace

__all__ = [
    "Balancer",
    "AlgorithmProperties",
    "TokenColoringLedger",
    "black_send_capacity_respected",
    "ReferenceSimulator",
    "Simulator",
    "SimulationResult",
    "simulate",
    "SimulationError",
    "InvalidLoadVector",
    "InvalidSendMatrix",
    "NegativeLoadError",
    "ConservationError",
    "BindingError",
    "Monitor",
    "Probe",
    "MonitorProbe",
    "ProbeSpec",
    "PROBES",
    "register_probe",
    "as_probe",
    "Trace",
    "RunRecord",
    "SamplingSchedule",
    "DiscrepancyRecorder",
    "LoadBoundsMonitor",
    "TrajectoryRecorder",
    "PeriodDetector",
    "FlowTracker",
    "FairnessMonitor",
    "CumulativeFairnessMonitor",
    "ClassVerdict",
    "classify_run",
    "is_round_fair",
    "PotentialMonitor",
    "phi",
    "phi_prime",
    "final_discrepancy_bound",
    "discrepancy",
    "balancedness",
    "underload_gap",
    "deviation_norm",
    "time_to_discrepancy",
    "final_plateau",
    "LoadSummary",
    "StructuredRound",
    "RotorWindow",
    "validate_loads",
    "validate_load_matrix",
    "point_mass",
    "bimodal",
    "uniform_random",
    "balanced",
    "linear_gradient",
    "random_spikes",
    "adversarial_split",
    "skewed",
    "initial_discrepancy",
    "LOAD_SPECS",
    "register_load_spec",
]
