"""Spectral toolkit for the balancing graph's Markov chain.

The continuous reference process is the random walk with transition
matrix ``P`` on ``G+`` (see :meth:`BalancingGraph.transition_matrix`).
The paper's bounds are phrased in terms of the **eigenvalue gap**
``μ = 1 - λ₂`` where ``λ₂`` is the second largest eigenvalue of ``P``,
and of the continuous balancing time ``T = O(log(Kn)/μ)``.

For regular graphs ``P`` is symmetric, so a dense ``eigh`` suffices at
the laptop scales we target; a sparse path kicks in for large ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.balancing import BalancingGraph

_DENSE_LIMIT = 3000


def eigenvalues(graph: BalancingGraph) -> np.ndarray:
    """All eigenvalues of ``P`` in descending order."""
    matrix = graph.transition_matrix()
    values = np.linalg.eigvalsh(matrix)
    return values[::-1]


def second_eigenvalue(graph: BalancingGraph) -> float:
    """Second largest eigenvalue ``λ₂`` of ``P``."""
    n = graph.num_nodes
    if n == 1:
        return 0.0
    if n <= _DENSE_LIMIT:
        return float(eigenvalues(graph)[1])
    from scipy.sparse.linalg import eigsh

    # CSR built directly from adjacency — the previous "sparse" path
    # densified the full (n, n) transition matrix first, which is
    # exactly the allocation this branch exists to avoid.
    sparse = graph.transition_matrix_sparse()
    top = eigsh(sparse, k=2, which="LA", return_eigenvectors=False)
    return float(np.sort(top)[0])


def eigenvalue_gap(graph: BalancingGraph) -> float:
    """The paper's ``μ = 1 - λ₂`` (clamped away from 0 numerically)."""
    gap = 1.0 - second_eigenvalue(graph)
    return max(gap, 1e-15)


def smallest_eigenvalue(graph: BalancingGraph) -> float:
    """Smallest eigenvalue ``λ_n``; ``>= 0`` whenever ``d° >= d``."""
    return float(eigenvalues(graph)[-1])


def is_positive_chain(graph: BalancingGraph, tolerance: float = 1e-9) -> bool:
    """True if all eigenvalues of ``P`` are nonnegative.

    Theorem 2.3(ii)'s proof uses ``λ_i ∈ [0, 1]``, which holds whenever
    every node keeps at least half its transition mass on itself
    (``d° >= d``).
    """
    return smallest_eigenvalue(graph) >= -tolerance


def stationary_distribution(graph: BalancingGraph) -> np.ndarray:
    """Stationary distribution of ``P`` (uniform for regular graphs)."""
    n = graph.num_nodes
    return np.full(n, 1.0 / n)


def continuous_balancing_time(
    n: int,
    initial_discrepancy: int,
    gap: float,
    constant: float = 16.0,
) -> int:
    """The paper's ``T = O(log(Kn)/μ)`` with its explicit constant 16.

    This is the horizon after which Theorem 2.3 bounds the discrepancy
    of cumulatively fair balancers; it is also (up to constants) the time
    for the continuous process to balance almost completely.
    """
    k = max(int(initial_discrepancy), 2)
    return max(1, math.ceil(constant * math.log(n * k) / gap))


def mixing_time_scale(n: int, gap: float) -> float:
    """The recurring quantity ``t_μ = 6 log n / μ`` from the analysis."""
    return 6.0 * math.log(max(n, 2)) / gap


def error_matrix(graph: BalancingGraph, t: int) -> np.ndarray:
    """``Λ_t = P^t - P∞``, the deviation from stationarity after t steps."""
    matrix = graph.transition_matrix()
    power = np.linalg.matrix_power(matrix, t)
    return power - np.full_like(matrix, 1.0 / graph.num_nodes)


def error_norm(graph: BalancingGraph, t: int) -> float:
    """``max_u Σ_v |Λ_t(u, v)|`` — the infinity-norm of the error matrix."""
    return float(np.abs(error_matrix(graph, t)).sum(axis=1).max())


def probability_current(graph: BalancingGraph, t: int) -> float:
    """``max_w Σ_v |P^{t+1}(v, w) - P^t(v, w)|``.

    This "probability change" of the reversible walk in successive steps
    is exactly the quantity summed in inequality (9) of the paper; claims
    (i)-(iii) of Theorem 2.3 are three different ways of bounding its
    partial sums.
    """
    matrix = graph.transition_matrix()
    power_t = np.linalg.matrix_power(matrix, t)
    diff = matrix @ power_t - power_t
    return float(np.abs(diff).sum(axis=0).max())


@dataclass(frozen=True)
class SpectralProfile:
    """Cached spectral summary of a balancing graph."""

    n: int
    degree: int
    num_self_loops: int
    gap: float
    lambda_2: float
    lambda_min: float

    @property
    def d_plus(self) -> int:
        return self.degree + self.num_self_loops

    def balancing_time(self, initial_discrepancy: int) -> int:
        """T for this graph and a given initial discrepancy K."""
        return continuous_balancing_time(
            self.n, initial_discrepancy, self.gap
        )


def spectral_profile(graph: BalancingGraph) -> SpectralProfile:
    """Compute the :class:`SpectralProfile` of ``graph``."""
    values = eigenvalues(graph)
    lambda_2 = float(values[1]) if graph.num_nodes > 1 else 0.0
    return SpectralProfile(
        n=graph.num_nodes,
        degree=graph.degree,
        num_self_loops=graph.num_self_loops,
        gap=max(1.0 - lambda_2, 1e-15),
        lambda_2=lambda_2,
        lambda_min=float(values[-1]),
    )


def cycle_gap_formula(n: int, num_self_loops: int) -> float:
    """Closed-form ``μ`` for the cycle with ``d°`` self-loops.

    The cycle's walk matrix is a circulant; its eigenvalues are
    ``(d° + 2 cos(2πk/n)) / d+``, hence
    ``μ = 2 (1 - cos(2π/n)) / d+``.  Used to cross-check the numerical
    spectral code.
    """
    d_plus = 2 + num_self_loops
    return 2.0 * (1.0 - math.cos(2.0 * math.pi / n)) / d_plus


def hypercube_gap_formula(dimension: int, num_self_loops: int) -> float:
    """Closed-form ``μ`` for the hypercube with ``d°`` self-loops.

    Eigenvalues of the walk on ``Q_dim`` with loops are
    ``(d° + dim - 2k) / d+`` for ``k = 0..dim``, so ``μ = 2/d+``.
    """
    d_plus = dimension + num_self_loops
    return 2.0 / d_plus


def complete_gap_formula(n: int, num_self_loops: int) -> float:
    """Closed-form ``μ`` for ``K_n`` with ``d°`` self-loops.

    Non-principal eigenvalues all equal ``(d° - 1) / d+``, hence
    ``μ = (d+ - d° + 1) / d+ = n / d+``.
    """
    d_plus = (n - 1) + num_self_loops
    return n / d_plus
