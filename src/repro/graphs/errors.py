"""Exception types raised by the graph substrate."""


class GraphError(Exception):
    """Base class for all graph-related errors."""


class GraphValidationError(GraphError):
    """Raised when an adjacency structure is not a valid d-regular graph.

    The simulation engine relies on strong structural guarantees
    (regularity, symmetry, no parallel edges); any violation is reported
    through this exception with a human-readable reason.
    """


class GraphConstructionError(GraphError):
    """Raised when a graph family generator receives invalid parameters."""
