"""The balancing graph ``G+``: a d-regular graph plus self-loops.

The paper distinguishes the *original graph* ``G`` (a simple, undirected,
d-regular graph) and the *balancing graph* ``G+``, obtained by attaching
``d° >= 0`` self-loops to every node.  Algorithms distribute tokens over
``d+ = d + d°`` *ports* per node:

* ports ``0 .. d-1`` are the **original edges**, in adjacency order;
* ports ``d .. d+-1`` are the **self-loops**.

:class:`BalancingGraph` is an immutable description of this structure
with precomputed index maps so the engine can execute a full synchronous
round with a handful of vectorized numpy operations.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.graphs.errors import GraphValidationError
from repro.graphs.validation import (
    is_connected,
    require_connected,
    reverse_port_map,
    validate_adjacency,
)


class BalancingGraph:
    """A d-regular graph augmented with ``num_self_loops`` per-node loops.

    Args:
        adjacency: ``(n, d)`` integer array; ``adjacency[u]`` lists the
            neighbors of node ``u``.  Must describe a simple, symmetric,
            connected d-regular graph (validated).
        num_self_loops: the paper's ``d°`` — self-loops attached to every
            node.  ``d° >= d`` is the paper's standard assumption, but any
            value ``>= 0`` is allowed (Theorem 4.3 uses ``d° = 0``).
        name: optional human-readable name used in reports.
        require_connectivity: validate connectivity (default True).
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        num_self_loops: int,
        *,
        name: str = "",
        require_connectivity: bool = True,
    ) -> None:
        adjacency = validate_adjacency(adjacency)
        if require_connectivity:
            require_connected(adjacency)
        if num_self_loops < 0:
            raise GraphValidationError(
                f"num_self_loops must be >= 0, got {num_self_loops}"
            )
        self._adjacency = adjacency
        self._adjacency.setflags(write=False)
        self._num_self_loops = int(num_self_loops)
        self._reverse_port = reverse_port_map(adjacency)
        self._reverse_port.setflags(write=False)
        self.name = name or f"graph(n={self.num_nodes}, d={self.degree})"
        self._transition_matrix: np.ndarray | None = None
        self._transition_matrix_sparse = None

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._adjacency.shape[0]

    @property
    def degree(self) -> int:
        """Original degree ``d`` (number of non-self-loop edges per node)."""
        return self._adjacency.shape[1]

    @property
    def num_self_loops(self) -> int:
        """Number of self-loops per node, the paper's ``d°``."""
        return self._num_self_loops

    @property
    def total_degree(self) -> int:
        """Degree of the balancing graph, the paper's ``d+ = d + d°``."""
        return self.degree + self._num_self_loops

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only ``(n, d)`` neighbor array."""
        return self._adjacency

    @property
    def reverse_port(self) -> np.ndarray:
        """Read-only reverse-port map (see :func:`reverse_port_map`)."""
        return self._reverse_port

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Neighbors of ``node`` over original edges, in port order."""
        return tuple(int(v) for v in self._adjacency[node])

    def port_target(self, node: int, port: int) -> int:
        """Destination of ``port`` at ``node`` (self for self-loop ports)."""
        if not 0 <= port < self.total_degree:
            raise IndexError(
                f"port {port} out of range [0, {self.total_degree})"
            )
        if port < self.degree:
            return int(self._adjacency[node, port])
        return node

    def is_original_port(self, port: int) -> bool:
        """True if ``port`` indexes an original edge rather than a loop."""
        return 0 <= port < self.degree

    def num_edges(self) -> int:
        """Number of undirected original edges ``|E| = n d / 2``."""
        return self.num_nodes * self.degree // 2

    def edge_list(self) -> list[tuple[int, int]]:
        """Undirected original edges as sorted ``(u, v)`` pairs."""
        edges = set()
        for u in range(self.num_nodes):
            for v in self.neighbors(u):
                edges.add((min(u, v), max(u, v)))
        return sorted(edges)

    def with_self_loops(self, num_self_loops: int) -> "BalancingGraph":
        """A copy of this graph with a different number of self-loops."""
        return BalancingGraph(
            np.array(self._adjacency),
            num_self_loops,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Markov chain view
    # ------------------------------------------------------------------

    def transition_matrix(self) -> np.ndarray:
        """Transition matrix ``P`` of the random walk on ``G+``.

        ``P[u, v] = 1/d+`` for each original edge ``(u, v)``, and
        ``P[u, u] = d°/d+``.  The result is cached; callers must not
        mutate it.
        """
        if self._transition_matrix is None:
            n = self.num_nodes
            d_plus = self.total_degree
            if d_plus == 0:
                raise GraphValidationError("graph has no edges at all")
            matrix = np.zeros((n, n), dtype=np.float64)
            rows = np.repeat(np.arange(n), self.degree)
            cols = self._adjacency.reshape(-1)
            np.add.at(matrix, (rows, cols), 1.0 / d_plus)
            matrix[np.arange(n), np.arange(n)] += (
                self._num_self_loops / d_plus
            )
            matrix.setflags(write=False)
            self._transition_matrix = matrix
        return self._transition_matrix

    def transition_matrix_sparse(self):
        """``P`` as a scipy CSR matrix, built directly from adjacency.

        Never materializes the dense ``(n, n)`` array: the row pattern
        of a regular graph with loops is fixed (``d`` neighbors plus an
        optional diagonal entry), so ``indptr``/``indices``/``data``
        are assembled with a handful of vectorized operations.  The
        result is cached; callers must not mutate it.
        """
        if self._transition_matrix_sparse is None:
            from scipy.sparse import csr_matrix

            n = self.num_nodes
            d = self.degree
            d_plus = self.total_degree
            if d_plus == 0:
                raise GraphValidationError("graph has no edges at all")
            if self._num_self_loops > 0:
                cols = np.concatenate(
                    [self._adjacency, np.arange(n)[:, None]], axis=1
                )
                data = np.full((n, d + 1), 1.0 / d_plus)
                data[:, d] = self._num_self_loops / d_plus
            else:
                cols = np.array(self._adjacency)
                data = np.full((n, d), 1.0 / d_plus)
            # CSR wants sorted column indices within each row.
            order = np.argsort(cols, axis=1)
            cols = np.take_along_axis(cols, order, axis=1)
            data = np.take_along_axis(data, order, axis=1)
            width = cols.shape[1]
            self._transition_matrix_sparse = csr_matrix(
                (
                    data.reshape(-1),
                    cols.reshape(-1),
                    np.arange(0, n * width + 1, width),
                ),
                shape=(n, n),
            )
        return self._transition_matrix_sparse

    # ------------------------------------------------------------------
    # Metric structure
    # ------------------------------------------------------------------

    def distances_from(self, source: int) -> np.ndarray:
        """BFS distances (in ``G``, ignoring self-loops) from ``source``.

        Frontier-vectorized: each level expands the whole frontier with
        one adjacency gather instead of a Python queue, so the cost is
        O(diameter) numpy calls rather than O(n·d) interpreter steps.
        """
        n = self.num_nodes
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            candidates = self._adjacency[frontier].reshape(-1)
            candidates = candidates[dist[candidates] < 0]
            if candidates.size == 0:
                break
            frontier = np.unique(candidates)
            dist[frontier] = level
        return dist

    def diameter(self) -> int:
        """Exact diameter of ``G`` via all-sources BFS (small graphs)."""
        best = 0
        for source in range(self.num_nodes):
            dist = self.distances_from(source)
            best = max(best, int(dist.max()))
        return best

    def eccentric_pair(self) -> tuple[int, int]:
        """A pair of nodes realizing the diameter."""
        best = (0, 0, 0)
        for source in range(self.num_nodes):
            dist = self.distances_from(source)
            target = int(dist.argmax())
            if dist[target] > best[2]:
                best = (source, target, int(dist[target]))
        return best[0], best[1]

    def odd_girth(self) -> int | None:
        """Length of the shortest odd cycle, or None if bipartite.

        Uses the standard bipartite double-cover argument: in a BFS from
        each node, an edge joining two nodes at equal BFS depth closes an
        odd cycle of length ``2 * depth + 1``.
        """
        best: int | None = None
        for source in range(self.num_nodes):
            dist = self.distances_from(source)
            for u in range(self.num_nodes):
                for v in self.neighbors(u):
                    if u < v and dist[u] == dist[v] and dist[u] >= 0:
                        length = 2 * int(dist[u]) + 1
                        if best is None or length < best:
                            best = length
        return best

    def is_bipartite(self) -> bool:
        """True if ``G`` contains no odd cycle."""
        return self.odd_girth() is None

    def is_connected(self) -> bool:
        """True if the original graph is connected."""
        return is_connected(self._adjacency)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    @classmethod
    def from_networkx(
        cls,
        graph,
        num_self_loops: int | None = None,
        *,
        name: str = "",
    ) -> "BalancingGraph":
        """Build from a networkx graph (must be simple and regular).

        Nodes are relabeled to ``0..n-1`` in sorted order.  If
        ``num_self_loops`` is None it defaults to ``d`` (the paper's
        standard ``d° = d`` augmentation).
        """
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        degrees = {len(list(graph.neighbors(node))) for node in nodes}
        if len(degrees) != 1:
            raise GraphValidationError(
                f"graph is not regular: degrees {sorted(degrees)}"
            )
        degree = degrees.pop()
        adjacency = np.empty((len(nodes), degree), dtype=np.int64)
        for node in nodes:
            neighbor_ids = sorted(index[v] for v in graph.neighbors(node))
            adjacency[index[node]] = neighbor_ids
        if num_self_loops is None:
            num_self_loops = degree
        return cls(adjacency, num_self_loops, name=name or "from_networkx")

    def to_networkx(self):
        """Export the original graph ``G`` as a networkx Graph."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.edge_list())
        return graph

    @classmethod
    def from_edge_list(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        num_self_loops: int | None = None,
        *,
        name: str = "",
    ) -> "BalancingGraph":
        """Build from an undirected edge list of a regular graph."""
        neighbor_lists: list[list[int]] = [[] for _ in range(num_nodes)]
        for u, v in edges:
            neighbor_lists[u].append(v)
            neighbor_lists[v].append(u)
        degrees = {len(lst) for lst in neighbor_lists}
        if len(degrees) != 1:
            raise GraphValidationError(
                f"edge list is not regular: degrees {sorted(degrees)}"
            )
        degree = degrees.pop()
        adjacency = np.array(
            [sorted(lst) for lst in neighbor_lists], dtype=np.int64
        )
        if num_self_loops is None:
            num_self_loops = degree
        return cls(adjacency, num_self_loops, name=name or "from_edge_list")

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BalancingGraph(name={self.name!r}, n={self.num_nodes}, "
            f"d={self.degree}, self_loops={self.num_self_loops})"
        )

    def describe(self) -> dict:
        """Summary dictionary used by experiment reports."""
        return {
            "name": self.name,
            "n": self.num_nodes,
            "d": self.degree,
            "d_self": self.num_self_loops,
            "d_plus": self.total_degree,
            "edges": self.num_edges(),
        }


def degree_histogram(adjacency: np.ndarray) -> dict[int, int]:
    """Histogram of row lengths; useful when diagnosing validation errors."""
    counts: dict[int, int] = {}
    for row in adjacency:
        counts[len(row)] = counts.get(len(row), 0) + 1
    return counts


def estimate_memory_bytes(
    n: int, d_plus: int, engine: str = "dense", degree: int | None = None
) -> int:
    """Rough per-round engine working-set in bytes.

    Performance model.  The **dense** engine materializes an
    ``(n, d+)`` int64 sends matrix every round plus a handful of
    length-``n`` vectors, so its footprint and its runtime both scale
    with ``n · d+`` — at ``n = 10^6`` and ``d+ = 4`` that is ~32 MB
    allocated and traversed several times per round.  The
    **structured** engine (``sends_structured``; see
    :mod:`repro.core.structured`) never builds the matrix: a round is a
    per-node share vector, an O(n·d) adjacency gather, and O(n)
    validation — roughly six length-``n`` int64 vectors plus one
    ``(n, d)`` gather temporary, where ``d`` is the *original* degree
    (pass ``degree=``; defaults to ``d+/2``, the paper's standard
    ``d+ = 2d`` augmentation).

    Measured on the E13 ladder (cycle, ``d+ = 2d``, 50-round runs; see
    ``BENCH_e13.json``): the structured engine wins ~3-4x at
    ``n = 4096`` and the gap widens with scale (~5x at ``n = 2^18``);
    a million-node cycle — where the dense path spends most of its time
    allocating and scanning the 32 MB matrix — constructs *and* runs 50
    rounds in a few seconds end-to-end.  The crossover is early: for
    SEND/rotor-style schemes the structured path is at worst on par
    below ``n ≈ 10^3`` and strictly faster from there up, which is why
    ``engine="auto"`` prefers it whenever the balancer supports it.

    Backend operators (registry engines) add per-graph state on top of
    the protocol baseline, and the estimate accounts for each:

    * ``spmm`` — the dense baseline plus its ``(n, n·d+)`` CSR gather
      operator: ``n·d`` int64 data entries plus index arrays (scipy
      downcasts indices to int32 while ``n·d+`` fits).
    * ``compiled`` — the structured baseline plus the CSR-fallback
      rotor operator (``2·n·d`` entries: +1 reverse-edge / -1 own-port
      halves) and its three preallocated ``(n, d)`` round buffers.
      The numba kernel variant skips the CSR operator, so this is the
      upper of the two flavors.
    * ``partitioned`` — the structured baseline plus the per-partition
      remapped adjacency and the two rotor-position precomputes (three
      ``(n, d)`` int64 arrays across all partitions) and the four
      length-``n`` shared-memory round blocks (share/loads/rotors/
      extra).  Halo ghost slots are cut-dependent and small for
      contiguous partitions of the standard families; they are not
      counted.  Worker-side mirrors double the partition state when
      processes are in use.

    The regression suite pins these terms against measured ``nbytes``
    of the real operators at small ``n``.
    """
    if degree is None:
        degree = max(1, d_plus // 2)
    structured = 8 * n * (6 + degree)
    dense = 8 * n * d_plus + 8 * 4 * n
    # scipy picks int32 index arrays while the flat column space fits.
    index_bytes = 4 if n * d_plus <= np.iinfo(np.int32).max else 8
    if engine == "dense":
        return dense
    if engine == "structured":
        return structured
    if engine == "spmm":
        operator = (
            8 * n * degree  # all-ones int64 data
            + index_bytes * n * degree  # indices
            + index_bytes * (n + 1)  # indptr
        )
        return dense + operator
    if engine == "compiled":
        operator = (
            8 * 2 * n * degree  # ±1 int64 data halves
            + index_bytes * 2 * n * degree  # indices
            + index_bytes * (n + 1)  # indptr
        )
        buffers = 8 * n * degree * 2 + n * degree  # offsets/values + hits
        return structured + operator + buffers
    if engine == "partitioned":
        partition_state = 8 * n * degree * 3  # adj_local, pos_local/rev
        round_blocks = 8 * 4 * n  # share/loads/rotors/extra in shm
        return structured + partition_state + round_blocks
    raise ValueError(f"unknown engine {engine!r}")


def log2_ceil(value: int) -> int:
    """Smallest k with 2**k >= value (used by generators and tests)."""
    if value <= 1:
        return 0
    return int(math.ceil(math.log2(value)))
