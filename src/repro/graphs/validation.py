"""Structural validation for d-regular adjacency arrays.

The engine assumes the *original* graph ``G`` is a simple, connected,
undirected, d-regular graph given as an ``(n, d)`` integer array where
``adjacency[u]`` lists the neighbors of node ``u``.  These helpers verify
every assumption and compute the reverse-port map used for vectorized
flow application.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.errors import GraphValidationError


def validate_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Validate an ``(n, d)`` adjacency array for a simple d-regular graph.

    Checks shape, value range, absence of self-edges, absence of parallel
    edges, and symmetry (``v in adjacency[u]`` iff ``u in adjacency[v]``).

    Returns the validated array as contiguous ``int64``.

    Raises:
        GraphValidationError: if any structural assumption is violated.
    """
    adjacency = np.ascontiguousarray(adjacency, dtype=np.int64)
    if adjacency.ndim != 2:
        raise GraphValidationError(
            f"adjacency must be 2-dimensional, got shape {adjacency.shape}"
        )
    n, d = adjacency.shape
    if n == 0:
        raise GraphValidationError("graph must have at least one node")
    if d == 0:
        raise GraphValidationError("graph must have degree at least 1")
    if adjacency.min() < 0 or adjacency.max() >= n:
        raise GraphValidationError(
            f"neighbor indices must lie in [0, {n - 1}]"
        )
    rows = np.arange(n)[:, None]
    if np.any(adjacency == rows):
        bad = int(np.nonzero(np.any(adjacency == rows, axis=1))[0][0])
        raise GraphValidationError(
            f"node {bad} lists itself as a neighbor; self-loops are added "
            "via BalancingGraph(num_self_loops=...), not the adjacency"
        )
    sorted_rows = np.sort(adjacency, axis=1)
    duplicate_mask = sorted_rows[:, 1:] == sorted_rows[:, :-1]
    if np.any(duplicate_mask):
        bad = int(np.nonzero(np.any(duplicate_mask, axis=1))[0][0])
        raise GraphValidationError(
            f"node {bad} has parallel edges (duplicate neighbor entries)"
        )
    _check_symmetry(adjacency)
    return adjacency


def _directed_edge_orders(
    adjacency: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort the directed edges of ``adjacency`` both ways.

    Directed edge ``i = u * d + p`` runs from ``src[i] = u`` over port
    ``p = i % d`` to ``dst[i] = adjacency[u, p]``.  ``forward`` sorts
    the edges by ``(src, dst)``, ``backward`` by ``(dst, src)``.  On a
    symmetric graph the two sorted pair sequences coincide, which makes
    both the symmetry check and the reverse-port map one aligned
    comparison — no per-node dictionaries, no Python loop.
    """
    n, d = adjacency.shape
    src = np.repeat(np.arange(n), d)
    dst = adjacency.reshape(-1)
    forward = np.lexsort((dst, src))
    backward = np.lexsort((src, dst))
    return src, dst, forward, backward


def _check_symmetry(adjacency: np.ndarray) -> None:
    """Verify that the neighbor relation is symmetric (vectorized)."""
    src, dst, forward, backward = _directed_edge_orders(adjacency)
    mismatch = (src[forward] != dst[backward]) | (
        dst[forward] != src[backward]
    )
    if not mismatch.any():
        return
    # First mismatch of the two sorted pair multisets: the smaller pair
    # exists in one direction only.
    k = int(np.argmax(mismatch))
    pair_forward = (int(src[forward[k]]), int(dst[forward[k]]))
    pair_backward = (int(dst[backward[k]]), int(src[backward[k]]))
    if pair_forward <= pair_backward:
        u, v = pair_forward
    else:
        # pair_backward = (dst, src) of a real directed edge src -> dst:
        # src lists dst, but dst does not list src back.
        u, v = pair_backward[1], pair_backward[0]
    raise GraphValidationError(
        f"edge ({u}, {v}) is not symmetric: "
        f"{v} does not list {u} as a neighbor"
    )


def reverse_port_map(adjacency: np.ndarray) -> np.ndarray:
    """Compute the reverse-port map of a validated adjacency array.

    ``reverse[u, p] = q`` such that ``adjacency[adjacency[u, p], q] == u``.
    In words: if node ``u`` reaches ``v`` through its port ``p``, then ``v``
    reaches ``u`` back through its port ``q``.  The simulation engine uses
    this to gather incoming flow with a single fancy-indexing expression.

    Computed via the aligned double edge sort of
    :func:`_directed_edge_orders`: position ``k`` of the forward order
    holds edge ``(u, v)`` exactly where position ``k`` of the backward
    order holds ``(v, u)``, whose port is its flat index mod ``d``.
    """
    n, d = adjacency.shape
    _, _, forward, backward = _directed_edge_orders(adjacency)
    reverse = np.empty(n * d, dtype=np.int64)
    reverse[forward] = backward % d
    return reverse.reshape(n, d)


def is_connected(adjacency: np.ndarray) -> bool:
    """Return True if the graph described by ``adjacency`` is connected."""
    try:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components
    except ImportError:  # pragma: no cover - scipy ships with the env
        return _is_connected_python(adjacency)
    n, d = adjacency.shape
    structure = csr_matrix(
        (
            np.ones(n * d, dtype=np.int8),
            adjacency.reshape(-1),
            np.arange(0, n * d + 1, d),
        ),
        shape=(n, n),
    )
    components, _ = connected_components(
        structure, directed=False, return_labels=True
    )
    return int(components) == 1


def _is_connected_python(adjacency: np.ndarray) -> bool:
    """Pure-python DFS fallback when scipy is unavailable."""
    n = adjacency.shape[0]
    seen = np.zeros(n, dtype=bool)
    stack = [0]
    seen[0] = True
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            v = int(v)
            if not seen[v]:
                seen[v] = True
                stack.append(v)
    return bool(seen.all())


def require_connected(adjacency: np.ndarray) -> None:
    """Raise :class:`GraphValidationError` if the graph is disconnected."""
    if not is_connected(adjacency):
        raise GraphValidationError(
            "graph is disconnected; load balancing cannot equalize loads "
            "across components"
        )
