"""Structural validation for d-regular adjacency arrays.

The engine assumes the *original* graph ``G`` is a simple, connected,
undirected, d-regular graph given as an ``(n, d)`` integer array where
``adjacency[u]`` lists the neighbors of node ``u``.  These helpers verify
every assumption and compute the reverse-port map used for vectorized
flow application.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.errors import GraphValidationError


def validate_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Validate an ``(n, d)`` adjacency array for a simple d-regular graph.

    Checks shape, value range, absence of self-edges, absence of parallel
    edges, and symmetry (``v in adjacency[u]`` iff ``u in adjacency[v]``).

    Returns the validated array as contiguous ``int64``.

    Raises:
        GraphValidationError: if any structural assumption is violated.
    """
    adjacency = np.ascontiguousarray(adjacency, dtype=np.int64)
    if adjacency.ndim != 2:
        raise GraphValidationError(
            f"adjacency must be 2-dimensional, got shape {adjacency.shape}"
        )
    n, d = adjacency.shape
    if n == 0:
        raise GraphValidationError("graph must have at least one node")
    if d == 0:
        raise GraphValidationError("graph must have degree at least 1")
    if adjacency.min() < 0 or adjacency.max() >= n:
        raise GraphValidationError(
            f"neighbor indices must lie in [0, {n - 1}]"
        )
    rows = np.arange(n)[:, None]
    if np.any(adjacency == rows):
        bad = int(np.nonzero(np.any(adjacency == rows, axis=1))[0][0])
        raise GraphValidationError(
            f"node {bad} lists itself as a neighbor; self-loops are added "
            "via BalancingGraph(num_self_loops=...), not the adjacency"
        )
    sorted_rows = np.sort(adjacency, axis=1)
    duplicate_mask = sorted_rows[:, 1:] == sorted_rows[:, :-1]
    if np.any(duplicate_mask):
        bad = int(np.nonzero(np.any(duplicate_mask, axis=1))[0][0])
        raise GraphValidationError(
            f"node {bad} has parallel edges (duplicate neighbor entries)"
        )
    _check_symmetry(adjacency)
    return adjacency


def _check_symmetry(adjacency: np.ndarray) -> None:
    """Verify that the neighbor relation is symmetric."""
    n, d = adjacency.shape
    neighbor_sets = [set(map(int, adjacency[u])) for u in range(n)]
    for u in range(n):
        for v in adjacency[u]:
            if u not in neighbor_sets[int(v)]:
                raise GraphValidationError(
                    f"edge ({u}, {int(v)}) is not symmetric: "
                    f"{int(v)} does not list {u} as a neighbor"
                )


def reverse_port_map(adjacency: np.ndarray) -> np.ndarray:
    """Compute the reverse-port map of a validated adjacency array.

    ``reverse[u, p] = q`` such that ``adjacency[adjacency[u, p], q] == u``.
    In words: if node ``u`` reaches ``v`` through its port ``p``, then ``v``
    reaches ``u`` back through its port ``q``.  The simulation engine uses
    this to gather incoming flow with a single fancy-indexing expression.
    """
    n, d = adjacency.shape
    port_of = [
        {int(v): p for p, v in enumerate(adjacency[u])} for u in range(n)
    ]
    reverse = np.empty((n, d), dtype=np.int64)
    for u in range(n):
        for p in range(d):
            v = int(adjacency[u, p])
            reverse[u, p] = port_of[v][u]
    return reverse


def is_connected(adjacency: np.ndarray) -> bool:
    """Return True if the graph described by ``adjacency`` is connected."""
    n = adjacency.shape[0]
    seen = np.zeros(n, dtype=bool)
    stack = [0]
    seen[0] = True
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            v = int(v)
            if not seen[v]:
                seen[v] = True
                stack.append(v)
    return bool(seen.all())


def require_connected(adjacency: np.ndarray) -> None:
    """Raise :class:`GraphValidationError` if the graph is disconnected."""
    if not is_connected(adjacency):
        raise GraphValidationError(
            "graph is disconnected; load balancing cannot equalize loads "
            "across components"
        )
