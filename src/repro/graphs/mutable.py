"""In-place mutable balancing graphs — the dynamic-topology substrate.

A :class:`~repro.topology.schedules.TopologySchedule` rewires the
fabric *while the process runs*: edges fail and rejoin, nodes leave and
come back, an expander is rewired swap by swap.  Rebuilding an
immutable :class:`~repro.graphs.irregular.PaddedBalancingGraph` per
change would cost O(n·d) per round regardless of how little changed;
:class:`MutableBalancingGraph` instead supports O(1) in-place edge
add/drop with incremental ``reverse_port`` repair and tracks the
*dirty* node set so balancers can refresh only the rows that actually
moved (see ``Balancer.refresh_topology``).

The layout discipline is the whole determinism story: an added edge
always lands in the first padding slot (port ``true_degrees[u]``) and a
dropped edge is swap-removed (the last real port moves into the hole).
Any two implementations applying the same event sequence therefore
produce the *same port numbering*, which is what makes rotor-router
trajectories — whose sends depend on port order — bit-identical between
the incremental engines and the rebuild-from-scratch reference
simulator in ``tests/differential``.

Padding semantics are inherited from the irregular layer: a padding
port points at its own node and is its own reverse, so the engine's
gather bounces its tokens straight back — self-loop behavior.  A node
with every edge removed (a *left* node) keeps balancing against itself
and conserves whatever load it still holds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphs.errors import GraphValidationError
from repro.graphs.irregular import PaddedBalancingGraph

__all__ = ["MutableBalancingGraph"]


class MutableBalancingGraph:
    """A padded balancing graph with writable structure.

    Exposes the same structural protocol the engines and balancers
    consume (``num_nodes``, ``degree``, ``total_degree``,
    ``num_self_loops``, ``adjacency``, ``reverse_port``,
    ``true_degrees``, tiers) with three differences:

    * the arrays are writable and mutated in place by the edge/node
      operations below;
    * ``degree`` is a fixed port *capacity* ``d_max`` — true degrees
      may all sink below it under churn (the immutable class requires
      ``true_degrees.max() == d_max``);
    * an :attr:`active` mask records which nodes are currently part of
      the network (an inactive node has zero real edges).

    Mutations accumulate a **dirty node set** — every node whose
    adjacency/reverse-port row changed, including far endpoints touched
    by swap-remove repairs — which :meth:`consume_dirty` hands to the
    balancer's incremental refresh.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        true_degrees: np.ndarray,
        num_self_loops: int,
        *,
        reverse_port: np.ndarray | None = None,
        active: np.ndarray | None = None,
        name: str = "",
        node_tiers: np.ndarray | Sequence[int] | None = None,
        tier_names: Sequence[str] | None = None,
        validate: bool = True,
    ) -> None:
        self._adjacency = np.ascontiguousarray(adjacency, dtype=np.int64)
        self.true_degrees = np.ascontiguousarray(
            true_degrees, dtype=np.int64
        )
        n, d_max = self._adjacency.shape
        if self.true_degrees.shape != (n,):
            raise GraphValidationError(
                "true_degrees length must match adjacency rows"
            )
        if num_self_loops < 0:
            raise GraphValidationError("num_self_loops must be >= 0")
        if validate:
            PaddedBalancingGraph._check_padding(
                self._adjacency, self.true_degrees
            )
        if reverse_port is None:
            reverse_port = PaddedBalancingGraph._padded_reverse_port(
                self._adjacency, self.true_degrees
            )
        self._reverse_port = np.ascontiguousarray(
            reverse_port, dtype=np.int64
        )
        if self._reverse_port.shape != (n, d_max):
            raise GraphValidationError(
                "reverse_port shape must match adjacency"
            )
        self._num_self_loops = int(num_self_loops)
        if active is None:
            active = np.ones(n, dtype=bool)
        self.active = np.ascontiguousarray(active, dtype=bool)
        if self.active.shape != (n,):
            raise GraphValidationError(
                "active mask length must match the number of nodes"
            )
        self.name = name or f"mutable(n={n}, d_max={d_max})"
        self._node_tiers = None
        self._tier_names = None
        if (node_tiers is None) != (tier_names is None):
            raise GraphValidationError(
                "node_tiers and tier_names must be given together"
            )
        if node_tiers is not None:
            self._node_tiers = np.ascontiguousarray(
                node_tiers, dtype=np.int64
            )
            self._tier_names = tuple(str(t) for t in tier_names)
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph) -> "MutableBalancingGraph":
        """A writable deep copy of any balancing graph.

        The engines always copy before mutating: prebuilt graphs are
        shared across scenarios (suite ``graph_cache``) and across
        replicas, and an immutable graph's arrays are write-locked
        anyway.
        """
        n = graph.num_nodes
        d = graph.degree
        true_degrees = getattr(graph, "true_degrees", None)
        if true_degrees is None:
            true_degrees = np.full(n, d, dtype=np.int64)
        else:
            true_degrees = true_degrees.copy()
        return cls(
            graph.adjacency.copy(),
            true_degrees,
            graph.num_self_loops,
            reverse_port=graph.reverse_port.copy(),
            name=f"mutable({getattr(graph, 'name', '')})",
            node_tiers=getattr(graph, "node_tiers", None),
            tier_names=getattr(graph, "tier_names", None),
            validate=False,
        )

    @classmethod
    def from_neighbor_lists(
        cls,
        neighbor_lists: Sequence[Sequence[int]],
        d_max: int,
        num_self_loops: int,
        *,
        active: Iterable[bool] | None = None,
    ) -> "MutableBalancingGraph":
        """Full rebuild from per-node neighbor lists, *in list order*.

        The rebuild-from-scratch path the naive reference simulator
        uses each round: neighbor blocks are laid out exactly as given
        (NOT sorted — the swap-remove discipline produces unsorted
        blocks, and port order is load-bearing for rotor schemes), the
        reverse-port map is recomputed from nothing, and every padding
        invariant is re-validated.
        """
        n = len(neighbor_lists)
        adjacency = np.broadcast_to(
            np.arange(n, dtype=np.int64)[:, None], (n, d_max)
        ).copy()
        degrees = np.zeros(n, dtype=np.int64)
        for u, row in enumerate(neighbor_lists):
            if len(row) > d_max:
                raise GraphValidationError(
                    f"node {u} has {len(row)} neighbors, capacity {d_max}"
                )
            degrees[u] = len(row)
            adjacency[u, : len(row)] = row
        graph = cls(
            adjacency,
            degrees,
            num_self_loops,
            active=(
                None
                if active is None
                else np.fromiter(active, dtype=bool, count=n)
            ),
        )
        return graph

    # ------------------------------------------------------------------
    # Structural protocol consumed by the engine / balancers
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._adjacency.shape[0]

    @property
    def degree(self) -> int:
        """Port capacity ``d_max`` (original block width, incl. padding)."""
        return self._adjacency.shape[1]

    @property
    def num_self_loops(self) -> int:
        return self._num_self_loops

    @property
    def total_degree(self) -> int:
        return self.degree + self._num_self_loops

    @property
    def adjacency(self) -> np.ndarray:
        return self._adjacency

    @property
    def reverse_port(self) -> np.ndarray:
        return self._reverse_port

    @property
    def node_tiers(self) -> np.ndarray | None:
        return self._node_tiers

    @property
    def tier_names(self) -> tuple[str, ...] | None:
        return self._tier_names

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Real neighbors only (padding excluded)."""
        deg = int(self.true_degrees[node])
        return tuple(int(v) for v in self._adjacency[node, :deg])

    def port_target(self, node: int, port: int) -> int:
        if not 0 <= port < self.total_degree:
            raise IndexError(
                f"port {port} out of range [0, {self.total_degree})"
            )
        if port < self.degree:
            return int(self._adjacency[node, port])
        return node

    def is_original_port(self, port: int) -> bool:
        return 0 <= port < self.degree

    def padding_count(self, node: int) -> int:
        return self.degree - int(self.true_degrees[node])

    def has_edge(self, u: int, v: int) -> bool:
        deg = int(self.true_degrees[u])
        # Rows are at most d_max entries: a python-level membership test
        # on the materialized block beats a numpy comparison kernel by
        # an order of magnitude at these sizes, and this runs on every
        # churned edge of every churn round.
        return v in self._adjacency[u, :deg].tolist()

    def transition_matrix(self) -> np.ndarray:
        """Doubly stochastic walk matrix of the *current* topology.

        Recomputed on every call — a mutable graph cannot cache it.
        """
        n = self.num_nodes
        d_plus = self.total_degree
        matrix = np.zeros((n, n), dtype=np.float64)
        ports = np.arange(self.degree)
        real = ports[None, :] < self.true_degrees[:, None]
        us, ps = np.nonzero(real)
        np.add.at(
            matrix, (us, self._adjacency[us, ps]), 1.0 / d_plus
        )
        diag = np.arange(n)
        matrix[diag, diag] += (
            self._num_self_loops + self.degree - self.true_degrees
        ) / d_plus
        return matrix

    def describe(self) -> dict:
        return {
            "name": self.name,
            "n": self.num_nodes,
            "d_max": self.degree,
            "min_degree": int(self.true_degrees.min()),
            "d_self": self.num_self_loops,
            "d_plus": self.total_degree,
            "active_nodes": int(self.active.sum()),
        }

    # ------------------------------------------------------------------
    # Mutation (all O(1) per edge; dirty nodes accumulate)
    # ------------------------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Connect ``u`` and ``v``; the edge lands in each node's first
        padding slot."""
        if u == v:
            raise GraphValidationError(
                f"cannot add self-edge at node {u}"
            )
        if not (self.active[u] and self.active[v]):
            raise GraphValidationError(
                f"cannot add edge ({u}, {v}): endpoint inactive"
            )
        if self.has_edge(u, v):
            raise GraphValidationError(
                f"edge ({u}, {v}) already present"
            )
        pu = int(self.true_degrees[u])
        pv = int(self.true_degrees[v])
        if pu >= self.degree or pv >= self.degree:
            raise GraphValidationError(
                f"cannot add edge ({u}, {v}): port capacity "
                f"{self.degree} exhausted"
            )
        self._adjacency[u, pu] = v
        self._adjacency[v, pv] = u
        self._reverse_port[u, pu] = pv
        self._reverse_port[v, pv] = pu
        self.true_degrees[u] = pu + 1
        self.true_degrees[v] = pv + 1
        self._dirty.add(u)
        self._dirty.add(v)

    def drop_edge(self, u: int, v: int) -> None:
        """Sever the edge between ``u`` and ``v`` (swap-remove)."""
        deg = int(self.true_degrees[u])
        try:
            pu = self._adjacency[u, :deg].tolist().index(v)
        except ValueError:
            raise GraphValidationError(
                f"cannot drop absent edge ({u}, {v})"
            ) from None
        pv = int(self._reverse_port[u, pu])
        self._remove_port(u, pu)
        self._remove_port(v, pv)

    def _remove_port(self, u: int, p: int) -> None:
        """Vacate real port ``p`` of ``u``: last real port moves in."""
        last = int(self.true_degrees[u]) - 1
        if p != last:
            w = int(self._adjacency[u, last])
            q = int(self._reverse_port[u, last])
            self._adjacency[u, p] = w
            self._reverse_port[u, p] = q
            # The moved edge's far endpoint must point back at the new
            # slot — the incremental reverse-port repair.
            self._reverse_port[w, q] = p
            self._dirty.add(w)
        self._adjacency[u, last] = u
        self._reverse_port[u, last] = last
        self.true_degrees[u] = last
        self._dirty.add(u)

    def deactivate_node(self, u: int) -> tuple[int, ...]:
        """Remove ``u`` from the network; returns its severed neighbors.

        All incident edges are dropped (every surviving endpoint gets
        its row repaired) and the node is marked inactive.  Its load is
        untouched — handoff is the topology schedule/engine's business.
        """
        if not self.active[u]:
            raise GraphValidationError(f"node {u} is already inactive")
        severed = self.neighbors(u)
        for v in severed:
            self.drop_edge(u, v)
        self.active[u] = False
        self._dirty.add(u)
        return severed

    def activate_node(
        self, u: int, neighbors: Iterable[int] = ()
    ) -> None:
        """Re-admit ``u``, wiring it to ``neighbors`` in given order."""
        if self.active[u]:
            raise GraphValidationError(f"node {u} is already active")
        if self.true_degrees[u] != 0:
            raise GraphValidationError(
                f"inactive node {u} still has real edges"
            )
        self.active[u] = True
        self._dirty.add(u)
        for v in neighbors:
            self.add_edge(u, int(v))

    def consume_dirty(self) -> np.ndarray:
        """Nodes whose rows changed since the last call (sorted); clears."""
        if not self._dirty:
            return np.empty(0, dtype=np.int64)
        dirty = np.fromiter(
            self._dirty, dtype=np.int64, count=len(self._dirty)
        )
        self._dirty.clear()
        dirty.sort()
        return dirty

    # ------------------------------------------------------------------
    # Invariant checking (tests / reference harness)
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Full structural re-validation (O(n·d); tests only)."""
        PaddedBalancingGraph._check_padding(
            self._adjacency, self.true_degrees
        )
        n, d = self._adjacency.shape
        ports = np.arange(d)
        real = ports[None, :] < self.true_degrees[:, None]
        us, ps = np.nonzero(real)
        vs = self._adjacency[us, ps]
        qs = self._reverse_port[us, ps]
        if np.any((qs < 0) | (qs >= self.true_degrees[vs])):
            raise GraphValidationError(
                "reverse_port points outside the far real block"
            )
        if not np.array_equal(self._adjacency[vs, qs], us):
            raise GraphValidationError(
                "reverse_port does not invert adjacency"
            )
        pad_rev = self._reverse_port[~real]
        pad_ports = np.broadcast_to(ports, (n, d))[~real]
        if not np.array_equal(pad_rev, pad_ports):
            raise GraphValidationError(
                "padding ports must be their own reverse"
            )
        if np.any(self.true_degrees[~self.active] != 0):
            raise GraphValidationError(
                "inactive nodes must have zero real edges"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutableBalancingGraph(name={self.name!r}, "
            f"n={self.num_nodes}, d_max={self.degree}, "
            f"active={int(self.active.sum())})"
        )
