"""Graph substrate: d-regular graphs, balancing graphs, spectral tools."""

from repro.graphs.balancing import BalancingGraph
from repro.graphs.errors import (
    GraphConstructionError,
    GraphError,
    GraphValidationError,
)
from repro.graphs.families import (
    FAMILY_BUILDERS,
    build,
    register_family,
    circulant,
    circulant_clique,
    complete,
    complete_bipartite_regular,
    cycle,
    hypercube,
    petersen,
    random_regular,
    ring_of_cliques,
    torus,
)
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.graphs.irregular import (
    PaddedBalancingGraph,
    from_edge_arrays,
    from_irregular_edges,
    from_networkx_irregular,
)
from repro.graphs.mutable import MutableBalancingGraph
from repro.graphs.spectral import (
    SpectralProfile,
    continuous_balancing_time,
    eigenvalue_gap,
    eigenvalues,
    error_norm,
    mixing_time_scale,
    second_eigenvalue,
    spectral_profile,
    stationary_distribution,
)

__all__ = [
    "BalancingGraph",
    "GraphError",
    "GraphValidationError",
    "GraphConstructionError",
    "FAMILY_BUILDERS",
    "build",
    "register_family",
    "cycle",
    "complete",
    "circulant",
    "circulant_clique",
    "hypercube",
    "torus",
    "random_regular",
    "petersen",
    "ring_of_cliques",
    "complete_bipartite_regular",
    "SpectralProfile",
    "spectral_profile",
    "eigenvalues",
    "eigenvalue_gap",
    "second_eigenvalue",
    "stationary_distribution",
    "continuous_balancing_time",
    "mixing_time_scale",
    "error_norm",
    "PaddedBalancingGraph",
    "MutableBalancingGraph",
    "from_edge_arrays",
    "from_irregular_edges",
    "from_networkx_irregular",
    "fat_tree",
    "leaf_spine",
]
