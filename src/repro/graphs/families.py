"""Generators for the d-regular graph families used in the paper.

Every generator returns a :class:`~repro.graphs.balancing.BalancingGraph`.
The default self-loop count is ``d° = d`` (so ``d+ = 2d``), the standard
augmentation assumed by Theorems 2.3(i)/(ii) and 3.3; pass
``num_self_loops`` explicitly to deviate (e.g. ``0`` for Theorem 4.3).

Families provided:

* :func:`cycle` — the canonical bad expander (``μ = Θ(1/n²)``).
* :func:`complete` — the canonical perfect expander.
* :func:`circulant` — general circulant graphs; includes the
  ⌊d/2⌋-clique construction from Theorem 4.2.
* :func:`hypercube` — ``log n``-regular, ``μ = Θ(1/log n)``.
* :func:`torus` — r-dimensional torus, ``d = 2r``.
* :func:`random_regular` — random d-regular graphs, which are expanders
  with high probability.
* :func:`petersen` — 3-regular, non-bipartite, odd girth 5 (Theorem 4.3
  beyond cycles).
* :func:`complete_bipartite_regular` — ``K_{k,k}``, bipartite d-regular.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.balancing import BalancingGraph
from repro.graphs.errors import GraphConstructionError
from repro.registry import Registry

#: Decorator-based family registry (a Mapping, so ``in`` / iteration /
#: indexing work exactly as they did when this was a plain dict).
FAMILY_BUILDERS: Registry = Registry("graph family")

#: Decorator registering a graph-family builder: ``@register_family(name)``.
register_family = FAMILY_BUILDERS.register


def _default_loops(degree: int, num_self_loops: int | None) -> int:
    return degree if num_self_loops is None else num_self_loops


@register_family("cycle")
def cycle(n: int, num_self_loops: int | None = None) -> BalancingGraph:
    """Cycle ``C_n`` (2-regular). Requires ``n >= 3``."""
    if n < 3:
        raise GraphConstructionError(f"cycle requires n >= 3, got {n}")
    nodes = np.arange(n)
    adjacency = np.sort(
        np.stack([(nodes - 1) % n, (nodes + 1) % n], axis=1), axis=1
    )
    return BalancingGraph(
        adjacency,
        _default_loops(2, num_self_loops),
        name=f"cycle(n={n})",
    )


@register_family("complete")
def complete(n: int, num_self_loops: int | None = None) -> BalancingGraph:
    """Complete graph ``K_n`` ((n-1)-regular). Requires ``n >= 2``."""
    if n < 2:
        raise GraphConstructionError(f"complete requires n >= 2, got {n}")
    # Row u is 0..n-1 with u removed: drop the diagonal of the full
    # (n, n) index grid in one masked reshape.
    grid = np.broadcast_to(np.arange(n), (n, n))
    off_diagonal = ~np.eye(n, dtype=bool)
    adjacency = grid[off_diagonal].reshape(n, n - 1)
    return BalancingGraph(
        adjacency,
        _default_loops(n - 1, num_self_loops),
        name=f"complete(n={n})",
    )


@register_family("circulant")
def circulant(
    n: int,
    offsets: list[int],
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """Circulant graph: ``i ~ j`` iff ``(i - j) mod n in ±offsets``.

    Offsets must be distinct values in ``[1, n/2]``.  An offset equal to
    ``n/2`` (n even) contributes a single edge (degree 1), every other
    offset contributes two edges (degree 2).
    """
    if n < 3:
        raise GraphConstructionError(f"circulant requires n >= 3, got {n}")
    offsets = sorted(set(int(o) for o in offsets))
    if not offsets:
        raise GraphConstructionError("circulant requires at least one offset")
    if offsets[0] < 1 or offsets[-1] > n // 2:
        raise GraphConstructionError(
            f"offsets must lie in [1, {n // 2}], got {offsets}"
        )
    # A circulant is vertex-transitive: node u's neighborhood is
    # u + deltas (mod n) for the node-independent delta set {±offsets},
    # so one broadcast add builds the whole adjacency.
    deltas_set = set()
    for off in offsets:
        deltas_set.add(off)
        deltas_set.add(n - off)
    deltas = np.array(sorted(deltas_set), dtype=np.int64)
    adjacency = np.sort(
        (np.arange(n)[:, None] + deltas[None, :]) % n, axis=1
    )
    degree = adjacency.shape[1]
    return BalancingGraph(
        adjacency,
        _default_loops(degree, num_self_loops),
        name=f"circulant(n={n}, offsets={offsets})",
    )


@register_family("circulant_clique")
def circulant_clique(
    n: int,
    degree: int,
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """The Theorem 4.2 graph: circulant with offsets ``1..⌊d/2⌋``.

    Nodes ``i`` and ``j`` are adjacent iff ``(i - j) mod n`` lies in
    ``{1, ..., ⌊d/2⌋}`` (plus the antipodal offset ``n/2`` when ``d`` is
    odd and ``n`` even).  Nodes ``{0, ..., ⌊d/2⌋ - 1}`` then form a
    ⌊d/2⌋-clique, which the stateless lower bound exploits.
    """
    if degree < 2:
        raise GraphConstructionError("circulant_clique requires degree >= 2")
    half = degree // 2
    if n <= 2 * half:
        raise GraphConstructionError(
            f"need n > {2 * half} for offsets 1..{half}, got n={n}"
        )
    offsets = list(range(1, half + 1))
    if degree % 2 == 1:
        if n % 2 != 0:
            raise GraphConstructionError(
                "odd degree circulant_clique requires even n"
            )
        offsets.append(n // 2)
    graph = circulant(n, offsets, num_self_loops)
    graph.name = f"circulant_clique(n={n}, d={degree})"
    return graph


@register_family("hypercube")
def hypercube(
    dimension: int,
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """Hypercube ``Q_dim`` on ``2**dim`` nodes (dim-regular)."""
    if dimension < 1:
        raise GraphConstructionError(
            f"hypercube requires dimension >= 1, got {dimension}"
        )
    n = 1 << dimension
    nodes = np.arange(n)
    adjacency = np.stack(
        [nodes ^ (1 << bit) for bit in range(dimension)], axis=1
    )
    adjacency = np.sort(adjacency, axis=1)
    return BalancingGraph(
        adjacency,
        _default_loops(dimension, num_self_loops),
        name=f"hypercube(dim={dimension})",
    )


@register_family("torus")
def torus(
    side: int,
    dimensions: int = 2,
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """r-dimensional torus with ``side**dimensions`` nodes (2r-regular).

    ``side >= 3`` is required so that wrap-around edges do not collapse
    into parallel edges.
    """
    if side < 3:
        raise GraphConstructionError(f"torus requires side >= 3, got {side}")
    if dimensions < 1:
        raise GraphConstructionError("torus requires dimensions >= 1")
    shape = (side,) * dimensions
    n = side**dimensions
    # Rolling the id grid along an axis maps every node to its ±1
    # neighbor on that axis, wrap-around included — one roll per
    # (axis, direction) builds the whole adjacency.
    ids = np.arange(n, dtype=np.int64).reshape(shape)
    columns = [
        np.roll(ids, -delta, axis=axis).reshape(-1)
        for axis in range(dimensions)
        for delta in (-1, 1)
    ]
    adjacency = np.sort(np.stack(columns, axis=1), axis=1)
    return BalancingGraph(
        adjacency,
        _default_loops(2 * dimensions, num_self_loops),
        name=f"torus(side={side}, r={dimensions})",
    )


@register_family("random_regular")
def random_regular(
    n: int,
    degree: int,
    seed: int,
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """Random d-regular graph (an expander w.h.p. for ``d >= 3``).

    Uses networkx's pairing-model generator, retrying the seed until the
    sample is connected (disconnection probability is o(1)).
    """
    import networkx as nx

    if n * degree % 2 != 0:
        raise GraphConstructionError(
            f"n*degree must be even, got n={n}, degree={degree}"
        )
    if degree >= n:
        raise GraphConstructionError(
            f"degree must be < n, got degree={degree}, n={n}"
        )
    for attempt in range(64):
        candidate = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(candidate):
            graph = BalancingGraph.from_networkx(
                candidate, _default_loops(degree, num_self_loops)
            )
            graph.name = f"random_regular(n={n}, d={degree}, seed={seed})"
            return graph
    raise GraphConstructionError(
        f"could not sample a connected {degree}-regular graph on {n} nodes"
    )


_PETERSEN_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),          # outer 5-cycle
    (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),          # inner 5-star
    (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),          # spokes
]


@register_family("petersen")
def petersen(num_self_loops: int | None = None) -> BalancingGraph:
    """The Petersen graph: 3-regular, non-bipartite, odd girth 5."""
    graph = BalancingGraph.from_edge_list(
        10,
        _PETERSEN_EDGES,
        _default_loops(3, num_self_loops),
    )
    graph.name = "petersen"
    return graph


@register_family("complete_bipartite")
def complete_bipartite_regular(
    side: int,
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """``K_{side,side}``: bipartite, side-regular (contrast for Thm 4.3)."""
    if side < 1:
        raise GraphConstructionError("side must be >= 1")
    if side == 1:
        raise GraphConstructionError(
            "K_{1,1} is a single edge; need side >= 2 for a simple graph"
        )
    n = 2 * side
    adjacency = np.empty((n, side), dtype=np.int64)
    left = np.arange(side)
    right = np.arange(side, n)
    for u in left:
        adjacency[u] = right
    for u in right:
        adjacency[u] = left
    return BalancingGraph(
        adjacency,
        _default_loops(side, num_self_loops),
        name=f"complete_bipartite(side={side})",
    )


@register_family("ring_of_cliques")
def ring_of_cliques(
    num_cliques: int,
    clique_size: int,
    num_self_loops: int | None = None,
) -> BalancingGraph:
    """A ring of ``K_{clique_size}`` blocks joined by matchings.

    Consecutive cliques are joined by a perfect matching, making the
    graph ``(clique_size + 1)``-regular while the diameter grows like
    ``num_cliques`` — degree and diameter are *independently* tunable,
    which the Ω(d·diam) experiments (Theorem 4.1) exploit.
    """
    if num_cliques < 3:
        raise GraphConstructionError("need at least 3 cliques for a ring")
    if clique_size < 2:
        raise GraphConstructionError("clique_size must be >= 2")
    n = num_cliques * clique_size
    edges: list[tuple[int, int]] = []
    for block in range(num_cliques):
        base = block * clique_size
        # Internal clique edges.
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        # Matching to the next clique: member i <-> member i.
        next_base = ((block + 1) % num_cliques) * clique_size
        for i in range(clique_size):
            edges.append((base + i, next_base + i))
    graph = BalancingGraph.from_edge_list(
        n, edges, _default_loops(clique_size + 1, num_self_loops)
    )
    graph.name = (
        f"ring_of_cliques(blocks={num_cliques}, size={clique_size})"
    )
    return graph




def build(family: str, /, **kwargs) -> BalancingGraph:
    """Build a graph family by name (CLI/scenario/experiment entry point)."""
    if family not in FAMILY_BUILDERS:
        known = ", ".join(sorted(FAMILY_BUILDERS))
        raise GraphConstructionError(
            f"unknown graph family {family!r}; known families: {known}"
        )
    return FAMILY_BUILDERS[family](**kwargs)
