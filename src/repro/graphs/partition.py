"""Contiguous graph partitions with halo (ghost-node) maps.

The partitioned engine (:mod:`repro.engines.partitioned`) splits a
:class:`~repro.graphs.balancing.BalancingGraph` into ``k`` contiguous
node ranges and runs each range's share of a round in its own worker.
The structured-sends protocol makes the per-round boundary traffic
tiny — one edge-share scalar per node plus the rotor window state of
cut-edge endpoints — but each worker still needs to *read* the shares
of its neighbors across the cut.  Following DGL's partition-book
design, those remote neighbors become **halo** (ghost) slots: partition
``p`` keeps a list of the foreign node ids its rows reference, and
every local adjacency entry is remapped into the concatenated
``[own rows | halo slots]`` index space so a round is one contiguous
gather over ``len(part) + len(halo)`` values instead of a scattered
read over all ``n``.

:class:`PartitionBook` owns the node→partition map (contiguous bounds,
so ownership is a ``searchsorted``) and builds one
:class:`PartitionHalo` per partition.  Halos support *incremental
repair* under topology churn: ghost slots are append-only, so repairing
a mutated row never invalidates the remapped entries of untouched rows
— the owning partition rewrites only the dirty rows, and a cut edge
gained or lost repairs both endpoints' sides (both endpoints are always
in the dirty set).
"""

from __future__ import annotations

import numpy as np


def contiguous_bounds(num_nodes: int, parts: int) -> np.ndarray:
    """Offsets of ``parts`` contiguous near-equal ranges over ``n`` nodes.

    Returns ``parts + 1`` offsets with ``bounds[p] .. bounds[p+1]``
    partition ``p``'s half-open node range.  The remainder when
    ``parts`` does not divide ``n`` is spread one node at a time over
    the leading partitions, so sizes differ by at most one.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts > num_nodes:
        raise ValueError(
            f"cannot split {num_nodes} nodes into {parts} partitions"
        )
    base, leftover = divmod(num_nodes, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:leftover] += 1
    bounds = np.zeros(parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


class PartitionHalo:
    """One partition's rows with ghost slots for cross-cut neighbors.

    Attributes:
        part: partition index.
        lo / hi: the owned half-open node range ``[lo, hi)``.
        halo_ids: global ids of foreign nodes referenced by owned rows,
            in slot order (append-only under churn; may contain ids no
            longer referenced after an edge drop — harmless, they are
            extra reads, never wrong ones).
        adj_local: ``(hi - lo, d)`` adjacency remapped into the
            concatenated local index space: entry ``< hi - lo`` is an
            owned row offset, entry ``>= hi - lo`` is ``(hi - lo) +
            slot`` into ``halo_ids``.
    """

    def __init__(self, part: int, lo: int, hi: int, adjacency: np.ndarray):
        self.part = part
        self.lo = int(lo)
        self.hi = int(hi)
        rows = adjacency[self.lo:self.hi]
        foreign = (rows < self.lo) | (rows >= self.hi)
        self.halo_ids = np.unique(rows[foreign])
        self._slots = {
            int(node): slot for slot, node in enumerate(self.halo_ids)
        }
        local = rows - self.lo
        if self.halo_ids.size:
            local = np.where(
                foreign,
                (self.hi - self.lo)
                + np.searchsorted(self.halo_ids, rows),
                local,
            )
        self.adj_local = np.ascontiguousarray(local)

    @property
    def size(self) -> int:
        """Number of owned nodes."""
        return self.hi - self.lo

    def cut_degree(self) -> int:
        """Directed cut size: owned adjacency entries leaving the range."""
        return int((self.adj_local >= self.size).sum())

    def repair_rows(self, rows: np.ndarray, adjacency: np.ndarray):
        """Re-remap mutated owned rows; grow the halo as needed.

        ``rows`` are global ids inside ``[lo, hi)``.  New foreign
        neighbors get fresh ghost slots appended to ``halo_ids`` (never
        reordered), so untouched rows keep their remapped entries.
        Returns ``(local_rows, new_ghost_ids)`` — what a remote worker
        mirror needs to apply the same repair.
        """
        rows = np.asarray(rows, dtype=np.int64)
        local_rows = rows - self.lo
        fresh: list[int] = []
        for node in adjacency[rows].ravel().tolist():
            if self.lo <= node < self.hi or node in self._slots:
                continue
            self._slots[node] = len(self._slots)
            fresh.append(node)
        if fresh:
            self.halo_ids = np.concatenate(
                [self.halo_ids, np.asarray(fresh, dtype=np.int64)]
            )
        size = self.size
        remapped = np.empty((rows.size, adjacency.shape[1]), np.int64)
        flat = remapped.reshape(-1)
        for i, node in enumerate(adjacency[rows].ravel().tolist()):
            flat[i] = (
                node - self.lo
                if self.lo <= node < self.hi
                else size + self._slots[node]
            )
        self.adj_local[local_rows] = remapped
        return local_rows, np.asarray(fresh, dtype=np.int64)


class PartitionBook:
    """Node→partition map over contiguous ranges, with per-part halos.

    Args:
        graph: the balancing graph to split (only ``adjacency`` and
            ``num_nodes`` are read; the book does not keep the graph).
        parts: number of partitions ``k`` (clamped to ``n``).
    """

    def __init__(self, graph, parts: int):
        n = graph.num_nodes
        self.parts = min(int(parts), n)
        self.bounds = contiguous_bounds(n, self.parts)
        self.halos = [
            PartitionHalo(
                p, self.bounds[p], self.bounds[p + 1], graph.adjacency
            )
            for p in range(self.parts)
        ]

    def owner(self, nodes) -> np.ndarray:
        """Partition index owning each node (vectorized)."""
        return (
            np.searchsorted(
                self.bounds, np.asarray(nodes, dtype=np.int64), "right"
            )
            - 1
        )

    def rows_by_partition(self, nodes: np.ndarray):
        """Split sorted node ids into per-partition groups.

        Yields ``(part, rows)`` for partitions that own at least one of
        ``nodes`` — the routing step of a dirty-row refresh.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        owners = self.owner(nodes)
        for part in np.unique(owners).tolist():
            yield int(part), nodes[owners == part]

    def halo_nodes(self) -> int:
        """Total ghost slots across partitions."""
        return int(sum(h.halo_ids.size for h in self.halos))

    def cut_edges(self) -> int:
        """Undirected cut size (each cut edge counted once)."""
        return sum(h.cut_degree() for h in self.halos) // 2

    def describe(self) -> dict:
        """Partition statistics for reports and diagnostics."""
        sizes = np.diff(self.bounds)
        return {
            "parts": self.parts,
            "min_part": int(sizes.min()),
            "max_part": int(sizes.max()),
            "halo_nodes": self.halo_nodes(),
            "cut_edges": self.cut_edges(),
        }
