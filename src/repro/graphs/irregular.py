"""Non-regular graphs via the padding reduction (paper, Section 1.1).

The paper notes its results "can be extended to non-regular graphs".
The standard reduction (used since [17]) makes an irregular graph
regular by *padding*: every node of degree ``deg(u) < d_max`` gets
``d_max - deg(u)`` structural self-loops inside its "original" port
block, after which every node has exactly ``d_max`` original-block
ports plus the usual ``d°`` lazy self-loops.  The resulting walk is
doubly stochastic, so the continuous process balances to the *uniform*
vector (plain per-degree diffusion would converge to loads
proportional to degree — not what load balancing wants).

:class:`PaddedBalancingGraph` implements exactly the structural
protocol the engine and balancers consume (``num_nodes``, ``degree``,
``total_degree``, ``num_self_loops``, ``adjacency``, ``reverse_port``,
``transition_matrix``, …), with padded ports encoded as self-entries
whose reverse port is themselves — the engine's gather then returns
those tokens to their sender, which is precisely self-loop semantics.

Every balancer in :mod:`repro.algorithms` runs unchanged on a padded
graph.  Fairness semantics: padded ports sit in the original block, so
the monitors' "original edge" spread conservatively includes them;
all implemented algorithms treat every original-block port identically
(±1), so the Observation 2.2/3.2 verdicts carry over.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.graphs.errors import GraphValidationError


class PaddedBalancingGraph:
    """An irregular graph padded to uniform degree ``d_max``.

    Build with :func:`from_irregular_edges` or
    :func:`from_networkx_irregular`; the constructor takes already
    padded arrays and verifies their consistency.

    Args:
        adjacency: ``(n, d_max)`` array; real neighbors first, then the
            node's own index repeated as padding.
        true_degrees: length-``n`` array of real degrees.
        num_self_loops: lazy self-loops ``d°`` added uniformly on top.
        name: display name.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        true_degrees: np.ndarray,
        num_self_loops: int,
        *,
        name: str = "",
    ) -> None:
        adjacency = np.ascontiguousarray(adjacency, dtype=np.int64)
        true_degrees = np.ascontiguousarray(true_degrees, dtype=np.int64)
        n, d_max = adjacency.shape
        if true_degrees.shape != (n,):
            raise GraphValidationError(
                "true_degrees length must match adjacency rows"
            )
        if num_self_loops < 0:
            raise GraphValidationError("num_self_loops must be >= 0")
        if true_degrees.max() != d_max:
            raise GraphValidationError(
                "adjacency width must equal the maximum true degree"
            )
        self._check_padding(adjacency, true_degrees)
        self._adjacency = adjacency
        self._adjacency.setflags(write=False)
        self.true_degrees = true_degrees
        self._num_self_loops = int(num_self_loops)
        self._reverse_port = self._padded_reverse_port(
            adjacency, true_degrees
        )
        self._reverse_port.setflags(write=False)
        self.name = name or f"padded(n={n}, d_max={d_max})"
        self._transition_matrix: np.ndarray | None = None

    @staticmethod
    def _check_padding(adjacency: np.ndarray, degrees: np.ndarray) -> None:
        n, d_max = adjacency.shape
        for u in range(n):
            deg = int(degrees[u])
            real = adjacency[u, :deg]
            if (real == u).any():
                raise GraphValidationError(
                    f"node {u}: real neighbor block contains itself"
                )
            if len(set(map(int, real))) != deg:
                raise GraphValidationError(
                    f"node {u}: duplicate real neighbors"
                )
            if not (adjacency[u, deg:] == u).all():
                raise GraphValidationError(
                    f"node {u}: padding ports must point to the node itself"
                )

    @staticmethod
    def _padded_reverse_port(
        adjacency: np.ndarray, degrees: np.ndarray
    ) -> np.ndarray:
        n, d_max = adjacency.shape
        port_of = [
            {
                int(v): p
                for p, v in enumerate(adjacency[u, : int(degrees[u])])
            }
            for u in range(n)
        ]
        reverse = np.empty((n, d_max), dtype=np.int64)
        for u in range(n):
            deg = int(degrees[u])
            for p in range(d_max):
                if p < deg:
                    v = int(adjacency[u, p])
                    if u not in port_of[v]:
                        raise GraphValidationError(
                            f"edge ({u}, {v}) is not symmetric"
                        )
                    reverse[u, p] = port_of[v][u]
                else:
                    # Padding port: its own reverse — the engine's
                    # gather returns the tokens to the sender.
                    reverse[u, p] = p
        return reverse

    # ------------------------------------------------------------------
    # Structural protocol consumed by the engine / balancers
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._adjacency.shape[0]

    @property
    def degree(self) -> int:
        """Width of the original-port block (``d_max``, incl. padding)."""
        return self._adjacency.shape[1]

    @property
    def num_self_loops(self) -> int:
        return self._num_self_loops

    @property
    def total_degree(self) -> int:
        return self.degree + self._num_self_loops

    @property
    def adjacency(self) -> np.ndarray:
        return self._adjacency

    @property
    def reverse_port(self) -> np.ndarray:
        return self._reverse_port

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Real neighbors only (padding excluded)."""
        deg = int(self.true_degrees[node])
        return tuple(int(v) for v in self._adjacency[node, :deg])

    def port_target(self, node: int, port: int) -> int:
        if not 0 <= port < self.total_degree:
            raise IndexError(
                f"port {port} out of range [0, {self.total_degree})"
            )
        if port < self.degree:
            return int(self._adjacency[node, port])
        return node

    def is_original_port(self, port: int) -> bool:
        return 0 <= port < self.degree

    def padding_count(self, node: int) -> int:
        """Structural self-loops introduced by padding at ``node``."""
        return self.degree - int(self.true_degrees[node])

    # ------------------------------------------------------------------
    # Markov chain view
    # ------------------------------------------------------------------

    def transition_matrix(self) -> np.ndarray:
        """Doubly stochastic walk matrix of the padded graph."""
        if self._transition_matrix is None:
            n = self.num_nodes
            d_plus = self.total_degree
            matrix = np.zeros((n, n), dtype=np.float64)
            for u in range(n):
                for v in self.neighbors(u):
                    matrix[u, v] += 1.0 / d_plus
                self_mass = (
                    self._num_self_loops + self.padding_count(u)
                ) / d_plus
                matrix[u, u] += self_mass
            matrix.setflags(write=False)
            self._transition_matrix = matrix
        return self._transition_matrix

    # ------------------------------------------------------------------
    # Metric helpers (real edges only)
    # ------------------------------------------------------------------

    def distances_from(self, source: int) -> np.ndarray:
        n = self.num_nodes
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def is_connected(self) -> bool:
        return bool((self.distances_from(0) >= 0).all())

    def describe(self) -> dict:
        return {
            "name": self.name,
            "n": self.num_nodes,
            "d_max": self.degree,
            "min_degree": int(self.true_degrees.min()),
            "d_self": self.num_self_loops,
            "d_plus": self.total_degree,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaddedBalancingGraph(name={self.name!r}, "
            f"n={self.num_nodes}, d_max={self.degree})"
        )


def from_irregular_edges(
    num_nodes: int,
    edges: Iterable[tuple[int, int]],
    num_self_loops: int | None = None,
    *,
    name: str = "",
) -> PaddedBalancingGraph:
    """Pad an irregular undirected edge list to a balancing graph.

    ``num_self_loops`` defaults to ``d_max`` (the lazy d° = d setting
    after regularization, so Theorem 2.3(i)/(ii) and 3.3 apply).
    """
    neighbor_lists: list[list[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        if u == v:
            raise GraphValidationError(
                "irregular input must not contain explicit self-loops"
            )
        if v in neighbor_lists[u]:
            raise GraphValidationError(
                f"duplicate edge ({u}, {v}) in irregular input"
            )
        neighbor_lists[u].append(v)
        neighbor_lists[v].append(u)
    degrees = np.array(
        [len(lst) for lst in neighbor_lists], dtype=np.int64
    )
    if degrees.min() == 0:
        isolated = int(np.argmin(degrees))
        raise GraphValidationError(
            f"node {isolated} has no edges; graph must be connected"
        )
    d_max = int(degrees.max())
    adjacency = np.empty((num_nodes, d_max), dtype=np.int64)
    for u in range(num_nodes):
        row = sorted(neighbor_lists[u])
        adjacency[u] = row + [u] * (d_max - len(row))
    if num_self_loops is None:
        num_self_loops = d_max
    graph = PaddedBalancingGraph(
        adjacency,
        degrees,
        num_self_loops,
        name=name or f"irregular(n={num_nodes}, d_max={d_max})",
    )
    if not graph.is_connected():
        raise GraphValidationError("irregular input graph is disconnected")
    return graph


def from_networkx_irregular(
    graph,
    num_self_loops: int | None = None,
    *,
    name: str = "",
) -> PaddedBalancingGraph:
    """Pad an arbitrary simple connected networkx graph."""
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return from_irregular_edges(
        len(nodes), edges, num_self_loops, name=name or "from_networkx"
    )
