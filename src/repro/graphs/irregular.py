"""Non-regular graphs via the padding reduction (paper, Section 1.1).

The paper notes its results "can be extended to non-regular graphs".
The standard reduction (used since [17]) makes an irregular graph
regular by *padding*: every node of degree ``deg(u) < d_max`` gets
``d_max - deg(u)`` structural self-loops inside its "original" port
block, after which every node has exactly ``d_max`` original-block
ports plus the usual ``d°`` lazy self-loops.  The resulting walk is
doubly stochastic, so the continuous process balances to the *uniform*
vector (plain per-degree diffusion would converge to loads
proportional to degree — not what load balancing wants).

:class:`PaddedBalancingGraph` implements exactly the structural
protocol the engine and balancers consume (``num_nodes``, ``degree``,
``total_degree``, ``num_self_loops``, ``adjacency``, ``reverse_port``,
``transition_matrix``, …), with padded ports encoded as self-entries
whose reverse port is themselves — the engine's gather then returns
those tokens to their sender, which is precisely self-loop semantics.

Every balancer in :mod:`repro.algorithms` runs unchanged on a padded
graph.  Fairness semantics: padded ports sit in the original block, so
the monitors' "original edge" spread conservatively includes them;
all implemented algorithms treat every original-block port identically
(±1), so the Observation 2.2/3.2 verdicts carry over.

Multi-tier fabrics (fat-tree, leaf-spine, …) attach a ``node_tiers``
metadata channel — an integer tier id per node plus human-readable
``tier_names`` — that probes and experiments can read to report
per-tier load without the graph layer knowing anything about probes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphs.errors import GraphValidationError


class PaddedBalancingGraph:
    """An irregular graph padded to uniform degree ``d_max``.

    Build with :func:`from_irregular_edges` or
    :func:`from_networkx_irregular`; the constructor takes already
    padded arrays and verifies their consistency.

    Args:
        adjacency: ``(n, d_max)`` array; real neighbors first, then the
            node's own index repeated as padding.
        true_degrees: length-``n`` array of real degrees.
        num_self_loops: lazy self-loops ``d°`` added uniformly on top.
        name: display name.
        node_tiers: optional length-``n`` integer array mapping each
            node to a tier id (index into ``tier_names``).
        tier_names: names of the tiers referenced by ``node_tiers``.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        true_degrees: np.ndarray,
        num_self_loops: int,
        *,
        name: str = "",
        node_tiers: np.ndarray | Sequence[int] | None = None,
        tier_names: Sequence[str] | None = None,
    ) -> None:
        adjacency = np.ascontiguousarray(adjacency, dtype=np.int64)
        true_degrees = np.ascontiguousarray(true_degrees, dtype=np.int64)
        n, d_max = adjacency.shape
        if true_degrees.shape != (n,):
            raise GraphValidationError(
                "true_degrees length must match adjacency rows"
            )
        if num_self_loops < 0:
            raise GraphValidationError("num_self_loops must be >= 0")
        if true_degrees.max() != d_max:
            raise GraphValidationError(
                "adjacency width must equal the maximum true degree"
            )
        self._check_padding(adjacency, true_degrees)
        self._adjacency = adjacency
        self._adjacency.setflags(write=False)
        self.true_degrees = true_degrees
        self._num_self_loops = int(num_self_loops)
        self._reverse_port = self._padded_reverse_port(
            adjacency, true_degrees
        )
        self._reverse_port.setflags(write=False)
        self.name = name or f"padded(n={n}, d_max={d_max})"
        self._transition_matrix: np.ndarray | None = None
        self._transition_matrix_sparse = None
        self._node_tiers: np.ndarray | None = None
        self._tier_names: tuple[str, ...] | None = None
        if (node_tiers is None) != (tier_names is None):
            raise GraphValidationError(
                "node_tiers and tier_names must be given together"
            )
        if node_tiers is not None:
            tiers = np.ascontiguousarray(node_tiers, dtype=np.int64)
            names = tuple(str(t) for t in tier_names)
            if tiers.shape != (n,):
                raise GraphValidationError(
                    "node_tiers length must match the number of nodes"
                )
            if not names:
                raise GraphValidationError("tier_names must be non-empty")
            if tiers.min() < 0 or tiers.max() >= len(names):
                raise GraphValidationError(
                    "node_tiers values must index into tier_names"
                )
            tiers.setflags(write=False)
            self._node_tiers = tiers
            self._tier_names = names

    @staticmethod
    def _check_padding(adjacency: np.ndarray, degrees: np.ndarray) -> None:
        n, d_max = adjacency.shape
        ports = np.arange(d_max)
        real = ports[None, :] < degrees[:, None]
        own = adjacency == np.arange(n)[:, None]
        bad = real & own
        if bad.any():
            u = int(np.nonzero(bad.any(axis=1))[0][0])
            raise GraphValidationError(
                f"node {u}: real neighbor block contains itself"
            )
        bad = ~real & ~own
        if bad.any():
            u = int(np.nonzero(bad.any(axis=1))[0][0])
            raise GraphValidationError(
                f"node {u}: padding ports must point to the node itself"
            )
        # Distinct per-row sentinels >= n for the padding slots keep
        # them out of the duplicate scan without a ragged loop.
        keyed = np.where(real, adjacency, n + ports[None, :])
        keyed = np.sort(keyed, axis=1)
        dup = keyed[:, 1:] == keyed[:, :-1]
        if dup.any():
            u = int(np.nonzero(dup.any(axis=1))[0][0])
            raise GraphValidationError(
                f"node {u}: duplicate real neighbors"
            )

    @staticmethod
    def _padded_reverse_port(
        adjacency: np.ndarray, degrees: np.ndarray
    ) -> np.ndarray:
        n, d_max = adjacency.shape
        ports = np.arange(d_max)
        real = ports[None, :] < degrees[:, None]
        us, ps = np.nonzero(real)
        vs = adjacency[us, ps]
        # Match each directed real edge (u, v) with its reverse (v, u)
        # by key lookup; a missing reverse means asymmetric input.
        keys = us * n + vs
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        wanted = vs * n + us
        pos = np.searchsorted(sorted_keys, wanted)
        missing = (pos >= len(sorted_keys)) | (
            sorted_keys[np.minimum(pos, len(sorted_keys) - 1)] != wanted
        )
        if missing.any():
            i = int(np.nonzero(missing)[0][0])
            raise GraphValidationError(
                f"edge ({int(us[i])}, {int(vs[i])}) is not symmetric"
            )
        # Padding port: its own reverse — the engine's gather returns
        # the tokens to the sender.
        reverse = np.broadcast_to(ports, (n, d_max)).copy()
        reverse[us, ps] = ps[order][pos]
        return reverse

    # ------------------------------------------------------------------
    # Structural protocol consumed by the engine / balancers
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._adjacency.shape[0]

    @property
    def degree(self) -> int:
        """Width of the original-port block (``d_max``, incl. padding)."""
        return self._adjacency.shape[1]

    @property
    def num_self_loops(self) -> int:
        return self._num_self_loops

    @property
    def total_degree(self) -> int:
        return self.degree + self._num_self_loops

    @property
    def adjacency(self) -> np.ndarray:
        return self._adjacency

    @property
    def reverse_port(self) -> np.ndarray:
        return self._reverse_port

    @property
    def node_tiers(self) -> np.ndarray | None:
        """Per-node tier ids, or ``None`` for untiered graphs."""
        return self._node_tiers

    @property
    def tier_names(self) -> tuple[str, ...] | None:
        """Names indexed by :attr:`node_tiers`, or ``None``."""
        return self._tier_names

    def tier_counts(self) -> dict[str, int]:
        """Node count per tier name (empty for untiered graphs)."""
        if self._node_tiers is None:
            return {}
        counts = np.bincount(
            self._node_tiers, minlength=len(self._tier_names)
        )
        return {
            name: int(count)
            for name, count in zip(self._tier_names, counts)
        }

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Real neighbors only (padding excluded)."""
        deg = int(self.true_degrees[node])
        return tuple(int(v) for v in self._adjacency[node, :deg])

    def port_target(self, node: int, port: int) -> int:
        if not 0 <= port < self.total_degree:
            raise IndexError(
                f"port {port} out of range [0, {self.total_degree})"
            )
        if port < self.degree:
            return int(self._adjacency[node, port])
        return node

    def is_original_port(self, port: int) -> bool:
        return 0 <= port < self.degree

    def padding_count(self, node: int) -> int:
        """Structural self-loops introduced by padding at ``node``."""
        return self.degree - int(self.true_degrees[node])

    # ------------------------------------------------------------------
    # Markov chain view
    # ------------------------------------------------------------------

    def _real_edge_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed real edges ``(us, ps, vs)`` (padding excluded)."""
        ports = np.arange(self.degree)
        real = ports[None, :] < self.true_degrees[:, None]
        us, ps = np.nonzero(real)
        return us, ps, self._adjacency[us, ps]

    def transition_matrix(self) -> np.ndarray:
        """Doubly stochastic walk matrix of the padded graph."""
        if self._transition_matrix is None:
            n = self.num_nodes
            d_plus = self.total_degree
            matrix = np.zeros((n, n), dtype=np.float64)
            us, _, vs = self._real_edge_arrays()
            np.add.at(matrix, (us, vs), 1.0 / d_plus)
            diag = np.arange(n)
            matrix[diag, diag] += (
                self._num_self_loops
                + self.degree
                - self.true_degrees
            ) / d_plus
            matrix.setflags(write=False)
            self._transition_matrix = matrix
        return self._transition_matrix

    def transition_matrix_sparse(self):
        """``P`` as a scipy CSR matrix, built directly from adjacency.

        Never materializes the dense ``(n, n)`` array: the real edges
        each carry mass ``1/d+`` and the diagonal absorbs the lazy
        loops plus the padding loops, exactly as in
        :meth:`transition_matrix`.  The result is cached; callers must
        not mutate it.
        """
        if self._transition_matrix_sparse is None:
            from scipy.sparse import coo_matrix

            n = self.num_nodes
            d_plus = self.total_degree
            us, _, vs = self._real_edge_arrays()
            diag = np.arange(n)
            rows = np.concatenate([us, diag])
            cols = np.concatenate([vs, diag])
            data = np.concatenate(
                [
                    np.full(us.shape, 1.0 / d_plus),
                    (
                        self._num_self_loops
                        + self.degree
                        - self.true_degrees
                    )
                    / d_plus,
                ]
            )
            self._transition_matrix_sparse = coo_matrix(
                (data, (rows, cols)), shape=(n, n)
            ).tocsr()
        return self._transition_matrix_sparse

    # ------------------------------------------------------------------
    # Metric helpers (real edges only)
    # ------------------------------------------------------------------

    def distances_from(self, source: int) -> np.ndarray:
        """Hop distances over real edges, frontier-vectorized BFS.

        Padding entries point at their own node, whose distance is
        already set by the time the node enters a frontier, so they
        drop out of every ``fresh`` mask for free.
        """
        n = self.num_nodes
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            reached = self._adjacency[frontier].ravel()
            fresh = np.unique(reached[dist[reached] < 0])
            level += 1
            dist[fresh] = level
            frontier = fresh
        return dist

    def is_connected(self) -> bool:
        return bool((self.distances_from(0) >= 0).all())

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "n": self.num_nodes,
            "d_max": self.degree,
            "min_degree": int(self.true_degrees.min()),
            "d_self": self.num_self_loops,
            "d_plus": self.total_degree,
        }
        if self._node_tiers is not None:
            info["tiers"] = self.tier_counts()
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaddedBalancingGraph(name={self.name!r}, "
            f"n={self.num_nodes}, d_max={self.degree})"
        )


def from_edge_arrays(
    num_nodes: int,
    sources: np.ndarray,
    targets: np.ndarray,
    num_self_loops: int | None = None,
    *,
    name: str = "",
    node_tiers: np.ndarray | Sequence[int] | None = None,
    tier_names: Sequence[str] | None = None,
) -> PaddedBalancingGraph:
    """Pad an undirected edge set given as parallel index arrays.

    The fully vectorized sibling of :func:`from_irregular_edges` —
    the construction path for generated fabrics (fat-tree, leaf-spine)
    whose edge sets are assembled as numpy arrays.  Each undirected
    edge appears once in ``(sources, targets)``; neighbor blocks come
    out sorted ascending, exactly like :func:`from_irregular_edges`.
    """
    sources = np.ascontiguousarray(sources, dtype=np.int64).ravel()
    targets = np.ascontiguousarray(targets, dtype=np.int64).ravel()
    if sources.shape != targets.shape:
        raise GraphValidationError(
            "sources and targets must have the same length"
        )
    if sources.size and (
        min(sources.min(), targets.min()) < 0
        or max(sources.max(), targets.max()) >= num_nodes
    ):
        raise GraphValidationError(
            f"edge endpoints must lie in [0, {num_nodes})"
        )
    if (sources == targets).any():
        raise GraphValidationError(
            "irregular input must not contain explicit self-loops"
        )
    # Both directions of every undirected edge, sorted by (node,
    # neighbor) so each node's block is contiguous and ascending.
    u_all = np.concatenate([sources, targets])
    v_all = np.concatenate([targets, sources])
    order = np.lexsort((v_all, u_all))
    u_all, v_all = u_all[order], v_all[order]
    same = (u_all[1:] == u_all[:-1]) & (v_all[1:] == v_all[:-1])
    if same.any():
        i = int(np.nonzero(same)[0][0])
        raise GraphValidationError(
            f"duplicate edge ({int(u_all[i])}, {int(v_all[i])}) "
            "in irregular input"
        )
    degrees = np.bincount(u_all, minlength=num_nodes)
    if num_nodes == 0 or degrees.min() == 0:
        isolated = int(np.argmin(degrees)) if num_nodes else 0
        raise GraphValidationError(
            f"node {isolated} has no edges; graph must be connected"
        )
    d_max = int(degrees.max())
    starts = np.concatenate([[0], np.cumsum(degrees)])
    slots = np.arange(u_all.size) - starts[u_all]
    # Padding slots pre-filled with the node's own index.
    adjacency = np.broadcast_to(
        np.arange(num_nodes)[:, None], (num_nodes, d_max)
    ).copy()
    adjacency[u_all, slots] = v_all
    if num_self_loops is None:
        num_self_loops = d_max
    graph = PaddedBalancingGraph(
        adjacency,
        degrees,
        num_self_loops,
        name=name or f"irregular(n={num_nodes}, d_max={d_max})",
        node_tiers=node_tiers,
        tier_names=tier_names,
    )
    if not graph.is_connected():
        raise GraphValidationError("irregular input graph is disconnected")
    return graph


def from_irregular_edges(
    num_nodes: int,
    edges: Iterable[tuple[int, int]],
    num_self_loops: int | None = None,
    *,
    name: str = "",
    node_tiers: np.ndarray | Sequence[int] | None = None,
    tier_names: Sequence[str] | None = None,
) -> PaddedBalancingGraph:
    """Pad an irregular undirected edge list to a balancing graph.

    ``num_self_loops`` defaults to ``d_max`` (the lazy d° = d setting
    after regularization, so Theorem 2.3(i)/(ii) and 3.3 apply).
    """
    neighbor_lists: list[list[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        if u == v:
            raise GraphValidationError(
                "irregular input must not contain explicit self-loops"
            )
        if v in neighbor_lists[u]:
            raise GraphValidationError(
                f"duplicate edge ({u}, {v}) in irregular input"
            )
        neighbor_lists[u].append(v)
        neighbor_lists[v].append(u)
    degrees = np.array(
        [len(lst) for lst in neighbor_lists], dtype=np.int64
    )
    if degrees.min() == 0:
        isolated = int(np.argmin(degrees))
        raise GraphValidationError(
            f"node {isolated} has no edges; graph must be connected"
        )
    d_max = int(degrees.max())
    adjacency = np.empty((num_nodes, d_max), dtype=np.int64)
    for u in range(num_nodes):
        row = sorted(neighbor_lists[u])
        adjacency[u] = row + [u] * (d_max - len(row))
    if num_self_loops is None:
        num_self_loops = d_max
    graph = PaddedBalancingGraph(
        adjacency,
        degrees,
        num_self_loops,
        name=name or f"irregular(n={num_nodes}, d_max={d_max})",
        node_tiers=node_tiers,
        tier_names=tier_names,
    )
    if not graph.is_connected():
        raise GraphValidationError("irregular input graph is disconnected")
    return graph


def from_networkx_irregular(
    graph,
    num_self_loops: int | None = None,
    *,
    name: str = "",
) -> PaddedBalancingGraph:
    """Pad an arbitrary simple connected networkx graph."""
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return from_irregular_edges(
        len(nodes), edges, num_self_loops, name=name or "from_networkx"
    )
