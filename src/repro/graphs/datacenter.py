"""Multi-tier datacenter fabrics as registered graph families.

The paper's deterministic schemes live on abstract regular graphs; the
ROADMAP north-star is a serving system, so this module supplies the
two canonical serving topologies — the k-ary fat-tree (Al-Fares et
al., SIGCOMM 2008) and the two-tier leaf-spine (folded Clos) fabric —
as :func:`~repro.graphs.families.register_family` entries usable from
Scenario JSON and the CLI exactly like ``torus`` or ``hypercube``.

Both fabrics are irregular (hosts have degree 1, switches degree k or
more), so they route through the padding reduction in
:mod:`repro.graphs.irregular`: every node is padded to ``d_max`` with
structural self-loops, which keeps the walk doubly stochastic and all
engine paths (dense and structured) valid without modification.

Tier labels ride along as the ``node_tiers`` metadata channel so
probes and experiments can report per-tier load; node ids are laid
out hosts first, then switches, bottom tier to top.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.errors import GraphConstructionError
from repro.graphs.families import register_family
from repro.graphs.irregular import (
    PaddedBalancingGraph,
    from_edge_arrays,
)

#: Tier layout of :func:`fat_tree` nodes, bottom to top.
FAT_TREE_TIERS = ("host", "edge", "agg", "core")

#: Tier layout of :func:`leaf_spine` nodes, bottom to top.
LEAF_SPINE_TIERS = ("host", "leaf", "spine")


@register_family("fat_tree")
def fat_tree(
    k: int, num_self_loops: int | None = None
) -> PaddedBalancingGraph:
    """k-ary fat-tree: ``k`` pods of edge/agg switches under a core.

    Layout for even ``k >= 2``: ``k^3/4`` hosts, ``k^2/2`` edge
    switches, ``k^2/2`` aggregation switches, ``(k/2)^2`` core
    switches.  Each edge switch serves ``k/2`` hosts and uplinks to
    every aggregation switch in its pod; aggregation switch ``j`` of
    each pod uplinks to core group ``j`` (``k/2`` cores).  Every
    switch has true degree ``k``; hosts have true degree 1 and are
    padded to ``d_max = k``.
    """
    if k < 2 or k % 2:
        raise GraphConstructionError(
            f"fat_tree requires an even k >= 2, got {k}"
        )
    half = k // 2
    num_hosts = half * half * k  # k^3 / 4
    num_edge = num_agg = half * k  # k^2 / 2
    num_core = half * half
    edge0 = num_hosts
    agg0 = edge0 + num_edge
    core0 = agg0 + num_agg

    hosts = np.arange(num_hosts)
    host_up = edge0 + hosts // half

    # Per-pod complete bipartite edge x agg: pod p, edge slot i, agg
    # slot j for all (p, i, j).
    pods = np.repeat(np.arange(k), half * half)
    edge_slot = np.tile(np.repeat(np.arange(half), half), k)
    agg_slot = np.tile(np.arange(half), k * half)
    edge_sw = edge0 + pods * half + edge_slot
    agg_sw = agg0 + pods * half + agg_slot

    # Aggregation slot j of every pod reaches core group j.
    agg_up = agg0 + pods * half + edge_slot
    core_sw = core0 + edge_slot * half + agg_slot

    sources = np.concatenate([hosts, edge_sw, agg_up])
    targets = np.concatenate([host_up, agg_sw, core_sw])
    n = core0 + num_core
    tiers = np.empty(n, dtype=np.int64)
    tiers[:edge0] = 0
    tiers[edge0:agg0] = 1
    tiers[agg0:core0] = 2
    tiers[core0:] = 3
    return from_edge_arrays(
        n,
        sources,
        targets,
        num_self_loops,
        name=f"fat_tree(k={k})",
        node_tiers=tiers,
        tier_names=FAT_TREE_TIERS,
    )


@register_family("leaf_spine")
def leaf_spine(
    leaves: int,
    spines: int,
    hosts_per_leaf: int,
    num_self_loops: int | None = None,
) -> PaddedBalancingGraph:
    """Two-tier folded-Clos fabric: every leaf uplinks to every spine.

    ``leaves * hosts_per_leaf`` hosts (degree 1) hang off the leaves;
    leaves have true degree ``hosts_per_leaf + spines`` and spines
    ``leaves``.  All nodes are padded to the leaf degree (the maximum
    whenever ``hosts_per_leaf >= 1``).
    """
    if leaves < 1 or spines < 1:
        raise GraphConstructionError(
            "leaf_spine requires leaves >= 1 and spines >= 1, got "
            f"leaves={leaves}, spines={spines}"
        )
    if hosts_per_leaf < 0:
        raise GraphConstructionError(
            f"hosts_per_leaf must be >= 0, got {hosts_per_leaf}"
        )
    num_hosts = leaves * hosts_per_leaf
    leaf0 = num_hosts
    spine0 = leaf0 + leaves

    hosts = np.arange(num_hosts)
    host_up = leaf0 + (
        hosts // hosts_per_leaf if hosts_per_leaf else hosts
    )
    leaf_sw = leaf0 + np.repeat(np.arange(leaves), spines)
    spine_sw = spine0 + np.tile(np.arange(spines), leaves)

    n = spine0 + spines
    tiers = np.empty(n, dtype=np.int64)
    tiers[:leaf0] = 0
    tiers[leaf0:spine0] = 1
    tiers[spine0:] = 2
    return from_edge_arrays(
        n,
        np.concatenate([hosts, leaf_sw]),
        np.concatenate([host_up, spine_sw]),
        num_self_loops,
        name=(
            f"leaf_spine(l={leaves}, s={spines}, h={hosts_per_leaf})"
        ),
        node_tiers=tiers,
        tier_names=LEAF_SPINE_TIERS,
    )
