"""Generic decorator-based plugin registries.

One mechanism replaces the three ad-hoc lookup tables the codebase grew
(the balancer factory dict, the graph-family dispatch, per-experiment
config plumbing): a :class:`Registry` maps names to factory callables
and is populated with a decorator::

    BALANCERS = Registry("balancer")

    @BALANCERS.register("my_scheme")
    def _build(seed: int = 0, **params):
        return MyScheme(**params)

Registries are :class:`~collections.abc.Mapping`\\ s, so existing code
that iterated the old dicts (``for name in REGISTRY``, ``name in
FAMILY_BUILDERS``) keeps working unchanged.  Registering a name twice
raises :class:`DuplicateRegistrationError` so plugins cannot silently
shadow built-ins; pass ``overwrite=True`` to replace deliberately.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Iterator, TypeVar

F = TypeVar("F", bound=Callable)


def freeze_params(value):
    """Recursively convert a params tree into something hashable.

    The shared hashing helper behind every ``(name, params)`` spec
    (:class:`~repro.scenarios.spec.GraphSpec` / ``LoadSpec``,
    :class:`~repro.core.probes.ProbeSpec`,
    :class:`~repro.dynamics.spec.DynamicsSpec`): dicts become sorted
    key/value tuples, sequences become tuples, sets become frozensets.
    """
    if isinstance(value, dict):
        return tuple(
            sorted((k, freeze_params(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_params(v) for v in value)
    if isinstance(value, set):
        return frozenset(freeze_params(v) for v in value)
    return value


def parse_spec_shorthand(text: str, kind: str) -> tuple[str, dict]:
    """Parse the CLI spec shorthand ``name`` or ``name:{json params}``.

    The shared grammar behind ``--probe`` and ``--inject``: everything
    after the first ``:`` is a JSON object of constructor params.
    Returns ``(name, params)``.
    """
    import json

    if ":" not in text:
        return text, {}
    name, _, raw = text.partition(":")
    params = json.loads(raw)
    if not isinstance(params, dict):
        raise ValueError(
            f"{kind} params must be a JSON object, got {raw!r}"
        )
    return name, params


class RegistryError(Exception):
    """Base class for registry failures."""


class DuplicateRegistrationError(RegistryError, ValueError):
    """A name was registered twice without ``overwrite=True``."""


class UnknownEntryError(RegistryError, KeyError):
    """Lookup of a name that was never registered."""

    def __str__(self) -> str:  # KeyError repr-quotes its args; we don't
        return self.args[0] if self.args else ""


class Registry(Mapping):
    """Name -> factory mapping with decorator-based registration.

    Args:
        kind: human-readable entry kind (``"balancer"``, ``"graph
            family"``, ...) used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable] = {}

    # -- registration ---------------------------------------------------

    def register(
        self, name: str | None = None, *, overwrite: bool = False
    ) -> Callable[[F], F]:
        """Decorator registering a factory under ``name``.

        Usable as ``@registry.register("name")`` or bare
        ``@registry.register`` (the factory's ``__name__`` is used).
        """
        if callable(name):  # bare @registry.register
            factory, name = name, None
            self.add(factory.__name__, factory)
            return factory

        def decorator(factory: F) -> F:
            self.add(name or factory.__name__, factory, overwrite=overwrite)
            return factory

        return decorator

    def add(
        self, name: str, factory: Callable, *, overwrite: bool = False
    ) -> None:
        """Imperative registration (the decorator's workhorse)."""
        if not callable(factory):
            raise TypeError(
                f"{self.kind} {name!r} must be callable, got {factory!r}"
            )
        if name in self._entries and not overwrite:
            raise DuplicateRegistrationError(
                f"{self.kind} {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        self._entries[name] = factory

    def remove(self, name: str) -> None:
        """Unregister ``name`` (raises if absent)."""
        if name not in self._entries:
            raise UnknownEntryError(
                f"cannot remove unknown {self.kind} {name!r}"
            )
        del self._entries[name]

    # -- lookup ---------------------------------------------------------

    def create(self, name: str, /, **params):
        """Instantiate ``name`` with ``params`` forwarded to the factory."""
        return self[name](**params)

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    # -- Mapping protocol ----------------------------------------------
    # ``get(name, default)`` keeps plain-dict semantics via the Mapping
    # mixin; the hint-rich error lives in ``__getitem__`` (a KeyError
    # subclass, so dict-style error handling keeps working too).

    def __getitem__(self, name: str) -> Callable:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries))
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; known: {known}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, entries={self.names()})"
