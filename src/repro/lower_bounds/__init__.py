"""Lower-bound constructions from Section 4 of the paper."""

from repro.lower_bounds.fixed_flow import FixedFlowBalancer
from repro.lower_bounds.rotor_alternating import (
    RotorAlternatingInstance,
    build_rotor_alternating_instance,
    verify_period_two,
)
from repro.lower_bounds.stateless_clique import (
    StatelessInstance,
    build_stateless_instance,
    clique_is_complete,
    is_fixed_point,
)
from repro.lower_bounds.steady_state import (
    SteadyStateInstance,
    build_steady_state_instance,
    exchange_fairness_error,
    per_node_flow_spread,
)

__all__ = [
    "FixedFlowBalancer",
    "SteadyStateInstance",
    "build_steady_state_instance",
    "per_node_flow_spread",
    "exchange_fairness_error",
    "StatelessInstance",
    "build_stateless_instance",
    "clique_is_complete",
    "is_fixed_point",
    "RotorAlternatingInstance",
    "build_rotor_alternating_instance",
    "verify_period_two",
]
