"""Theorem 4.1: a round-fair balancer stuck at Ω(d · diam) discrepancy.

Construction (Appendix C.1): pick a pair ``(u, w)`` realizing the
diameter and label every node ``v`` with its BFS distance
``b(v) = dist(v, u)``.  Put the constant flow

    ``f(v1, v2) = min(b(v1), b(v2))``

on every directed edge, every round.  Because ``b`` changes by at most
1 along an edge, flows out of one node differ by at most 1 (round-fair
in the exchange sense of [17]); because ``f(v1,v2) = f(v2,v1)``, every
node's load is invariant.  The loads ``x(v) = Σ_e f(e)`` then differ by
``Θ(d · diam)`` between ``u`` and ``w`` — forever.

The point of the theorem: this scheme is **not cumulatively fair** for
any constant δ (flow imbalances between a node's edges accumulate
linearly in t), which is why Theorem 2.3's hypotheses cannot be
dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.balancing import BalancingGraph
from repro.lower_bounds.fixed_flow import FixedFlowBalancer


@dataclass
class SteadyStateInstance:
    """Theorem 4.1 instance: graph, balancer, loads, and predictions."""

    graph: BalancingGraph
    balancer: FixedFlowBalancer
    initial_loads: np.ndarray
    source: int
    sink: int
    diameter: int

    @property
    def predicted_discrepancy(self) -> int:
        """The provable floor ``d · (diam - 1)``."""
        return self.graph.degree * max(self.diameter - 1, 0)

    @property
    def actual_discrepancy(self) -> int:
        return int(self.initial_loads.max() - self.initial_loads.min())


def build_steady_state_instance(
    graph: BalancingGraph,
) -> SteadyStateInstance:
    """Build the Theorem 4.1 instance on ``graph`` (self-loops unused).

    Works on any connected d-regular graph; the flows live on original
    edges only, so the graph's ``d°`` is irrelevant (the paper's
    construction has no self-loops).
    """
    source, sink = graph.eccentric_pair()
    labels = graph.distances_from(source)
    n = graph.num_nodes
    d_plus = graph.total_degree
    flows = np.zeros((n, d_plus), dtype=np.int64)
    for node in range(n):
        for port, neighbor in enumerate(graph.neighbors(node)):
            flows[node, port] = min(
                int(labels[node]), int(labels[neighbor])
            )
    initial_loads = flows.sum(axis=1)
    balancer = FixedFlowBalancer([flows])
    balancer.name = "steady_state_round_fair"
    return SteadyStateInstance(
        graph=graph,
        balancer=balancer,
        initial_loads=initial_loads,
        source=source,
        sink=int(sink),
        diameter=int(labels.max()),
    )


def per_node_flow_spread(instance: SteadyStateInstance) -> int:
    """``max_u max_{e1,e2} |f(e1) - f(e2)|`` — must be <= 1 (round fair)."""
    degree = instance.graph.degree
    flows = instance.balancer._schedule[0][:, :degree]
    return int((flows.max(axis=1) - flows.min(axis=1)).max())


def exchange_fairness_error(instance: SteadyStateInstance) -> float:
    """Deviation from [17]'s continuous pairwise exchange, per edge.

    The continuous process exchanges ``(x(u) - x(v)) / (d + 1)`` net
    load over edge ``(u, v)``; the construction's net exchange is 0.
    Returns ``max_(u,v) |x(u) - x(v)| / (d + 1)`` — round-fairness in the
    exchange sense requires this to be < 1.
    """
    graph = instance.graph
    loads = instance.initial_loads
    worst = 0
    for node in range(graph.num_nodes):
        for neighbor in graph.neighbors(node):
            worst = max(worst, abs(int(loads[node]) - int(loads[neighbor])))
    return worst / (graph.degree + 1)
