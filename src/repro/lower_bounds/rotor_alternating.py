"""Theorem 4.3: ROTOR-ROUTER without self-loops stuck at Ω(d · φ(G)).

Construction (Appendix C.3), for a non-bipartite d-regular graph ``G``
with ``d° = 0`` and odd girth ``2φ + 1``:

* pick ``u`` on a shortest odd cycle and label ``b(v) = dist(v, u)``;
* put on every directed edge ``(v1, v2)`` the *alternating* flow

    - ``L`` if ``b(v1) = b(v2)`` (possible only with both >= φ),
    - ``L + Δ`` if ``b(v1)`` is even, ``L - Δ`` if odd,
      where ``Δ = max(φ - min(b(v1), b(v2)), 0)``;

* odd rounds use the reversed flows, so
  ``f_t(v1,v2) + f_t(v2,v1) = 2L`` and the system alternates between
  exactly two global states (period 2).

Within one node the scheduled flows take at most two consecutive values
``{a, a+1}``, so an actual rotor-router realizes them: order each
node's ports with the high-flow ports (the paper's set ``P1``) first
and start the rotor at 0.  Node ``u`` then alternates between loads
``(L+φ)·d`` and ``(L−φ)·d`` while the average stays ``L·d``: the
discrepancy can never drop below ``c·d·φ(G)``.

For an odd cycle (``d = 2``, ``φ = (n-1)/2``) this gives the Ω(n) bound
quoted in Section 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.rotor_router import RotorRouter
from repro.graphs.balancing import BalancingGraph
from repro.graphs.errors import GraphConstructionError


@dataclass
class RotorAlternatingInstance:
    """Theorem 4.3 instance with the fully configured rotor-router."""

    graph: BalancingGraph
    balancer: RotorRouter
    initial_loads: np.ndarray
    root: int
    phi: int
    base_load: int
    even_flows: np.ndarray
    odd_flows: np.ndarray

    @property
    def predicted_discrepancy(self) -> int:
        """The provable floor: root swings ``d·φ`` around the mean."""
        return self.graph.degree * self.phi


def _root_on_shortest_odd_cycle(graph: BalancingGraph) -> tuple[int, int]:
    """A vertex on a shortest odd cycle and the odd girth.

    In a BFS from ``s``, an edge joining two equal-depth nodes closes an
    odd closed walk of length ``2·depth + 1`` through ``s``; if that
    length equals the odd girth the walk is a shortest odd cycle and
    ``s`` lies on it.
    """
    best_root = -1
    best_length: int | None = None
    for source in range(graph.num_nodes):
        dist = graph.distances_from(source)
        for node in range(graph.num_nodes):
            for neighbor in graph.neighbors(node):
                if node < neighbor and dist[node] == dist[neighbor]:
                    length = 2 * int(dist[node]) + 1
                    if best_length is None or length < best_length:
                        best_length = length
                        best_root = source
    if best_length is None:
        raise GraphConstructionError(
            "graph is bipartite: Theorem 4.3 requires an odd cycle"
        )
    return best_root, best_length


def _scheduled_flows(
    graph: BalancingGraph,
    labels: np.ndarray,
    phi: int,
    base_load: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Even-round and odd-round per-port flow matrices."""
    n = graph.num_nodes
    degree = graph.degree
    even = np.zeros((n, graph.total_degree), dtype=np.int64)
    odd = np.zeros((n, graph.total_degree), dtype=np.int64)
    for node in range(n):
        for port, neighbor in enumerate(graph.neighbors(node)):
            b1 = int(labels[node])
            b2 = int(labels[neighbor])
            if b1 == b2:
                even[node, port] = base_load
                odd[node, port] = base_load
                continue
            delta = max(phi - min(b1, b2), 0)
            if b1 % 2 == 0:
                even[node, port] = base_load + delta
                odd[node, port] = base_load - delta
            else:
                even[node, port] = base_load - delta
                odd[node, port] = base_load + delta
    return even, odd


def build_rotor_alternating_instance(
    graph: BalancingGraph,
    base_load: int | None = None,
) -> RotorAlternatingInstance:
    """Build the Theorem 4.3 instance on a non-bipartite graph.

    Args:
        graph: d-regular, non-bipartite, with ``num_self_loops == 0``
            (the theorem's ``G+ = G`` setting).
        base_load: the construction's ``L``; defaults to the smallest
            value keeping all flows nonnegative (``φ``).
    """
    if graph.num_self_loops != 0:
        raise GraphConstructionError(
            "Theorem 4.3 concerns the rotor-router WITHOUT self-loops; "
            "build the graph with num_self_loops=0"
        )
    root, odd_girth = _root_on_shortest_odd_cycle(graph)
    phi = (odd_girth - 1) // 2
    if base_load is None:
        base_load = phi
    if base_load < phi:
        raise GraphConstructionError(
            f"base_load must be at least φ = {phi} to keep flows "
            "nonnegative"
        )
    labels = graph.distances_from(root)
    even, odd = _scheduled_flows(graph, labels, phi, base_load)
    initial_loads = even.sum(axis=1)

    # Port order: the ports whose even-round flow is the larger value
    # (the paper's P1) first, then the rest; rotor starts at 0 so the
    # extra tokens of even rounds cover exactly P1, after which the
    # rotor sits at the first P2 port for the odd round.
    degree = graph.degree
    orders = np.empty((graph.num_nodes, degree), dtype=np.int64)
    for node in range(graph.num_nodes):
        flows = even[node, :degree]
        high = flows.max()
        first = [p for p in range(degree) if flows[p] == high]
        rest = [p for p in range(degree) if flows[p] != high]
        orders[node] = first + rest
    balancer = RotorRouter(
        port_orders=orders,
        initial_rotors=np.zeros(graph.num_nodes, dtype=np.int64),
    )
    balancer.name = "rotor_router[thm4.3]"
    return RotorAlternatingInstance(
        graph=graph,
        balancer=balancer,
        initial_loads=initial_loads,
        root=root,
        phi=phi,
        base_load=base_load,
        even_flows=even,
        odd_flows=odd,
    )


def verify_period_two(
    instance: RotorAlternatingInstance,
    cycles: int = 4,
) -> bool:
    """Run the actual rotor-router; verify the state alternates.

    Executes ``2 * cycles`` rounds and checks that every even-round
    vector equals the initial one and every odd-round vector equals the
    scheduled odd state.
    """
    from repro.core.engine import Simulator

    simulator = Simulator(
        instance.graph,
        instance.balancer,
        instance.initial_loads,
        record_history=False,
    )
    odd_state = instance.odd_flows.sum(axis=1)
    for cycle in range(cycles):
        after_odd = simulator.step()
        if not np.array_equal(after_odd, odd_state):
            return False
        after_even = simulator.step()
        if not np.array_equal(after_even, instance.initial_loads):
            return False
    return True
