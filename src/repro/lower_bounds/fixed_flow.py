"""Load-oblivious fixed-flow balancer shared by the lower-bound builders.

Theorem 4.1's adversarial scheme repeats the same per-edge flow every
round; Theorem 4.3's rotor construction alternates between two flow
matrices.  :class:`FixedFlowBalancer` implements both patterns: it
cycles through a fixed list of sends matrices, ignoring the loads.

Such a balancer is a legitimate member of [17]'s round-fair class *on
the specific trajectory it is built for* (the construction guarantees
that the scheduled flows are consistent with the actual loads); the
engine's overdraw guard still verifies that it never spends tokens a
node does not have.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer
from repro.core.errors import BindingError


class FixedFlowBalancer(Balancer):
    """Cycles through a fixed schedule of sends matrices.

    Args:
        schedule: list of ``(n, d+)`` integer arrays; round ``t`` uses
            entry ``(t - 1) mod len(schedule)``.
    """

    name = "fixed_flow"
    properties = AlgorithmProperties(
        deterministic=True,
        stateless=False,  # flows are scheduled, not a function of load
        negative_load_safe=True,
        communication_free=True,
    )

    def __init__(self, schedule: list[np.ndarray]) -> None:
        super().__init__()
        if not schedule:
            raise ValueError("schedule must contain at least one matrix")
        self._schedule = [
            np.ascontiguousarray(matrix, dtype=np.int64)
            for matrix in schedule
        ]

    def _validate_graph(self, graph) -> None:
        expected = (graph.num_nodes, graph.total_degree)
        for index, matrix in enumerate(self._schedule):
            if matrix.shape != expected:
                raise BindingError(
                    f"schedule[{index}] has shape {matrix.shape}, "
                    f"expected {expected}"
                )
            if matrix.min() < 0:
                raise BindingError(
                    f"schedule[{index}] contains negative flows"
                )

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        return self._schedule[(t - 1) % len(self._schedule)]

    @property
    def period(self) -> int:
        return len(self._schedule)
