"""Theorem 4.2: stateless algorithms cannot beat Ω(d) discrepancy.

Construction (Appendix C.2): take the circulant graph whose offsets are
``1..⌊d/2⌋`` (plus the antipodal offset for odd ``d``), so that
``C = {0, ..., ⌊d/2⌋ - 1}`` forms a ⌊d/2⌋-clique.  Give every node of
``C`` load ``ℓ = |C| - 1`` and everyone else load 0.

A deterministic stateless algorithm reacts to load ``ℓ`` with some
fixed send pattern of at most ``ℓ`` positive values; the adversary
aligns those values with clique-internal edges, so each clique node
ships its tokens to its clique peers and receives exactly ``ℓ`` back —
a fixed point with discrepancy ``ℓ = Θ(d)`` forever.

Our concrete stateless algorithms realize the adversary *without* any
rewiring: with ``ℓ < d+`` the floor share is 0, so

* SEND(⌊x/d+⌋) and SEND([x/d+]) send nothing at all — the trivial
  fixed point;
* arbitrary rounding with the fixed-priority policy sends its ``ℓ``
  extra tokens to its ``ℓ`` lowest-numbered neighbors, which for clique
  nodes are exactly the other clique members (sorted adjacency) — the
  paper's circulating fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.balancer import Balancer
from repro.graphs.balancing import BalancingGraph
from repro.graphs.families import circulant_clique


@dataclass
class StatelessInstance:
    """Theorem 4.2 instance: graph, adversarial loads, and predictions."""

    graph: BalancingGraph
    initial_loads: np.ndarray
    clique: tuple[int, ...]

    @property
    def clique_load(self) -> int:
        """``ℓ = |C| - 1``."""
        return len(self.clique) - 1

    @property
    def predicted_discrepancy(self) -> int:
        """The stuck discrepancy ``ℓ = ⌊d/2⌋ - 1 = Θ(d)``."""
        return self.clique_load


def build_stateless_instance(
    n: int,
    degree: int,
    num_self_loops: int | None = None,
) -> StatelessInstance:
    """Build the Theorem 4.2 instance on ``n`` nodes of given degree."""
    graph = circulant_clique(n, degree, num_self_loops)
    clique = tuple(range(degree // 2))
    loads = np.zeros(n, dtype=np.int64)
    loads[list(clique)] = len(clique) - 1
    return StatelessInstance(
        graph=graph,
        initial_loads=loads,
        clique=clique,
    )


def clique_is_complete(instance: StatelessInstance) -> bool:
    """Sanity check: the designated nodes really form a clique."""
    graph = instance.graph
    members = set(instance.clique)
    for u in instance.clique:
        neighbors = set(graph.neighbors(u))
        if not (members - {u}) <= neighbors:
            return False
    return True


def is_fixed_point(
    instance: StatelessInstance,
    balancer: Balancer,
    rounds: int = 8,
) -> bool:
    """True if ``balancer`` leaves the adversarial loads unchanged.

    Runs a few rounds and compares the load vector each time; a single
    change disproves the fixed point.
    """
    from repro.core.engine import Simulator

    simulator = Simulator(
        instance.graph,
        balancer,
        instance.initial_loads,
        record_history=False,
    )
    reference = instance.initial_loads
    for _ in range(rounds):
        loads = simulator.step()
        if not np.array_equal(loads, reference):
            return False
    return True
