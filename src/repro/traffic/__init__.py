"""Datacenter workload generators on the dynamics Injector protocol.

``repro.traffic`` layers realistic arrival processes — Poisson,
heavy-tailed flows, diurnal curves, rotating hotspots, correlated
bursts — on top of :mod:`repro.dynamics`.  Every generator registers
in the shared injector registry, so scenario JSON reaches them through
``DynamicsSpec(name, params)`` with the usual seeded replica-offset
discipline, and suites using them stay shardable and cacheable under
:mod:`repro.exec`.

Importing this package is what registers the generators; user code
normally gets it for free because :mod:`repro.dynamics` imports it at
the end of its own init.
"""

from repro.traffic.generators import (
    CorrelatedBurst,
    Diurnal,
    HotspotShift,
    ParetoFlows,
    PoissonArrivals,
    host_rates,
)

#: Registry names contributed by this package.
TRAFFIC_INJECTORS = (
    "poisson_arrivals",
    "pareto_flows",
    "diurnal",
    "hotspot_shift",
    "correlated_burst",
)

__all__ = [
    "PoissonArrivals",
    "ParetoFlows",
    "Diurnal",
    "HotspotShift",
    "CorrelatedBurst",
    "host_rates",
    "TRAFFIC_INJECTORS",
]
