"""Seeded datacenter arrival processes on the Injector protocol.

Each generator is a :func:`~repro.dynamics.injectors.register_injector`
entry, so scenario JSON requests it by name through
:class:`~repro.dynamics.spec.DynamicsSpec` and inherits the standard
replica discipline: batch replica ``r`` runs with ``seed + r`` and must
emit a bit-identical stream whether it executes alone, looped, batched,
or replayed from the result cache (pinned by the replica-offset suite
in ``tests/scenarios``).

Determinism rules shared by every generator here:

* :meth:`start` rebuilds the RNG from the stored seed, so one instance
  reused across runs restarts the stream from scratch;
* :meth:`delta` consumes the stream strictly once per round in round
  order (the only call pattern the engines use), or — for
  ``hotspot_shift`` — derives its randomness from ``(seed, epoch)``
  alone, making it independent of call history altogether;
* all emitted deltas are non-negative arrivals, so no generator can
  violate the engine's never-drain-below-zero invariant.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidInjection
from repro.dynamics.injectors import Injector, register_injector

__all__ = [
    "PoissonArrivals",
    "ParetoFlows",
    "Diurnal",
    "HotspotShift",
    "CorrelatedBurst",
    "host_rates",
]

#: SeedSequence stream key separating hotspot-epoch draws from any
#: other consumer of the same user seed.
_HOTSPOT_STREAM = 0x686F74  # "hot"


def _rate_vector(rate, n: int) -> np.ndarray:
    """Broadcast a scalar or per-node rate spec to a length-``n`` lam."""
    lam = np.asarray(rate, dtype=np.float64)
    if lam.ndim == 0:
        lam = np.full(n, float(lam))
    if lam.shape != (n,):
        raise InvalidInjection(
            f"per-node rate vector has length {lam.shape[0] if lam.ndim == 1 else lam.shape}, "
            f"graph has {n} nodes"
        )
    return lam


def _check_rate(rate) -> None:
    arr = np.asarray(rate, dtype=np.float64)
    if arr.ndim > 1 or (arr < 0).any():
        raise InvalidInjection(
            "rate must be a non-negative scalar or a flat vector of "
            f"non-negative per-node rates, got {rate!r}"
        )


def host_rates(graph, rate: float, tier: str = "host") -> list[float]:
    """Per-node rate list concentrating ``rate`` on one tier.

    Every node of ``tier`` gets ``rate``; every other node gets 0 —
    the arrival shape of a serving fabric, where requests land on
    hosts and the switch tiers only relay.  Returns a plain list so
    the result drops straight into ``DynamicsSpec`` params and
    scenario JSON.
    """
    tiers = getattr(graph, "node_tiers", None)
    names = getattr(graph, "tier_names", None)
    if tiers is None or names is None:
        raise InvalidInjection(
            f"graph {getattr(graph, 'name', graph)!r} has no node_tiers "
            "metadata; host_rates needs a tiered fabric"
        )
    if tier not in names:
        raise InvalidInjection(
            f"unknown tier {tier!r}; graph tiers: {', '.join(names)}"
        )
    mask = tiers == names.index(tier)
    return [float(rate) if hot else 0.0 for hot in mask]


@register_injector("poisson_arrivals")
class PoissonArrivals(Injector):
    """Independent Poisson arrivals, scalar or per-node rate vector.

    The memoryless baseline of the traffic pack: each round, node
    ``i`` receives ``Poisson(rate_i)`` tokens.  Pass a scalar for a
    uniform fabric-wide rate or a length-``n`` list (see
    :func:`host_rates`) to drive only one tier.
    """

    name = "poisson_arrivals"

    def __init__(self, rate, seed: int = 0) -> None:
        _check_rate(rate)
        self.rate = rate
        self.seed = int(seed)
        self._injected = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._lam = _rate_vector(self.rate, loads.shape[-1])
        self._injected = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        out = self._zero_delta(loads.shape[-1])
        out += self._rng.poisson(self._lam)
        self._injected += int(out.sum())
        return out

    def summary(self) -> dict:
        return {"tokens_arrived": self._injected}


@register_injector("pareto_flows")
class ParetoFlows(Injector):
    """Heavy-tailed flow arrivals: Poisson count, Pareto sizes.

    Each round, ``Poisson(rate)`` flows arrive at uniform random
    nodes; each flow carries ``floor(min_size * U^(-1/alpha))`` tokens
    clipped to ``max_size`` — the elephants-and-mice size mix of real
    datacenter traces.  Smaller ``alpha`` means heavier elephants.
    """

    name = "pareto_flows"

    def __init__(
        self,
        rate: float,
        alpha: float = 1.5,
        min_size: int = 1,
        max_size: int = 10_000,
        seed: int = 0,
    ) -> None:
        if rate < 0:
            raise InvalidInjection(f"rate must be >= 0, got {rate}")
        if alpha <= 0:
            raise InvalidInjection(f"alpha must be > 0, got {alpha}")
        if not 1 <= min_size <= max_size:
            raise InvalidInjection(
                "need 1 <= min_size <= max_size, got "
                f"min_size={min_size}, max_size={max_size}"
            )
        self.rate = float(rate)
        self.alpha = float(alpha)
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        self.seed = int(seed)
        self._injected = 0
        self._flows = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._injected = 0
        self._flows = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        out = self._zero_delta(n)
        flows = int(self._rng.poisson(self.rate))
        if flows:
            # Inverse-CDF Pareto draw; 1 - U keeps U = 0 finite.
            u = self._rng.random(flows)
            sizes = np.minimum(
                np.floor(
                    self.min_size * (1.0 - u) ** (-1.0 / self.alpha)
                ).astype(np.int64),
                self.max_size,
            )
            nodes = self._rng.integers(0, n, size=flows)
            np.add.at(out, nodes, sizes)
            self._flows += flows
            self._injected += int(sizes.sum())
        return out

    def summary(self) -> dict:
        return {
            "tokens_arrived": self._injected,
            "flows_arrived": self._flows,
        }


@register_injector("diurnal")
class Diurnal(Injector):
    """A day/night load curve modulating Poisson arrivals.

    The base process is :class:`PoissonArrivals` with ``rate`` (scalar
    or per-node); round ``t`` scales every rate by
    ``1 + amplitude * sin(2*pi * ((t - 1) / period + phase))``, so one
    ``period`` spans a full peak-and-trough cycle and ``amplitude=1``
    swings between 0 and twice the base rate.
    """

    name = "diurnal"

    def __init__(
        self,
        rate,
        period: int = 96,
        amplitude: float = 0.8,
        phase: float = 0.0,
        seed: int = 0,
    ) -> None:
        _check_rate(rate)
        if period < 1:
            raise InvalidInjection(f"period must be >= 1, got {period}")
        if not 0 <= amplitude <= 1:
            raise InvalidInjection(
                f"amplitude must be in [0, 1], got {amplitude}"
            )
        self.rate = rate
        self.period = int(period)
        self.amplitude = float(amplitude)
        self.phase = float(phase)
        self.seed = int(seed)
        self._injected = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._lam = _rate_vector(self.rate, loads.shape[-1])
        self._injected = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        out = self._zero_delta(loads.shape[-1])
        swing = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * ((t - 1) / self.period + self.phase)
        )
        out += self._rng.poisson(np.maximum(swing, 0.0) * self._lam)
        self._injected += int(out.sum())
        return out

    def summary(self) -> dict:
        return {"tokens_arrived": self._injected}


@register_injector("hotspot_shift")
class HotspotShift(Injector):
    """``rate`` tokens per round on a rotating hot set of nodes.

    Every ``shift_every`` rounds a fresh set of ``hotspots`` nodes is
    drawn and the whole arrival rate concentrates there (split evenly,
    remainder to the first hotspots) — the shifting-skew workload that
    defeats balancers which only ever chase yesterday's hot node.

    The hot set for epoch ``e`` is a pure function of
    ``(seed, e)`` — no sequential RNG state — so the stream is
    deterministic regardless of call history.
    """

    name = "hotspot_shift"

    def __init__(
        self,
        rate: int,
        hotspots: int = 1,
        shift_every: int = 50,
        seed: int = 0,
    ) -> None:
        if rate < 0:
            raise InvalidInjection(f"rate must be >= 0, got {rate}")
        if hotspots < 1:
            raise InvalidInjection(
                f"hotspots must be >= 1, got {hotspots}"
            )
        if shift_every < 1:
            raise InvalidInjection(
                f"shift_every must be >= 1, got {shift_every}"
            )
        self.rate = int(rate)
        self.hotspots = int(hotspots)
        self.shift_every = int(shift_every)
        self.seed = int(seed)
        self._injected = 0
        self._epochs_seen = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._injected = 0
        self._epochs_seen = 0
        self._epoch = -1
        self._hot: np.ndarray | None = None

    def _hot_set(self, epoch: int, n: int) -> np.ndarray:
        rng = np.random.default_rng(
            [self.seed, _HOTSPOT_STREAM, epoch]
        )
        return rng.choice(n, size=min(self.hotspots, n), replace=False)

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        epoch = (t - 1) // self.shift_every
        if epoch != self._epoch:
            self._epoch = epoch
            self._hot = self._hot_set(epoch, n)
            self._epochs_seen += 1
        out = self._zero_delta(n)
        k = self._hot.shape[0]
        out[self._hot] = self.rate // k
        out[self._hot[: self.rate % k]] += 1
        self._injected += self.rate
        return out

    def summary(self) -> dict:
        return {
            "tokens_arrived": self._injected,
            "hotspot_epochs": self._epochs_seen,
        }


@register_injector("correlated_burst")
class CorrelatedBurst(Injector):
    """Synchronized multi-node spikes (incast / thundering herd).

    Each round, with probability ``probability``, a burst fires:
    ``nodes`` distinct random nodes *simultaneously* receive
    ``tokens`` each.  Between bursts the stream is silent, so all
    injected load arrives in correlated shocks — the failure mode that
    per-node smoothing assumptions miss.
    """

    name = "correlated_burst"

    def __init__(
        self,
        tokens: int,
        nodes: int = 4,
        probability: float = 0.05,
        seed: int = 0,
    ) -> None:
        if tokens < 0:
            raise InvalidInjection(
                f"tokens must be >= 0, got {tokens}"
            )
        if nodes < 1:
            raise InvalidInjection(f"nodes must be >= 1, got {nodes}")
        if not 0 <= probability <= 1:
            raise InvalidInjection(
                f"probability must be in [0, 1], got {probability}"
            )
        self.tokens = int(tokens)
        self.nodes = int(nodes)
        self.probability = float(probability)
        self.seed = int(seed)
        self._injected = 0
        self._bursts = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._injected = 0
        self._bursts = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        out = self._zero_delta(n)
        if self._rng.random() < self.probability:
            chosen = self._rng.choice(
                n, size=min(self.nodes, n), replace=False
            )
            out[chosen] = self.tokens
            self._bursts += 1
            self._injected += self.tokens * chosen.shape[0]
        return out

    def summary(self) -> dict:
        return {
            "tokens_arrived": self._injected,
            "bursts_fired": self._bursts,
        }
