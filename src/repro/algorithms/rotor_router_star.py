"""ROTOR-ROUTER*: the self-preferring rotor-router variant (Section 1.1).

``num_special`` *special* self-loops receive the ceiling share
``⌈x/d+⌉`` whenever the load does not divide evenly (more precisely,
``min(s, e)`` of them receive ``⌈x/d+⌉`` and the rest ``⌊x/d+⌋``, where
``e = x mod d+``); the remaining tokens are distributed by an ordinary
rotor-router over the other ``d+ - s`` ports.

With ``num_special = 1`` this is exactly the paper's ROTOR-ROUTER*
(Observation 3.2: a good 1-balancer); larger values give a *tunable*
good s-balancer on a fixed graph, which experiment E5 uses to probe
Theorem 3.3's ``d/s`` speed-up without changing ``μ``.

The paper describes the case ``d° = d`` ("maintains d−1 self-loops
together with one special self-loop", i.e. ``d+ = 2d``); the
implementation accepts any ``d° >= num_special``.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer
from repro.core.errors import BindingError
from repro.graphs.balancing import BalancingGraph


class RotorRouterStar(Balancer):
    """Rotor-router with ``num_special`` always-ceiling self-loops."""

    properties = AlgorithmProperties(
        deterministic=True,
        stateless=False,
        negative_load_safe=True,
        communication_free=True,
    )

    def __init__(self, num_special: int = 1) -> None:
        super().__init__()
        if num_special < 1:
            raise ValueError("num_special must be >= 1")
        self.num_special = num_special
        self.name = (
            "rotor_router_star"
            if num_special == 1
            else f"rotor_router_star[s={num_special}]"
        )
        self._rotors: np.ndarray | None = None
        self._orders: np.ndarray | None = None

    def _validate_graph(self, graph: BalancingGraph) -> None:
        if graph.num_self_loops < self.num_special:
            raise BindingError(
                f"ROTOR-ROUTER* with {self.num_special} special loops "
                f"needs d° >= {self.num_special}, got {graph.num_self_loops}"
            )
        if graph.total_degree - self.num_special < 1:
            raise BindingError("no ports left for the rotor")

    def _on_bind(self, graph: BalancingGraph) -> None:
        # Special self-loops are the last `num_special` ports; the rotor
        # cycles over the rest, interleaving originals and loops.
        d_plus = graph.total_degree
        ordinary: list[int] = []
        originals = list(range(graph.degree))
        loops = list(range(graph.degree, d_plus - self.num_special))
        while originals or loops:
            if originals:
                ordinary.append(originals.pop(0))
            if loops:
                ordinary.append(loops.pop(0))
        order = np.array(ordinary, dtype=np.int64)
        self._orders = np.tile(order, (graph.num_nodes, 1))
        self._cycle = d_plus - self.num_special
        self._position_window = np.arange(self._cycle)[None, :]
        self._special_index = np.arange(self.num_special)[None, :]

    def reset(self) -> None:
        self._rotors = np.zeros(self.graph.num_nodes, dtype=np.int64)

    @property
    def rotors(self) -> np.ndarray:
        return self._rotors

    @property
    def special_ports(self) -> tuple[int, ...]:
        """Indices of the always-ceiling self-loop ports."""
        d_plus = self.graph.total_degree
        return tuple(range(d_plus - self.num_special, d_plus))

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        d_plus = graph.total_degree
        quotient, excess = np.divmod(loads, d_plus)
        # min(s, e) special loops take the ceiling, the rest the floor.
        num_ceiling = np.minimum(self.num_special, excess)
        sends = np.zeros((graph.num_nodes, d_plus), dtype=np.int64)
        special = quotient[:, None] + (
            self._special_index < num_ceiling[:, None]
        )
        sends[:, d_plus - self.num_special:] = special
        # Rotor distributes the remaining tokens over the other ports.
        remaining_extra = excess - num_ceiling
        offsets = (
            self._position_window - self._rotors[:, None]
        ) % self._cycle
        values = quotient[:, None] + (offsets < remaining_extra[:, None])
        np.put_along_axis(sends, self._orders, values, axis=1)
        self._rotors = (self._rotors + remaining_extra) % self._cycle
        return sends
