"""The ROTOR-ROUTER (Propp machine) as a load balancer.

Each node's ``d+`` ports are arranged in a fixed cyclic order and the
node keeps a rotor pointing at one of them.  To distribute load ``x``
the node sends one token along the rotor's port, advances the rotor,
and repeats — equivalently, every port receives ``⌊x/d+⌋`` tokens and
the ``x mod d+`` extra tokens go to the next ``x mod d+`` ports in
cyclic order starting at the rotor, which then advances by ``x mod d+``.

Observation 2.2: cumulatively 1-fair (the round-robin guarantees that
cumulative counts of any two ports differ by at most 1).  Table 1
flags: deterministic, **stateful**, never negative, no communication.

Theorem 4.3 is about this algorithm with ``d° = 0``; the class supports
arbitrary self-loop counts including zero, plus custom per-node port
orders and initial rotor positions (needed for the lower-bound
construction in :mod:`repro.lower_bounds.rotor_alternating`).
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer
from repro.core.errors import BindingError
from repro.core.structured import RotorWindow, StructuredRound
from repro.graphs.balancing import BalancingGraph


def interleaved_port_order(degree: int, num_self_loops: int) -> np.ndarray:
    """A port order alternating original edges and self-loops.

    With ``d° >= d`` this yields ``original, loop, original, loop, ...``
    followed by leftover loops; it spreads self-loop laziness evenly
    through the rotor cycle (the arrangement analyzed in [3]).

    Strided assembly instead of the obvious alternating-pop loop: the
    latter is O(d+²) per call (``list.pop(0)`` shifts the tail), which
    showed up at bind time on high-degree fat-tree core switches.
    """
    paired = min(degree, num_self_loops)
    order = np.empty(degree + num_self_loops, dtype=np.int64)
    order[0: 2 * paired: 2] = np.arange(paired)
    order[1: 2 * paired: 2] = degree + np.arange(paired)
    if degree > paired:
        order[2 * paired:] = np.arange(paired, degree)
    else:
        order[2 * paired:] = degree + np.arange(paired, num_self_loops)
    return order


class RotorRouter(Balancer):
    """Rotor-router load balancing on ``G+``.

    Args:
        port_orders: optional ``(n, d+)`` array; row ``u`` is the cyclic
            port order of node ``u`` (a permutation of ``0..d+-1``).
            Default: the same interleaved order at every node.
        initial_rotors: optional length-``n`` initial rotor positions
            (indices *into the cyclic order*, not port numbers).
    """

    name = "rotor_router"
    properties = AlgorithmProperties(
        deterministic=True,
        stateless=False,
        negative_load_safe=True,
        communication_free=True,
    )
    supports_structured_sends = True

    def __init__(
        self,
        port_orders: np.ndarray | None = None,
        initial_rotors: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self._custom_orders = port_orders
        self._custom_rotors = initial_rotors
        self._orders: np.ndarray | None = None
        self._rotors: np.ndarray | None = None
        self._reverse_flat: np.ndarray | None = None
        self.refresh_rows = 0
        self.refresh_full = 0

    def _validate_graph(self, graph: BalancingGraph) -> None:
        d_plus = graph.total_degree
        if self._custom_orders is not None:
            orders = np.asarray(self._custom_orders, dtype=np.int64)
            if orders.shape != (graph.num_nodes, d_plus):
                raise BindingError(
                    f"port_orders shape {orders.shape} does not match "
                    f"(n={graph.num_nodes}, d+={d_plus})"
                )
            expected = np.arange(d_plus)
            if not np.all(np.sort(orders, axis=1) == expected[None, :]):
                raise BindingError(
                    "each port_orders row must be a permutation of ports"
                )
        if self._custom_rotors is not None:
            rotors = np.asarray(self._custom_rotors, dtype=np.int64)
            if rotors.shape != (graph.num_nodes,):
                raise BindingError(
                    f"initial_rotors must have length {graph.num_nodes}"
                )
            if rotors.min() < 0 or rotors.max() >= d_plus:
                raise BindingError(
                    f"rotor positions must lie in [0, {d_plus})"
                )

    def _on_bind(self, graph: BalancingGraph) -> None:
        d_plus = graph.total_degree
        if self._custom_orders is not None:
            self._orders = np.asarray(self._custom_orders, dtype=np.int64)
        else:
            row = interleaved_port_order(
                graph.degree, graph.num_self_loops
            )
            self._orders = np.tile(row, (graph.num_nodes, 1))
        self._position_window = np.arange(d_plus)[None, :]
        # Structured-execution precomputes: positions is the inverse
        # permutation of the port order (cyclic position of each port);
        # reverse_flat gathers the sender-side (n, d) edge-hit matrix
        # to the receiver side (see RotorWindow).  Both are static per
        # bind and shared by every round's RotorWindow.
        self._positions = np.argsort(self._orders, axis=1)
        self._reverse_flat = (
            graph.adjacency * graph.degree + graph.reverse_port
        ).ravel()

    def refresh_topology(self, graph: BalancingGraph, dirty=None) -> None:
        """Repair ``reverse_flat`` for the mutated rows only.

        ``_orders``/``_positions``/``_position_window`` depend only on
        ``(n, d+)`` — unchanged under in-place churn — and the rotors
        deliberately keep their positions, so the receiver-side gather
        index is the only structure that goes stale.  Repair cost is
        O(|dirty| * d), independent of ``n``; the counters back the
        incrementality regression test.
        """
        self._graph = graph
        if dirty is None or self._reverse_flat is None:
            self._on_bind(graph)
            self.refresh_full += 1
            return
        rows = np.asarray(dirty, dtype=np.int64)
        if rows.size == 0:
            return
        d = graph.degree
        view = self._reverse_flat.reshape(-1, d)
        view[rows] = (
            graph.adjacency[rows] * d + graph.reverse_port[rows]
        )
        self.refresh_rows += int(rows.size)

    def reset(self) -> None:
        graph = self.graph
        # Per-run contract: the incrementality counters describe the
        # run that is about to start, not the lifetime of the instance
        # — without this they bleed across replicas/reruns of one
        # balancer (bind() resets before every run).
        self.refresh_rows = 0
        self.refresh_full = 0
        if self._custom_rotors is not None:
            self._rotors = np.asarray(
                self._custom_rotors, dtype=np.int64
            ).copy()
        else:
            self._rotors = np.zeros(graph.num_nodes, dtype=np.int64)

    @property
    def rotors(self) -> np.ndarray:
        """Current rotor positions (cyclic-order indices)."""
        return self._rotors

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        d_plus = graph.total_degree
        quotient, extra = np.divmod(loads, d_plus)
        # Value at cyclic position k: quotient, plus 1 if k falls in the
        # window [rotor, rotor + extra) mod d+.
        offsets = (self._position_window - self._rotors[:, None]) % d_plus
        values = quotient[:, None] + (offsets < extra[:, None])
        sends = np.empty((graph.num_nodes, d_plus), dtype=np.int64)
        np.put_along_axis(sends, self._orders, values, axis=1)
        self._rotors = (self._rotors + extra) % d_plus
        return sends

    def sends_structured(self, loads: np.ndarray, t: int) -> StructuredRound:
        # The compact form of the rule above: the uniform quotient on
        # every port plus a +1 window of length x mod d+ starting at the
        # rotor.  Advances the rotors exactly as sends() does; the
        # handed-out window keeps the pre-advance positions.
        graph = self.graph
        d_plus = graph.total_degree
        if loads.ndim != 1:
            raise ValueError(
                "rotor-router is stateful; structured sends take one "
                "(n,) load vector per instance"
            )
        quotient, extra = np.divmod(loads, d_plus)
        window = RotorWindow(
            rotors=self._rotors,
            extra=extra,
            positions=self._positions,
            reverse_flat=self._reverse_flat,
        )
        self._rotors = (self._rotors + extra) % d_plus
        return StructuredRound(
            edge_share=quotient,
            loop_base=quotient if graph.num_self_loops else None,
            window=window,
        )
