"""Randomized distribution of extra tokens by vertices ([5], Table 1 row 2).

Berenbrink, Cooper, Friedetzky, Friedrich, Sauerwald (SODA 2011): every
node first sends ``⌊x/d+⌋`` tokens along every port, then ships each of
its ``x mod d+`` *extra* tokens to an independently chosen uniformly
random port.  Unlike the round-fair class, a single port may receive
several extra tokens in one round (sampling is with replacement).

Adaptation note: [5] works on ``G`` with ``d+ = d + 1``; we phrase it on
the balancing graph ``G+`` so that all algorithms see identical
topology.  Set ``include_self_loops=False`` to restrict the random
placement to original edges as in the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer


class RandomizedExtraTokens(Balancer):
    """Floor everywhere + extras to independent uniform random ports."""

    properties = AlgorithmProperties(
        deterministic=False,
        stateless=True,  # no state carried between rounds (fresh coins)
        negative_load_safe=True,
        communication_free=True,
    )

    def __init__(self, seed: int, include_self_loops: bool = True) -> None:
        super().__init__()
        self.seed = seed
        self.include_self_loops = include_self_loops
        self.name = "randomized_extra_tokens"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        d_plus = graph.total_degree
        targets = d_plus if self.include_self_loops else graph.degree
        quotient, extras = np.divmod(loads, d_plus)
        sends = np.repeat(quotient[:, None], d_plus, axis=1)
        busy = np.nonzero(extras > 0)[0]
        if busy.size:
            probabilities = np.full(targets, 1.0 / targets)
            placements = self._rng.multinomial(
                extras[busy], probabilities
            )
            sends[busy, :targets] += placements
        return sends
