"""SEND(⌊x/d+⌋): the simplest stateless cumulatively 0-fair balancer.

A node with load ``x`` sends ``⌊x/d+⌋`` tokens over every original edge;
the remaining ``x - d·⌊x/d+⌋`` tokens are distributed over the
self-loops so that every self-loop receives at least ``⌊x/d+⌋``
(Section 1.1).  Observation 2.2: cumulatively 0-fair.  Table 1 flags:
deterministic, stateless, never negative, no communication.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import (
    AlgorithmProperties,
    Balancer,
    split_extras_over_self_loops,
)
from repro.graphs.balancing import BalancingGraph


class SendFloor(Balancer):
    """SEND(⌊x/d+⌋) (see module docstring).

    With ``d° = 0`` the excess ``x mod d`` simply stays at the node as
    its remainder, which is the natural degenerate case.
    """

    name = "send_floor"
    properties = AlgorithmProperties(
        deterministic=True,
        stateless=True,
        negative_load_safe=True,
        communication_free=True,
    )

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        d_plus = graph.total_degree
        quotient = loads // d_plus
        sends = np.repeat(quotient[:, None], d_plus, axis=1)
        extras = loads - d_plus * quotient
        if graph.num_self_loops > 0:
            split_extras_over_self_loops(sends, extras, graph.degree)
        return sends


def floor_self_loop_minimum(graph: BalancingGraph) -> bool:
    """True if SEND(⌊x/d+⌋) can honor Def 2.1's floor condition.

    It always can: every port receives at least ``⌊x/d+⌋`` by
    construction.  Kept as an explicit documented fact used in tests.
    """
    return True
