"""SEND(⌊x/d+⌋): the simplest stateless cumulatively 0-fair balancer.

A node with load ``x`` sends ``⌊x/d+⌋`` tokens over every original edge;
the remaining ``x - d·⌊x/d+⌋`` tokens are distributed over the
self-loops so that every self-loop receives at least ``⌊x/d+⌋``
(Section 1.1).  Observation 2.2: cumulatively 0-fair.  Table 1 flags:
deterministic, stateless, never negative, no communication.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer
from repro.core.structured import StructuredRound
from repro.graphs.balancing import BalancingGraph


class SendFloor(Balancer):
    """SEND(⌊x/d+⌋) (see module docstring).

    With ``d° = 0`` the excess ``x mod d`` simply stays at the node as
    its remainder, which is the natural degenerate case.
    """

    name = "send_floor"
    properties = AlgorithmProperties(
        deterministic=True,
        stateless=True,
        negative_load_safe=True,
        communication_free=True,
    )
    supports_batched_sends = True
    supports_structured_sends = True
    _batch_scratch: np.ndarray | None = None

    def reset(self) -> None:
        self._batch_scratch = None

    def _fill_sends(self, loads: np.ndarray, out: np.ndarray) -> np.ndarray:
        # Shape-polymorphic rule: works for one (n,) vector and for a
        # (replicas, n) stack alike, filling out with (..., n, d+).
        # Equivalent to a uniform quotient fill followed by
        # split_extras_over_self_loops, with one less full-width pass.
        graph = self.graph
        degree = graph.degree
        d_plus = graph.total_degree
        num_loops = graph.num_self_loops
        quotient = loads // d_plus
        out[..., :degree] = quotient[..., None]
        if num_loops > 0:
            extras = loads - d_plus * quotient
            per_loop, leftover = np.divmod(extras, num_loops)
            out[..., degree:] = (quotient + per_loop)[..., None]
            out[..., degree:] += np.arange(num_loops) < leftover[..., None]
        return out

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        shape = loads.shape + (self.graph.total_degree,)
        return self._fill_sends(loads, np.empty(shape, dtype=np.int64))

    def sends_batch(self, loads: np.ndarray, t: int) -> np.ndarray:
        # The batch engine consumes the sends within the round and no
        # monitors can hold a reference, so one scratch buffer is reused
        # across rounds (fresh multi-MB allocations dominate otherwise).
        shape = loads.shape + (self.graph.total_degree,)
        if self._batch_scratch is None or self._batch_scratch.shape != shape:
            self._batch_scratch = np.empty(shape, dtype=np.int64)
        return self._fill_sends(loads, self._batch_scratch)

    def sends_structured(self, loads: np.ndarray, t: int) -> StructuredRound:
        # Compact form of _fill_sends: the uniform quotient on every
        # port, the excess x mod d+ split over the self-loops.  Accepts
        # (n,) vectors and (replicas, n) stacks alike.
        graph = self.graph
        d_plus = graph.total_degree
        num_loops = graph.num_self_loops
        quotient = loads // d_plus
        if num_loops == 0:
            return StructuredRound(edge_share=quotient)
        extras = loads - d_plus * quotient
        per_loop, leftover = np.divmod(extras, num_loops)
        return StructuredRound(
            edge_share=quotient,
            loop_base=quotient + per_loop,
            loop_ceil=leftover,
        )


def floor_self_loop_minimum(graph: BalancingGraph) -> bool:
    """True if SEND(⌊x/d+⌋) can honor Def 2.1's floor condition.

    It always can: every port receives at least ``⌊x/d+⌋`` by
    construction.  Kept as an explicit documented fact used in tests.
    """
    return True
