"""The Rabani–Sinclair–Wanka round-fair class with pluggable rounding.

[17] analyzes every scheme that, each round, gives every port either
``⌊x/d+⌋`` or ``⌈x/d+⌉`` tokens — *which* ports get the ceiling is
arbitrary.  Their bound ``O(d log n / μ)`` is all that can be said at
this generality, and Theorem 4.1 shows it is essentially tight: a
round-fair scheme that is **not cumulatively fair** can stay at
``Ω(d · diam)`` discrepancy forever.

:class:`ArbitraryRoundingDiffusion` implements the class with a policy
object choosing the ceiling ports:

* :class:`FixedPriorityPolicy` — extras always go to the lowest-numbered
  original ports.  Deterministic, maximally unfair cumulatively (port 0
  outpaces port d-1 by one token *every* round with leftovers) — the
  adversarial member used in experiment E9.
* :class:`RandomPolicy` — extras go to a fresh uniformly random subset
  of ports each round (a natural randomized member of the class).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer


class RoundingPolicy(ABC):
    """Chooses which ports receive the ceiling share each round."""

    deterministic: bool = True

    def reset(self) -> None:
        """Restore initial RNG state (if any)."""

    @abstractmethod
    def extra_mask(
        self,
        loads: np.ndarray,
        extras: np.ndarray,
        d_plus: int,
        t: int,
    ) -> np.ndarray:
        """Boolean ``(n, d+)`` mask with exactly ``extras[u]`` Trues/row."""


class FixedPriorityPolicy(RoundingPolicy):
    """Extras always go to ports ``0, 1, ..., e-1`` (originals first)."""

    deterministic = True

    def extra_mask(self, loads, extras, d_plus, t):
        return np.arange(d_plus)[None, :] < extras[:, None]


class RandomPolicy(RoundingPolicy):
    """Extras go to a fresh uniform random subset of ports each round."""

    deterministic = False

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def extra_mask(self, loads, extras, d_plus, t):
        noise = self._rng.random((loads.shape[0], d_plus))
        # Rank ports by noise; the `extras[u]` smallest ranks get a token.
        ranks = np.argsort(np.argsort(noise, axis=1), axis=1)
        return ranks < extras[:, None]


class ArbitraryRoundingDiffusion(Balancer):
    """A member of [17]'s round-fair class, parameterized by policy.

    Every port receives the floor share; the policy places the
    ``x mod d+`` leftover tokens.  Always round-fair and never
    overdraws; cumulative fairness depends entirely on the policy.
    """

    def __init__(self, policy: RoundingPolicy | None = None) -> None:
        super().__init__()
        self.policy = policy if policy is not None else FixedPriorityPolicy()
        self.name = (
            f"arbitrary_rounding[{type(self.policy).__name__}]"
        )
        self.properties = AlgorithmProperties(
            deterministic=self.policy.deterministic,
            stateless=self.policy.deterministic,
            negative_load_safe=True,
            communication_free=True,
        )

    def reset(self) -> None:
        self.policy.reset()

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        d_plus = graph.total_degree
        quotient, extras = np.divmod(loads, d_plus)
        mask = self.policy.extra_mask(loads, extras, d_plus, t)
        sends = np.repeat(quotient[:, None], d_plus, axis=1)
        sends += mask.astype(np.int64)
        return sends
