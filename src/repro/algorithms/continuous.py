"""The continuous diffusion process — the paper's reference dynamics.

In the continuous model load is infinitely divisible: each round every
node ships ``x(u)/d+`` to each neighbor and keeps ``d°/d+ + 0`` for
itself, i.e. the load vector evolves as ``x_{t+1} = P x_t`` with the
balancing graph's (symmetric) transition matrix ``P``.  It converges to
the uniform vector; ``T = O(log(Kn)/μ)`` rounds suffice to balance up
to any fixed accuracy.

The discrete algorithms in this library are compared against this
process: Theorem 2.3's proof bounds the deviation of any cumulatively
fair balancer from it over long time windows, and the mimicking
baseline [4] follows its cumulative edge flows explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.balancing import BalancingGraph


def continuous_discrepancy(loads: np.ndarray) -> float:
    """``max - min`` for real-valued load vectors."""
    return float(loads.max() - loads.min())


@dataclass
class ContinuousResult:
    """Final state and trajectory summary of a continuous run."""

    final_loads: np.ndarray
    rounds_executed: int
    discrepancy_history: list[float]

    @property
    def final_discrepancy(self) -> float:
        return continuous_discrepancy(self.final_loads)


_STRUCTURED_THRESHOLD = 4096


class ContinuousDiffusion:
    """Reference continuous process ``x_{t+1} = P x_t``.

    Not a :class:`~repro.core.balancer.Balancer` — loads are real-valued
    and there is no sends matrix; the class mirrors the simulator's
    ``step``/``run`` API instead.

    Args:
        graph: the balancing graph ``G+``.
        mode: ``"dense"`` multiplies by the cached ``(n, n)`` transition
            matrix; ``"structured"`` executes the round matrix-free as
            ``x - (d/d+)·x + Σ_neighbors x_v/d+`` via an adjacency
            gather (O(n·d) time and memory — the million-node path).
            ``"auto"`` (default) picks dense up to ``n = 4096`` and
            structured beyond.  The two modes agree up to float
            round-off.
    """

    name = "continuous_diffusion"

    def __init__(self, graph: BalancingGraph, mode: str = "auto") -> None:
        if mode not in ("auto", "dense", "structured"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "auto":
            mode = (
                "dense"
                if graph.num_nodes <= _STRUCTURED_THRESHOLD
                else "structured"
            )
        self.graph = graph
        self.mode = mode
        self._matrix = (
            graph.transition_matrix() if mode == "dense" else None
        )

    def step(self, loads: np.ndarray) -> np.ndarray:
        """One round: ``P @ loads`` (dense) or its gather form."""
        if self.mode == "dense":
            return self._matrix @ loads
        graph = self.graph
        share = np.asarray(loads, dtype=np.float64) / graph.total_degree
        return (
            loads
            - graph.degree * share
            + share[graph.adjacency].sum(axis=1)
        )

    def port_flows(self, loads: np.ndarray) -> np.ndarray:
        """Per-port continuous flow this round: ``x(u)/d+`` everywhere."""
        share = loads / self.graph.total_degree
        return np.repeat(
            share[:, None], self.graph.total_degree, axis=1
        )

    def run(
        self,
        initial_loads: np.ndarray,
        rounds: int,
        *,
        record_history: bool = True,
    ) -> ContinuousResult:
        """Execute ``rounds`` rounds from ``initial_loads``."""
        loads = np.asarray(initial_loads, dtype=np.float64).copy()
        history = (
            [continuous_discrepancy(loads)] if record_history else []
        )
        for _ in range(rounds):
            loads = self.step(loads)
            if record_history:
                history.append(continuous_discrepancy(loads))
        return ContinuousResult(
            final_loads=loads,
            rounds_executed=rounds,
            discrepancy_history=history,
        )

    def run_until_discrepancy(
        self,
        initial_loads: np.ndarray,
        target: float,
        max_rounds: int,
    ) -> ContinuousResult:
        """Run until the (real-valued) discrepancy is at most ``target``."""
        loads = np.asarray(initial_loads, dtype=np.float64).copy()
        history = [continuous_discrepancy(loads)]
        executed = 0
        while history[-1] > target and executed < max_rounds:
            loads = self.step(loads)
            history.append(continuous_discrepancy(loads))
            executed += 1
        return ContinuousResult(
            final_loads=loads,
            rounds_executed=executed,
            discrepancy_history=history,
        )

    def balancing_time(
        self,
        initial_loads: np.ndarray,
        target: float = 1.0,
        max_rounds: int = 10_000_000,
    ) -> int:
        """Measured rounds for the continuous process to reach ``target``.

        This is the empirical counterpart of the paper's ``T``; the
        experiments use it to grant every discrete algorithm the same
        "after time O(T)" horizon.
        """
        result = self.run_until_discrepancy(
            initial_loads, target, max_rounds
        )
        return result.rounds_executed
