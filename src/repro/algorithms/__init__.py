"""All load-balancing algorithms: the paper's schemes and baselines."""

from repro.algorithms.arbitrary_rounding import (
    ArbitraryRoundingDiffusion,
    FixedPriorityPolicy,
    RandomPolicy,
    RoundingPolicy,
)
from repro.algorithms.continuous import (
    ContinuousDiffusion,
    ContinuousResult,
    continuous_discrepancy,
)
from repro.algorithms.mimicking import ContinuousMimicking
from repro.algorithms.randomized_extra import RandomizedExtraTokens
from repro.algorithms.randomized_rounding import RandomizedEdgeRounding
from repro.algorithms.registry import (
    BALANCERS,
    BASELINE_ALGORITHMS,
    PAPER_ALGORITHMS,
    REGISTRY,
    all_names,
    make,
    register_balancer,
)
from repro.algorithms.rotor_router import RotorRouter, interleaved_port_order
from repro.algorithms.rotor_router_star import RotorRouterStar
from repro.algorithms.send_floor import SendFloor
from repro.algorithms.send_rounded import (
    SendRounded,
    effective_self_preference,
    nearest_share,
)

__all__ = [
    "SendFloor",
    "SendRounded",
    "nearest_share",
    "effective_self_preference",
    "RotorRouter",
    "interleaved_port_order",
    "RotorRouterStar",
    "ContinuousDiffusion",
    "ContinuousResult",
    "continuous_discrepancy",
    "ArbitraryRoundingDiffusion",
    "RoundingPolicy",
    "FixedPriorityPolicy",
    "RandomPolicy",
    "RandomizedExtraTokens",
    "RandomizedEdgeRounding",
    "ContinuousMimicking",
    "REGISTRY",
    "BALANCERS",
    "PAPER_ALGORITHMS",
    "BASELINE_ALGORITHMS",
    "make",
    "all_names",
    "register_balancer",
]
