"""Deterministic continuous-mimicking algorithm ([4], Table 1 row 4).

Akbari, Berenbrink, Sauerwald (PODC 2012): for every original edge ``e``
keep the *discrete* cumulative flow ``F_t(e)`` as close as possible to
the *continuous* cumulative flow ``C_t(e) = Σ_{τ<=t} y_τ(u)/d+`` (where
``y`` is the continuous trajectory started from the same initial
vector).  Concretely, round ``t`` sends

    ``f_t(e) = [C_t(e)] - F_{t-1}(e)``

tokens over ``e``, where ``[·]`` rounds to the nearest integer.  Since
``C`` is nondecreasing this is always nonnegative, and by construction
``|F_t(e) - C_t(e)| <= 1/2`` for every edge and time — the
bounded-error property that yields Θ(d) discrepancy after ``T`` rounds.

Costs that Table 1 records as ✗: the algorithm must simulate the global
continuous process (extra communication / knowledge, NC = ✗) and its
demanded flow can exceed the node's actual load, producing negative
load (NL = ✗).  It is deterministic but stateful.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer


class ContinuousMimicking(Balancer):
    """Track the continuous cumulative flow within 1/2 on every edge."""

    name = "continuous_mimicking"
    properties = AlgorithmProperties(
        deterministic=True,
        stateless=False,
        negative_load_safe=False,
        communication_free=False,
    )
    allows_negative = True

    def __init__(self) -> None:
        super().__init__()
        self._continuous: np.ndarray | None = None
        self._cumulative_target: np.ndarray | None = None
        self._cumulative_sent: np.ndarray | None = None

    def reset(self) -> None:
        self._continuous = None
        self._cumulative_target = None
        self._cumulative_sent = None

    def _initialize(self, loads: np.ndarray) -> None:
        graph = self.graph
        self._matrix = graph.transition_matrix()
        self._continuous = loads.astype(np.float64)
        self._cumulative_target = np.zeros(
            (graph.num_nodes, graph.degree), dtype=np.float64
        )
        self._cumulative_sent = np.zeros(
            (graph.num_nodes, graph.degree), dtype=np.int64
        )

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        if self._continuous is None:
            self._initialize(loads)
        d_plus = graph.total_degree
        share = self._continuous / d_plus
        self._cumulative_target += share[:, None]
        rounded = np.floor(self._cumulative_target + 0.5).astype(np.int64)
        flows = rounded - self._cumulative_sent
        self._cumulative_sent = rounded
        self._continuous = self._matrix @ self._continuous
        sends = np.zeros((graph.num_nodes, d_plus), dtype=np.int64)
        sends[:, : graph.degree] = flows
        return sends

    @property
    def tracking_error(self) -> float:
        """``max_e |F_t(e) - C_t(e)|`` — must stay at most 1/2."""
        if self._cumulative_target is None:
            return 0.0
        return float(
            np.abs(
                self._cumulative_sent - self._cumulative_target
            ).max()
        )
