"""Randomized rounding of edge flows ([18], Table 1 row 3).

Sauerwald & Sun (FOCS 2012): the continuous flow over each original
edge is ``x(u)/d+``; the discrete algorithm rounds it to a neighboring
integer *independently at random per edge*, sending
``⌊x/d+⌋ + Bernoulli(frac)`` tokens where ``frac = (x mod d+)/d+``.

This achieves ``O(√(d log n))`` discrepancy after ``O(T)`` — the best
bound in the diffusive model before reaching determinism — but the
demanded total can exceed the node's load, creating **negative load**
(Table 1's NL column is ✗).  The implementation therefore declares
``allows_negative`` and sends nothing from nodes that are currently
negative (they must recover before participating again).
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer


class RandomizedEdgeRounding(Balancer):
    """Independent per-edge randomized rounding of the continuous flow."""

    properties = AlgorithmProperties(
        deterministic=False,
        stateless=True,
        negative_load_safe=False,
        communication_free=True,
    )
    allows_negative = True

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.seed = seed
        self.name = "randomized_edge_rounding"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        graph = self.graph
        degree = graph.degree
        d_plus = graph.total_degree
        positive = np.maximum(loads, 0)
        quotient, remainder = np.divmod(positive, d_plus)
        fraction = remainder / d_plus
        sends = np.zeros((graph.num_nodes, d_plus), dtype=np.int64)
        coins = self._rng.random((graph.num_nodes, degree))
        sends[:, :degree] = quotient[:, None] + (
            coins < fraction[:, None]
        )
        # Self-loops are irrelevant to this scheme: whatever was not
        # shipped over original edges stays as the node's remainder
        # (possibly negative after the overdraw).
        return sends
