"""SEND([x/d+]): round the fair share to the nearest integer.

A node with load ``x`` sends ``[x/d+]`` tokens over every original edge,
where ``[·]`` rounds to the nearest integer (ties upward); the remaining
tokens go over self-loops, each receiving ``⌊x/d+⌋`` or ``⌈x/d+⌉``.

Classification (Observations 2.2 / 3.2):

* cumulatively 0-fair for ``d+ >= 2d`` (all original edges always carry
  identical cumulative flow);
* a good s-balancer for ``d+ > 2d``.  The paper states
  ``s = d+ - 2d``; counting the tokens actually available for self-loops
  in a round with excess ``e >= ⌈d+/2⌉`` shows the guaranteed number of
  ceiling self-loops is ``e - d >= ⌈(d° - d)/2⌉``, so we expose the
  provable value :func:`effective_self_preference` — still ``Ω(d)`` for
  ``d+ >= 3d``, which is what Theorem 3.3's fast regime needs.  (See
  DESIGN.md, "Fidelity notes".)
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.balancer import AlgorithmProperties, Balancer
from repro.core.errors import BindingError
from repro.core.structured import StructuredRound
from repro.graphs.balancing import BalancingGraph


def nearest_share(loads: np.ndarray, d_plus: int) -> np.ndarray:
    """``[x/d+]`` with ties rounded up, computed in exact integers."""
    return (2 * loads + d_plus) // (2 * d_plus)


def effective_self_preference(degree: int, d_plus: int) -> int:
    """Largest ``s`` for which SEND([x/d+]) is provably s-self-preferring.

    ``min(d+ - 2d, ⌈(d° - d)/2⌉)``; zero when ``d+ <= 2d``.
    """
    if d_plus <= 2 * degree:
        return 0
    d_self = d_plus - degree
    return min(d_plus - 2 * degree, math.ceil((d_self - degree) / 2))


class SendRounded(Balancer):
    """SEND([x/d+]) (see module docstring). Requires ``d+ >= 2d``."""

    name = "send_rounded"
    properties = AlgorithmProperties(
        deterministic=True,
        stateless=True,
        negative_load_safe=True,
        communication_free=True,
    )

    def _validate_graph(self, graph: BalancingGraph) -> None:
        if graph.total_degree < 2 * graph.degree:
            raise BindingError(
                "SEND([x/d+]) requires d+ >= 2d so the rounded share can "
                f"always be paid: d={graph.degree}, d+={graph.total_degree}"
            )

    supports_batched_sends = True
    supports_structured_sends = True
    _batch_scratch: np.ndarray | None = None

    def reset(self) -> None:
        self._batch_scratch = None

    def _fill_sends(self, loads: np.ndarray, out: np.ndarray) -> np.ndarray:
        # Shape-polymorphic rule: works for one (n,) vector and for a
        # (replicas, n) stack alike, filling out with (..., n, d+).
        graph = self.graph
        degree = graph.degree
        d_plus = graph.total_degree
        share = nearest_share(loads, d_plus)
        out[..., :degree] = share[..., None]
        quotient = loads // d_plus
        # Self-loops each receive the floor share, plus one extra token on
        # the first `num_ceil` loops, consuming exactly the leftover.
        remaining = loads - degree * share
        num_loops = d_plus - degree
        out[..., degree:] = quotient[..., None]
        num_ceil = remaining - num_loops * quotient
        loop_index = np.arange(num_loops)
        out[..., degree:] += loop_index < num_ceil[..., None]
        return out

    def sends(self, loads: np.ndarray, t: int) -> np.ndarray:
        shape = loads.shape + (self.graph.total_degree,)
        return self._fill_sends(loads, np.empty(shape, dtype=np.int64))

    def sends_batch(self, loads: np.ndarray, t: int) -> np.ndarray:
        # The batch engine consumes the sends within the round and no
        # monitors can hold a reference, so one scratch buffer is reused
        # across rounds (fresh multi-MB allocations dominate otherwise).
        shape = loads.shape + (self.graph.total_degree,)
        if self._batch_scratch is None or self._batch_scratch.shape != shape:
            self._batch_scratch = np.empty(shape, dtype=np.int64)
        return self._fill_sends(loads, self._batch_scratch)

    def sends_structured(self, loads: np.ndarray, t: int) -> StructuredRound:
        # Compact form of _fill_sends: the rounded share on every
        # original edge, floor share on the loops with the leftover as
        # ceiling tokens on the first loops.  d+ >= 2d (validated at
        # bind) guarantees 0 <= loop_ceil <= d°.  Accepts (n,) vectors
        # and (replicas, n) stacks alike.
        graph = self.graph
        d_plus = graph.total_degree
        share = nearest_share(loads, d_plus)
        quotient = loads // d_plus
        num_loops = d_plus - graph.degree
        num_ceil = (loads - graph.degree * share) - num_loops * quotient
        return StructuredRound(
            edge_share=share,
            loop_base=quotient,
            loop_ceil=num_ceil,
        )

    @property
    def self_preference(self) -> int:
        """The bound-relevant ``s`` on the bound graph."""
        return effective_self_preference(
            self.graph.degree, self.graph.total_degree
        )
