"""Name-based registry of all implemented balancers.

The experiment drivers, CLI, and Table 1 regeneration refer to
algorithms by these names.  Factories take a ``seed`` keyword so that
randomized schemes are reproducible; deterministic schemes ignore it.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.arbitrary_rounding import (
    ArbitraryRoundingDiffusion,
    FixedPriorityPolicy,
    RandomPolicy,
)
from repro.algorithms.mimicking import ContinuousMimicking
from repro.algorithms.randomized_extra import RandomizedExtraTokens
from repro.algorithms.randomized_rounding import RandomizedEdgeRounding
from repro.algorithms.rotor_router import RotorRouter
from repro.algorithms.rotor_router_star import RotorRouterStar
from repro.algorithms.send_floor import SendFloor
from repro.algorithms.send_rounded import SendRounded
from repro.core.balancer import Balancer

BalancerFactory = Callable[..., Balancer]


def _ignore_seed(cls: type) -> BalancerFactory:
    def factory(seed: int = 0) -> Balancer:
        return cls()

    return factory


REGISTRY: dict[str, BalancerFactory] = {
    "send_floor": _ignore_seed(SendFloor),
    "send_rounded": _ignore_seed(SendRounded),
    "rotor_router": _ignore_seed(RotorRouter),
    "rotor_router_star": _ignore_seed(RotorRouterStar),
    "arbitrary_rounding_fixed": lambda seed=0: ArbitraryRoundingDiffusion(
        FixedPriorityPolicy()
    ),
    "arbitrary_rounding_random": lambda seed=0: ArbitraryRoundingDiffusion(
        RandomPolicy(seed)
    ),
    "randomized_extra_tokens": lambda seed=0: RandomizedExtraTokens(seed),
    "randomized_edge_rounding": lambda seed=0: RandomizedEdgeRounding(seed),
    "continuous_mimicking": _ignore_seed(ContinuousMimicking),
}

#: The paper's own algorithms (upper-bound side of Table 1).
PAPER_ALGORITHMS = (
    "send_floor",
    "send_rounded",
    "rotor_router",
    "rotor_router_star",
)

#: Prior-work baselines (the comparison rows of Table 1).
BASELINE_ALGORITHMS = (
    "arbitrary_rounding_fixed",
    "arbitrary_rounding_random",
    "randomized_extra_tokens",
    "randomized_edge_rounding",
    "continuous_mimicking",
)


def make(name: str, seed: int = 0) -> Balancer:
    """Instantiate a registered balancer by name."""
    if name not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown balancer {name!r}; known: {known}")
    return REGISTRY[name](seed=seed)


def all_names() -> list[str]:
    """All registered balancer names, paper algorithms first."""
    return list(PAPER_ALGORITHMS) + list(BASELINE_ALGORITHMS)
