"""Name-based registry of all implemented balancers.

The experiment drivers, CLI, scenario specs, and Table 1 regeneration
refer to algorithms by these names.  Factories take a ``seed`` keyword
so that randomized schemes are reproducible (deterministic schemes
ignore it) plus arbitrary extra keyword parameters forwarded to the
algorithm's constructor, so :class:`~repro.scenarios.AlgorithmSpec`
params work uniformly.

Third-party algorithms plug in without touching this module::

    from repro.algorithms import register_balancer

    @register_balancer("my_scheme")
    def _build(seed: int = 0, **params):
        return MyScheme(**params)
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.arbitrary_rounding import (
    ArbitraryRoundingDiffusion,
    FixedPriorityPolicy,
    RandomPolicy,
)
from repro.algorithms.mimicking import ContinuousMimicking
from repro.algorithms.randomized_extra import RandomizedExtraTokens
from repro.algorithms.randomized_rounding import RandomizedEdgeRounding
from repro.algorithms.rotor_router import RotorRouter
from repro.algorithms.rotor_router_star import RotorRouterStar
from repro.algorithms.send_floor import SendFloor
from repro.algorithms.send_rounded import SendRounded
from repro.core.balancer import Balancer
from repro.registry import Registry

BalancerFactory = Callable[..., Balancer]

#: The one true balancer registry (a Mapping: iterate / ``in`` / index).
BALANCERS: Registry = Registry("balancer")

#: Decorator registering a balancer factory: ``@register_balancer(name)``.
register_balancer = BALANCERS.register

#: Backwards-compatible alias — historically a plain dict.
REGISTRY = BALANCERS


def _ignore_seed(cls: type) -> BalancerFactory:
    """Factory for deterministic schemes: drops ``seed``, forwards params."""

    def factory(seed: int = 0, **params) -> Balancer:
        return cls(**params)

    return factory


for _name, _cls in {
    "send_floor": SendFloor,
    "send_rounded": SendRounded,
    "rotor_router": RotorRouter,
    "rotor_router_star": RotorRouterStar,
    "continuous_mimicking": ContinuousMimicking,
}.items():
    BALANCERS.add(_name, _ignore_seed(_cls))


@register_balancer("arbitrary_rounding_fixed")
def _arbitrary_rounding_fixed(seed: int = 0, **params) -> Balancer:
    return ArbitraryRoundingDiffusion(FixedPriorityPolicy(), **params)


@register_balancer("arbitrary_rounding_random")
def _arbitrary_rounding_random(seed: int = 0, **params) -> Balancer:
    return ArbitraryRoundingDiffusion(RandomPolicy(seed), **params)


@register_balancer("randomized_extra_tokens")
def _randomized_extra_tokens(seed: int = 0, **params) -> Balancer:
    return RandomizedExtraTokens(seed, **params)


@register_balancer("randomized_edge_rounding")
def _randomized_edge_rounding(seed: int = 0, **params) -> Balancer:
    return RandomizedEdgeRounding(seed, **params)


#: The paper's own algorithms (upper-bound side of Table 1).
PAPER_ALGORITHMS = (
    "send_floor",
    "send_rounded",
    "rotor_router",
    "rotor_router_star",
)

#: Prior-work baselines (the comparison rows of Table 1).
BASELINE_ALGORITHMS = (
    "arbitrary_rounding_fixed",
    "arbitrary_rounding_random",
    "randomized_extra_tokens",
    "randomized_edge_rounding",
    "continuous_mimicking",
)


def make(name: str, seed: int = 0, **params) -> Balancer:
    """Instantiate a registered balancer by name.

    ``seed`` plus any extra keyword ``params`` are forwarded to the
    registered factory (deterministic schemes ignore the seed).
    """
    if name not in BALANCERS:
        known = ", ".join(sorted(BALANCERS))
        raise KeyError(f"unknown balancer {name!r}; known: {known}")
    return BALANCERS[name](seed=seed, **params)


def all_names() -> list[str]:
    """All registered balancer names, paper algorithms first."""
    ordered = list(PAPER_ALGORITHMS) + list(BASELINE_ALGORITHMS)
    return ordered + sorted(set(BALANCERS) - set(ordered))
