"""Discrete-vs-continuous deviation — the heart of Theorem 2.3's proof.

The paper bounds the discrepancy of a cumulatively fair balancer by
comparing it with the continuous process started from the same vector:
the deviation ``‖x_t - y_t‖∞`` (discrete minus continuous) is driven by
the corrective/error terms ``ε_t`` with ``‖ε_t‖∞ <= δ·d+ + r``
(equation (5)), accumulated through the mixing behaviour of ``P``.

:func:`deviation_trajectory` runs both processes side by side and
returns the deviation series; :func:`deviation_report` summarizes it
against the paper's error-scale ``δ·d+ + r``.  Experiment E14 uses this
to show the deviation stays *bounded* (it does not grow with t) for
cumulatively fair balancers, while the adversarial round-fair member
drifts to the Ω(d·diam) scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.continuous import ContinuousDiffusion
from repro.core.balancer import Balancer
from repro.core.engine import Simulator
from repro.graphs.balancing import BalancingGraph


@dataclass
class DeviationReport:
    """Summary of a side-by-side discrete/continuous run."""

    algorithm: str
    graph: str
    rounds: int
    max_deviation: float
    final_deviation: float
    error_scale: float
    deviation_history: list[float]

    @property
    def normalized_max(self) -> float:
        """Max deviation in units of the paper's error scale δ·d+ + r."""
        return self.max_deviation / self.error_scale

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "rounds": self.rounds,
            "max_deviation": self.max_deviation,
            "final_deviation": self.final_deviation,
            "error_scale": self.error_scale,
            "normalized_max": self.normalized_max,
        }


def deviation_trajectory(
    graph: BalancingGraph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    rounds: int,
) -> list[float]:
    """``‖x_t - y_t‖∞`` for t = 0..rounds (both started from x₁)."""
    simulator = Simulator(
        graph, balancer, initial_loads, record_history=False
    )
    continuous = ContinuousDiffusion(graph)
    y = initial_loads.astype(np.float64)
    history = [0.0]
    for _ in range(rounds):
        x = simulator.step()
        y = continuous.step(y)
        history.append(float(np.abs(x - y).max()))
    return history


def deviation_report(
    graph: BalancingGraph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    rounds: int,
    delta: int = 1,
) -> DeviationReport:
    """Run both processes and summarize the deviation.

    ``delta`` is the balancer's cumulative-fairness constant; the error
    scale is ``δ·d+ + r`` with the remainder bound ``r = d+`` (the
    worst case Proposition A.2 allows).
    """
    history = deviation_trajectory(graph, balancer, initial_loads, rounds)
    error_scale = float(delta * graph.total_degree + graph.total_degree)
    return DeviationReport(
        algorithm=balancer.name,
        graph=graph.name,
        rounds=rounds,
        max_deviation=max(history),
        final_deviation=history[-1],
        error_scale=error_scale,
        deviation_history=history,
    )


def deviation_is_bounded(
    report: DeviationReport,
    tolerance_factor: float,
) -> bool:
    """True if the deviation never exceeded ``factor`` error scales.

    Theorem 2.3's machinery predicts the deviation of a cumulatively
    fair balancer is ``O((δ·d+ + r) · mixing-factor)``; on expanders
    the mixing factor is a small constant, so a single-digit
    ``tolerance_factor`` is the expected regime.
    """
    return report.max_deviation <= tolerance_factor * report.error_scale
