"""Standardized measurement runs used by every experiment.

The paper's statements have the form "after ``O(T)`` rounds the
discrepancy is at most ...", where ``T`` is the continuous balancing
time.  :func:`measure_after_t` grants each algorithm exactly
``horizon_multiplier · T`` rounds (with ``T`` computed from the
spectral gap) and reports the discrepancy plateau at the end;
:func:`measure_time_to_target` reports how long an algorithm needs to
reach a given discrepancy (Theorem 3.3's second column).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.balancer import Balancer
from repro.core.engine import Simulator
from repro.core.metrics import final_plateau, time_to_discrepancy
from repro.core.monitors import LoadBoundsMonitor, Monitor
from repro.graphs.balancing import BalancingGraph
from repro.graphs.spectral import (
    continuous_balancing_time,
    eigenvalue_gap,
)


@dataclass
class ConvergenceReport:
    """Outcome of one standardized measurement run."""

    algorithm: str
    graph: str
    n: int
    degree: int
    d_plus: int
    gap: float
    horizon: int
    rounds_executed: int
    initial_discrepancy: int
    final_discrepancy: int
    plateau_discrepancy: int
    min_load_ever: int
    time_to_target: int | None = None
    target: int | None = None
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        data = {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "n": self.n,
            "d": self.degree,
            "d_plus": self.d_plus,
            "gap": self.gap,
            "horizon": self.horizon,
            "rounds": self.rounds_executed,
            "K": self.initial_discrepancy,
            "final_discrepancy": self.final_discrepancy,
            "plateau": self.plateau_discrepancy,
            "min_load": self.min_load_ever,
        }
        if self.target is not None:
            data["target"] = self.target
            data["time_to_target"] = self.time_to_target
        data.update(self.extra)
        return data


def horizon_for(
    graph: BalancingGraph,
    initial_loads: np.ndarray,
    multiplier: float = 1.0,
    gap: float | None = None,
) -> int:
    """``multiplier · T`` rounds for this graph and initial vector."""
    if gap is None:
        gap = eigenvalue_gap(graph)
    k = int(initial_loads.max() - initial_loads.min())
    base = continuous_balancing_time(graph.num_nodes, k, gap)
    return max(1, int(round(multiplier * base)))


def measure_after_t(
    graph: BalancingGraph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    *,
    horizon_multiplier: float = 1.0,
    gap: float | None = None,
    max_rounds: int | None = None,
    monitors: tuple[Monitor, ...] = (),
    plateau_window: int = 16,
) -> ConvergenceReport:
    """Run for ``O(T)`` rounds and report the final discrepancy plateau.

    The built-in load-bounds observer rides as a loads-only probe, so
    supported balancers stay on the structured engine; extra legacy
    ``monitors`` (if any) pin the dense engine as they always did.
    """
    if gap is None:
        gap = eigenvalue_gap(graph)
    horizon = horizon_for(graph, initial_loads, horizon_multiplier, gap)
    if max_rounds is not None:
        horizon = min(horizon, max_rounds)
    bounds = LoadBoundsMonitor()
    simulator = Simulator(
        graph,
        balancer,
        initial_loads,
        monitors=monitors,
        probes=(bounds,),
    )
    result = simulator.run(horizon)
    return ConvergenceReport(
        algorithm=balancer.name,
        graph=graph.name,
        n=graph.num_nodes,
        degree=graph.degree,
        d_plus=graph.total_degree,
        gap=gap,
        horizon=horizon,
        rounds_executed=result.rounds_executed,
        initial_discrepancy=result.initial_discrepancy,
        final_discrepancy=result.final_discrepancy,
        plateau_discrepancy=final_plateau(
            result.discrepancy_history, plateau_window
        ),
        min_load_ever=bounds.min_ever,
    )


def measure_time_to_target(
    graph: BalancingGraph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    target: int,
    *,
    max_multiplier: float = 50.0,
    gap: float | None = None,
    max_rounds: int | None = None,
) -> ConvergenceReport:
    """Run until the discrepancy reaches ``target`` (or give up).

    The budget is ``max_multiplier · T`` rounds; Theorem 3.3 predicts
    good s-balancers hit ``target = O(d)`` well inside it.
    """
    if gap is None:
        gap = eigenvalue_gap(graph)
    budget = horizon_for(graph, initial_loads, max_multiplier, gap)
    if max_rounds is not None:
        budget = min(budget, max_rounds)
    bounds = LoadBoundsMonitor()
    simulator = Simulator(
        graph,
        balancer,
        initial_loads,
        probes=(bounds,),
    )
    result = simulator.run_to_discrepancy(target, budget)
    reached = time_to_discrepancy(result.discrepancy_history, target)
    return ConvergenceReport(
        algorithm=balancer.name,
        graph=graph.name,
        n=graph.num_nodes,
        degree=graph.degree,
        d_plus=graph.total_degree,
        gap=gap,
        horizon=budget,
        rounds_executed=result.rounds_executed,
        initial_discrepancy=result.initial_discrepancy,
        final_discrepancy=result.final_discrepancy,
        plateau_discrepancy=result.final_discrepancy,
        min_load_ever=bounds.min_ever,
        time_to_target=reached,
        target=target,
    )


def discrepancy_trajectory(
    graph: BalancingGraph,
    balancer: Balancer,
    initial_loads: np.ndarray,
    rounds: int,
    stride: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """(rounds, discrepancy) series for figure-style plots."""
    simulator = Simulator(graph, balancer, initial_loads)
    simulator.run(rounds)
    history = np.array(simulator.discrepancy_history)
    index = np.arange(history.shape[0])
    return index[::stride], history[::stride]
