"""Parameter sweeps and scaling-law fits.

Shape checks are the core of this reproduction: Theorem 2.3 predicts
how the post-``T`` discrepancy *scales* with ``n``, ``d`` and ``μ``.
:func:`fit_power_law` extracts the log-log slope of a measured series
against a predictor, and :func:`bounded_ratio` checks that measured
values stay within a constant factor of a bound across a sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = a * x^slope`` in log-log space."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return math.exp(self.intercept) * x**self.slope


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Fit a power law through positive data points."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs")
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("power-law fit requires positive data")
    log_x = np.log(xs)
    log_y = np.log(ys)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    total = ((log_y - log_y.mean()) ** 2).sum()
    residual = ((log_y - predicted) ** 2).sum()
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=float(r_squared),
    )


def bounded_ratio(
    measured: Sequence[float],
    predicted: Sequence[float],
) -> float:
    """``max_i measured_i / predicted_i`` — the sweep's worst ratio."""
    worst = 0.0
    for m, p in zip(measured, predicted):
        if p <= 0:
            raise ValueError("predictions must be positive")
        worst = max(worst, m / p)
    return worst


def sweep(
    parameters: Iterable,
    runner: Callable[[object], dict],
) -> list[dict]:
    """Run ``runner`` over a parameter grid, collecting result rows."""
    return [runner(parameter) for parameter in parameters]


def geometric_sizes(
    start: int, stop: int, factor: float = 2.0
) -> list[int]:
    """Geometric grid of integer sizes in ``[start, stop]``."""
    if start < 1 or stop < start or factor <= 1.0:
        raise ValueError("need 1 <= start <= stop and factor > 1")
    sizes = []
    value = float(start)
    while value <= stop + 1e-9:
        size = int(round(value))
        if not sizes or size != sizes[-1]:
            sizes.append(size)
        value *= factor
    return sizes
