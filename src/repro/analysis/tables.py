"""Plain-text table rendering for experiment reports.

Deliberately dependency-free: experiments print paper-style tables to
stdout and EXPERIMENTS.md; no plotting stack is required.
"""

from __future__ import annotations

from typing import Any, Iterable


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Iterable[dict],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dictionaries as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [
        [_format_cell(row.get(column)) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in cells))
        for i, column in enumerate(columns)
    ]
    parts = []
    if title:
        parts.append(title)
    header = " | ".join(
        column.ljust(width) for column, width in zip(columns, widths)
    )
    rule = "-+-".join("-" * width for width in widths)
    parts.append(header)
    parts.append(rule)
    for line in cells:
        parts.append(
            " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(parts)


def render_markdown_table(
    rows: Iterable[dict],
    columns: list[str] | None = None,
) -> str:
    """Render dictionaries as a GitHub-flavored markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_format_cell(row.get(column)) for column in columns)
            + " |"
        )
    return "\n".join(lines)


def ratio_column(
    rows: list[dict],
    measured_key: str,
    predicted_key: str,
    out_key: str = "ratio",
) -> list[dict]:
    """Add measured/predicted ratio to each row (None-safe)."""
    for row in rows:
        measured = row.get(measured_key)
        predicted = row.get(predicted_key)
        if measured is None or not predicted:
            row[out_key] = None
        else:
            row[out_key] = measured / predicted
    return rows
