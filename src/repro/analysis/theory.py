"""Every bound of Table 1 and the theorems, as callable formulas.

These are *asymptotic shapes* — all constants are 1 unless the paper
gives an explicit one.  Experiments divide measured quantities by these
predictions; a reproduction succeeds when the ratio stays bounded (and
ordering/crossovers match), not when absolute values coincide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log(n: float) -> float:
    """Natural log, floored at 1 to keep ratios meaningful for tiny n."""
    return max(math.log(max(n, 2.0)), 1.0)


# ----------------------------------------------------------------------
# Time horizons
# ----------------------------------------------------------------------

def balancing_time(n: int, initial_discrepancy: int, gap: float) -> float:
    """``T = O(log(Kn)/μ)`` — the shared horizon of all upper bounds."""
    k = max(initial_discrepancy, 2)
    return math.log(n * k) / gap


def good_balancer_time(
    n: int,
    initial_discrepancy: int,
    gap: float,
    degree: int,
    s: int,
) -> float:
    """Theorem 3.3's horizon ``O(log K + (d/s)·log²n/μ)``."""
    k = max(initial_discrepancy, 2)
    return math.log(k) + (degree / max(s, 1)) * log(n) ** 2 / gap


# ----------------------------------------------------------------------
# Discrepancy bounds after O(T) — Table 1, column 1
# ----------------------------------------------------------------------

def rabani_bound(n: int, degree: int, gap: float) -> float:
    """[17]: ``O(d log n / μ)`` for any round-fair scheme."""
    return degree * log(n) / gap


def cumulative_fair_bound_i(
    n: int, degree: int, gap: float, delta: int = 1
) -> float:
    """Theorem 2.3(i): ``O((δ+1)·d·√(log n/μ))`` for ``d+ >= 2d``."""
    return (delta + 1) * degree * math.sqrt(log(n) / gap)


def cumulative_fair_bound_ii(n: int, degree: int, delta: int = 1) -> float:
    """Theorem 2.3(ii): ``O((δ+1)·d·√n)`` for ``d+ >= 2d``."""
    return (delta + 1) * degree * math.sqrt(n)


def cumulative_fair_bound_iii(
    n: int, degree: int, gap: float, delta: int = 1
) -> float:
    """Theorem 2.3(iii): ``O((δ+1)·d·log n/μ)`` for any ``d+ >= d+1``."""
    return (delta + 1) * degree * log(n) / gap


def cumulative_fair_bound(
    n: int,
    degree: int,
    gap: float,
    delta: int = 1,
    d_plus: int | None = None,
) -> float:
    """The combined Theorem 2.3 bound: min of the applicable claims."""
    claims = [cumulative_fair_bound_iii(n, degree, gap, delta)]
    if d_plus is None or d_plus >= 2 * degree:
        claims.append(cumulative_fair_bound_i(n, degree, gap, delta))
        claims.append(cumulative_fair_bound_ii(n, degree, delta))
    return min(claims)


def good_balancer_bound(
    d_plus: int, num_self_loops: int, delta: int = 1
) -> float:
    """Theorem 3.3's explicit final discrepancy ``(2δ+1)d+ + 4d°``."""
    return (2 * delta + 1) * d_plus + 4 * num_self_loops


def randomized_extra_bound(n: int, degree: int, gap: float) -> float:
    """[5]/[18] row 2: ``O(min(d², d + √(d log d/μ)) · √log n)``."""
    inner = min(
        degree**2,
        degree + math.sqrt(degree * log(degree + 1) / gap),
    )
    return inner * math.sqrt(log(n))


def randomized_rounding_bound(n: int, degree: int) -> float:
    """[18] row 3: ``O(√(d log n))``."""
    return math.sqrt(degree * log(n))


def mimicking_bound(degree: int) -> float:
    """[4] row 4: ``Θ(d)`` (their theorem gives exactly ``2d``)."""
    return 2.0 * degree


# ----------------------------------------------------------------------
# Lower bounds — Section 4
# ----------------------------------------------------------------------

def round_fair_lower_bound(degree: int, diameter: int) -> float:
    """Theorem 4.1: ``Ω(d · diam)`` without cumulative fairness."""
    return degree * max(diameter - 1, 0)


def stateless_lower_bound(degree: int) -> float:
    """Theorem 4.2: ``Ω(d)`` for any deterministic stateless scheme."""
    return degree / 2 - 1


def rotor_no_selfloop_lower_bound(degree: int, odd_girth: int) -> float:
    """Theorem 4.3: ``Ω(d·φ(G))`` with ``2φ+1`` the odd girth."""
    phi = (odd_girth - 1) // 2
    return degree * phi


# ----------------------------------------------------------------------
# Table 1, assembled
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: algorithm name, predicted bound, flags."""

    algorithm: str
    bound_description: str
    reaches_o_d: bool
    deterministic: bool
    stateless: bool
    negative_load_safe: bool
    communication_free: bool


TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row(
        "arbitrary_rounding_fixed",
        "O(d log n / mu)",
        False, True, True, True, True,
    ),
    Table1Row(
        "arbitrary_rounding_random",
        "O(d log n / mu)",
        False, False, True, True, True,
    ),
    Table1Row(
        "randomized_extra_tokens",
        "O(min(d^2, d+sqrt(d log d/mu)) sqrt(log n))",
        False, False, True, True, True,
    ),
    Table1Row(
        "randomized_edge_rounding",
        "O(sqrt(d log n))",
        False, False, True, False, True,
    ),
    Table1Row(
        "continuous_mimicking",
        "Theta(d)",
        True, True, False, False, False,
    ),
    Table1Row(
        "rotor_router",
        "O(d min(sqrt(log n/mu), sqrt(n)))",
        False, True, False, True, True,
    ),
    Table1Row(
        "send_floor",
        "O(d min(sqrt(log n/mu), sqrt(n)))",
        False, True, True, True, True,
    ),
    Table1Row(
        "send_rounded",
        "O(d min(sqrt(log n/mu), sqrt(n)))",
        True, True, True, True, True,
    ),
    Table1Row(
        "rotor_router_star",
        "O(d min(sqrt(log n/mu), sqrt(n)))",
        True, True, False, True, True,
    ),
)


def predicted_after_t(
    algorithm: str,
    n: int,
    degree: int,
    gap: float,
    d_plus: int | None = None,
) -> float:
    """Table 1 column 1 for our concrete algorithms."""
    if algorithm in (
        "send_floor",
        "send_rounded",
        "rotor_router",
        "rotor_router_star",
    ):
        return cumulative_fair_bound(n, degree, gap, delta=1, d_plus=d_plus)
    if algorithm.startswith("arbitrary_rounding"):
        return rabani_bound(n, degree, gap)
    if algorithm == "randomized_extra_tokens":
        return randomized_extra_bound(n, degree, gap)
    if algorithm == "randomized_edge_rounding":
        return randomized_rounding_bound(n, degree)
    if algorithm == "continuous_mimicking":
        return mimicking_bound(degree)
    raise KeyError(f"no Table 1 prediction for {algorithm!r}")
