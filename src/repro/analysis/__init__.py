"""Analysis helpers: theory formulas, convergence runs, tables, sweeps."""

from repro.analysis.convergence import (
    ConvergenceReport,
    discrepancy_trajectory,
    horizon_for,
    measure_after_t,
    measure_time_to_target,
)
from repro.analysis.deviation import (
    DeviationReport,
    deviation_is_bounded,
    deviation_report,
    deviation_trajectory,
)
from repro.analysis.export import (
    read_jsonl,
    write_csv,
    write_jsonl,
    write_trajectory_csv,
)
from repro.analysis.sweeps import (
    PowerLawFit,
    bounded_ratio,
    fit_power_law,
    geometric_sizes,
    sweep,
)
from repro.analysis.tables import (
    ratio_column,
    render_markdown_table,
    render_table,
)

__all__ = [
    "ConvergenceReport",
    "measure_after_t",
    "measure_time_to_target",
    "discrepancy_trajectory",
    "horizon_for",
    "PowerLawFit",
    "fit_power_law",
    "bounded_ratio",
    "sweep",
    "geometric_sizes",
    "render_table",
    "render_markdown_table",
    "ratio_column",
    "DeviationReport",
    "deviation_trajectory",
    "deviation_report",
    "deviation_is_bounded",
    "write_csv",
    "write_jsonl",
    "read_jsonl",
    "write_trajectory_csv",
]
