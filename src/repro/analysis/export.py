"""Result export: CSV / JSON-lines dumps for downstream plotting.

The harness is plotting-stack-free by design; these helpers let users
feed experiment rows or trajectories into pandas/matplotlib/R without
this package growing those dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence


def write_csv(
    rows: Iterable[dict],
    path: str | Path,
    columns: list[str] | None = None,
) -> Path:
    """Write result rows as CSV; returns the path written."""
    rows = list(rows)
    path = Path(path)
    if not rows:
        raise ValueError("no rows to write")
    if columns is None:
        columns = list(rows[0].keys())
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=columns, extrasaction="ignore"
        )
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_jsonl(rows: Iterable[dict], path: str | Path) -> Path:
    """Write result rows as JSON lines; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, default=str))
            handle.write("\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Read rows written by :func:`write_jsonl`."""
    path = Path(path)
    rows = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def trajectory_rows(
    series: Sequence[float] | Sequence[int],
    value_name: str = "discrepancy",
    stride: int = 1,
) -> list[dict]:
    """Turn a per-round series into ``{round, value}`` rows."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    return [
        {"round": index, value_name: value}
        for index, value in enumerate(series)
        if index % stride == 0
    ]


def write_trajectory_csv(
    series: Sequence[float] | Sequence[int],
    path: str | Path,
    value_name: str = "discrepancy",
    stride: int = 1,
) -> Path:
    """Dump one trajectory as a two-column CSV."""
    return write_csv(
        trajectory_rows(series, value_name, stride),
        path,
        columns=["round", value_name],
    )


# ----------------------------------------------------------------------
# Columnar Trace / RunRecord export
# ----------------------------------------------------------------------


def write_trace_csv(trace, path: str | Path) -> Path:
    """Dump a :class:`~repro.core.trace.Trace` as a round-indexed CSV.

    Columns sampled on different schedules are outer-joined on the
    round index; holes appear as empty cells.
    """
    rows = trace.to_rows()
    if not rows:
        raise ValueError("trace has no columns to write")
    return write_csv(rows, path, columns=["round", *trace.names()])


def write_trace_json(trace, path: str | Path) -> Path:
    """Dump a :class:`~repro.core.trace.Trace` as one JSON document."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(trace.to_dict(), handle, indent=2, default=str)
        handle.write("\n")
    return path


def record_rows(records) -> list[dict]:
    """Flatten :class:`~repro.core.trace.RunRecord`\\ s into summary rows."""
    return [record.row() for record in records]


def write_records_jsonl(records, path: str | Path) -> Path:
    """Dump full records (summary + trace columns) as JSON lines."""
    return write_jsonl(
        (record.to_dict() for record in records), path
    )


def read_records_jsonl(path: str | Path) -> list:
    """Read :class:`~repro.core.trace.RunRecord`\\ s written by
    :func:`write_records_jsonl` (the same round-trip the result cache
    uses for its shard entries)."""
    from repro.core.trace import RunRecord

    return [RunRecord.from_dict(row) for row in read_jsonl(path)]
