"""Shared base for registry-backed ``(name, params)`` specifications.

:class:`~repro.dynamics.spec.DynamicsSpec`,
:class:`~repro.faults.spec.FaultSpec`, and
:class:`~repro.topology.spec.TopologySpec` are the same machine: a
registered factory by name plus construction parameters, round-tripping
through JSON (scenario files, CLI shorthand) and building fresh
instances per replica.  If the params include a ``seed``, replica ``r``
is built with ``seed + r`` so replicas see independent — and
batch-size-independent — event streams, exactly like seeded load specs.

:class:`RegistrySpec` is that machine written once.  Subclasses declare
three class attributes::

    class FaultSpec(RegistrySpec):
        registry = FAULTS          # Registry to build from
        instance_type = FaultSchedule  # what build() must return
        kind = "fault"             # noun for CLI parse errors

and inherit ``build``/``to_dict``/``from_dict``/``parse`` plus the
params-aware hash.  :func:`coerce_spec` is the shared
``as_injector``/``as_fault_schedule``/``as_topology_schedule`` body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.registry import Registry, freeze_params, parse_spec_shorthand

__all__ = ["RegistrySpec", "coerce_spec"]


@dataclass(frozen=True)
class RegistrySpec:
    """A registered factory by name plus construction parameters.

    Subclasses set :attr:`registry`, :attr:`instance_type`, and
    :attr:`kind` (class attributes, not dataclass fields) and are
    otherwise complete — they are *not* re-decorated with
    ``@dataclass``, so the frozen fields, equality, and the explicit
    ``__hash__`` below are inherited unchanged.
    """

    name: str
    params: dict = field(default_factory=dict)

    #: Registry instances are built from (subclass-provided).
    registry: ClassVar[Registry]
    #: Type ``build`` must return (subclass-provided).
    instance_type: ClassVar[type]
    #: Human noun for parse/build error messages (subclass-provided).
    kind: ClassVar[str] = "spec"

    def __hash__(self) -> int:
        return hash((self.name, freeze_params(self.params)))

    def build(self, replica: int = 0):
        """Build a fresh instance, offsetting ``seed`` by ``replica``."""
        params = dict(self.params)
        if replica and "seed" in params:
            params["seed"] += replica
        obj = self.registry.create(self.name, **params)
        if not isinstance(obj, self.instance_type):
            raise TypeError(
                f"{self.kind} factory {self.name!r} returned "
                f"{type(obj).__name__}, expected "
                f"{self.instance_type.__name__}"
            )
        return obj

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict):
        return cls(data["name"], dict(data.get("params", {})))

    @classmethod
    def parse(cls, text: str):
        """Parse CLI shorthand: ``name`` or ``name:{json params}``."""
        return cls(*parse_spec_shorthand(text, cls.kind))


def coerce_spec(value, spec_type: type[RegistrySpec], replica: int = 0):
    """Coerce ``value`` into a fresh-enough built instance.

    ``None`` passes through (axis inactive); a ``spec_type`` builds a
    fresh instance for ``replica``; a ready ``spec_type.instance_type``
    instance passes through as-is (the caller owns its state).
    """
    if value is None:
        return None
    if isinstance(value, spec_type):
        return value.build(replica)
    if isinstance(value, spec_type.instance_type):
        return value
    raise TypeError(
        f"cannot interpret {value!r} as {spec_type.kind}: expected "
        f"None, a {spec_type.__name__}, or a "
        f"{spec_type.instance_type.__name__} instance"
    )
