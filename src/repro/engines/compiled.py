"""Compiled backend for the structured protocol (rotor fast path).

The rotor-router round is the one structured computation that stays
python-bound at scale: ``StructuredRound.apply`` materializes the
``(n, d)`` window-hit matrix, gathers it through ``reverse_flat``, and
sums — five full passes over ``(n, d)`` plus two temporaries.  This
backend fuses the whole round:

* with **numba** installed, one jit loop over the nodes evaluates the
  outgoing window hits, the reverse-edge share/hit gather and the load
  update in a single pass — no intermediate ``(n, d)`` array at all;
* without numba it falls back to a fused **scipy-CSR** operator
  ``M = R - S`` (``+1`` at each reverse-edge slot, ``-1`` at each own
  port slot, ``2d`` entries per row) so that

      ``new = loads + M @ (quotient[:, None] + hits).ravel()``

  replaces the gather/reshape/sum chain with one compiled matvec over
  preallocated buffers — measured ~2x over the numpy structured round
  at n >= 4096.

The import guard is graceful: the backend always registers and always
runs (``kernel`` reports which flavor is active).  Set
``REPRO_DISABLE_NUMBA=1`` to force the CSR flavor even where numba is
installed — the CI leg that proves the fallback path uses exactly this.
All arithmetic is ``int64``, so both flavors are bit-identical to the
numpy engines.  Windowless rounds (SEND-style shares, batched stacks)
are already a single numpy gather and are delegated unchanged.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from repro.engines.base import STRUCTURED, EngineBackend, register_engine

try:
    if os.environ.get("REPRO_DISABLE_NUMBA"):
        raise ImportError("numba disabled via REPRO_DISABLE_NUMBA")
    from numba import njit
except ImportError:  # pragma: no cover - exercised via subprocess test
    njit = None

KERNEL = "numba" if njit is not None else "csr"


if njit is not None:  # pragma: no cover - numba absent in CI base image

    @njit(nogil=True)
    def _rotor_round_numba(
        loads, share, extra, rotors, positions, adjacency, reverse_port,
        d_plus, out,
    ):
        n, degree = adjacency.shape
        for u in range(n):
            acc = loads[u] - degree * share[u]
            rotor_u = rotors[u]
            extra_u = extra[u]
            for j in range(degree):
                offset = positions[u, j] - rotor_u
                if offset < 0:
                    offset += d_plus
                if offset < extra_u:
                    acc -= 1
                v = adjacency[u, j]
                port = reverse_port[u, j]
                offset = positions[v, port] - rotors[v]
                if offset < 0:
                    offset += d_plus
                acc += share[v]
                if offset < extra[v]:
                    acc += 1
            out[u] = acc


class _RotorOperator:
    """Fused CSR round operator plus preallocated round buffers."""

    __slots__ = ("matrix", "offsets", "hits", "values")

    def __init__(self, graph) -> None:
        n = graph.num_nodes
        degree = graph.degree
        # Row u: +1 at the flat (n, d) slots of its reverse edges
        # (incoming), -1 at its own d slots (outgoing) — applying it to
        # the per-port value matrix (quotient + window hit) yields the
        # net load delta of the round in one matvec.
        cols = np.empty((n, 2 * degree), dtype=np.int64)
        cols[:, :degree] = graph.adjacency * degree + graph.reverse_port
        cols[:, degree:] = np.arange(
            n * degree, dtype=np.int64
        ).reshape(n, degree)
        data = np.empty((n, 2 * degree), dtype=np.int64)
        data[:, :degree] = 1
        data[:, degree:] = -1
        indptr = np.arange(
            0, 2 * n * degree + 1, 2 * degree, dtype=np.int64
        )
        self.matrix = sp.csr_matrix(
            (data.ravel(), cols.ravel(), indptr), shape=(n, n * degree)
        )
        self.offsets = np.empty((n, degree), dtype=np.int64)
        self.hits = np.empty((n, degree), dtype=bool)
        self.values = np.empty((n, degree), dtype=np.int64)

    def repair(self, graph, rows: np.ndarray) -> None:
        # Only the reverse-edge half of each row references the
        # (churnable) adjacency; the own-port half and the all-±1 data
        # are structural constants, so repair is O(|dirty| · d).
        degree = graph.degree
        view = self.matrix.indices.reshape(-1, 2 * degree)
        view[rows, :degree] = (
            graph.adjacency[rows] * degree + graph.reverse_port[rows]
        )


@register_engine
class CompiledEngine(EngineBackend):
    """Fused rotor-window rounds (numba jit, or CSR without numba)."""

    name = "compiled"
    protocol = STRUCTURED
    kernel = KERNEL

    def __init__(self) -> None:
        self._ops: dict[int, _RotorOperator] = {}

    def apply(self, graph, compact, loads: np.ndarray) -> np.ndarray:
        window = compact.window
        if window is None:
            # SEND-style rounds (including batched stacks) are already
            # one numpy gather; nothing to fuse.
            return compact.apply(graph, loads)
        share = compact.edge_share
        if njit is not None:
            out = np.empty_like(loads)
            _rotor_round_numba(
                loads,
                share,
                window.extra,
                window.rotors,
                window.positions,
                graph.adjacency,
                graph.reverse_port,
                graph.total_degree,
                out,
            )
            return out
        ops = self._ops.get(id(graph))
        if ops is None:
            ops = _RotorOperator(graph)
            self._ops[id(graph)] = ops
        degree = graph.degree
        np.subtract(
            window.positions[:, :degree],
            window.rotors[:, None],
            out=ops.offsets,
        )
        np.mod(ops.offsets, graph.total_degree, out=ops.offsets)
        np.less(ops.offsets, window.extra[:, None], out=ops.hits)
        np.add(share[:, None], ops.hits, out=ops.values)
        return loads + (ops.matrix @ ops.values.ravel())

    def refresh_topology(self, graph, dirty=None) -> None:
        ops = self._ops.get(id(graph))
        if ops is None:
            return
        if dirty is None:
            del self._ops[id(graph)]
            return
        rows = np.asarray(dirty, dtype=np.int64)
        if rows.size:
            ops.repair(graph, rows)
