"""CSR SpMM backend for the dense protocol — a round *is* an SpMM.

The incoming gather ``sends[adjacency, reverse_port].sum(axis=1)`` is
exactly a sparse matrix-vector product: build the ``(n, n·d+)``
gather operator ``R`` with one ``+1`` per directed edge at flat column
``adjacency[u, j] · d+ + reverse_port[u, j]`` and

    ``incoming = R @ sends.ravel()``

(batched: one SpMM against the ``(n·d+, batch)`` stack).  This is the
recast DGL's CPU kernels use for message passing (``spmm.cc``); scipy's
CSR matvec then runs the whole gather in compiled C.  Everything stays
``int64`` end to end, so the result is bit-identical to the numpy
gather — integer addition is exact in any order.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.engines.base import DENSE, EngineBackend, register_engine


class _GatherOperator:
    """Per-graph CSR gather operator with in-place churn repair."""

    __slots__ = ("matrix",)

    def __init__(self, graph) -> None:
        n = graph.num_nodes
        degree = graph.degree
        d_plus = graph.total_degree
        # The scalar-degree indptr below relies on the padding
        # invariant: irregular graphs (datacenter fabrics, churned
        # mutable graphs) are padded to a uniform port capacity d_max
        # == graph.degree, with each padding port a self-entry whose
        # reverse_port is its own port — so every adjacency row has
        # exactly ``degree`` columns and the row-constant CSR layout
        # (and ``repair``'s reshape) is exact, not an approximation.
        if graph.adjacency.shape[1] != degree:
            raise ValueError(
                f"adjacency width {graph.adjacency.shape[1]} != "
                f"graph.degree {degree}: the CSR gather operator "
                "requires degree-padded adjacency rows"
            )
        indices = (
            graph.adjacency.astype(np.int64) * d_plus + graph.reverse_port
        ).ravel()
        indptr = np.arange(0, n * degree + 1, degree, dtype=np.int64)
        data = np.ones(n * degree, dtype=np.int64)
        self.matrix = sp.csr_matrix(
            (data, indices, indptr), shape=(n, n * d_plus)
        )

    def repair(self, graph, rows: np.ndarray) -> None:
        # Row u's column indices are exactly its d reverse-edge slots;
        # the CSR structure (one entry per port, all-ones data) never
        # changes under in-place churn, so repairing the index array
        # for the dirty rows is O(|dirty| · d).
        view = self.matrix.indices.reshape(-1, graph.degree)
        view[rows] = (
            graph.adjacency[rows] * graph.total_degree
            + graph.reverse_port[rows]
        )


@register_engine
class SpmmEngine(EngineBackend):
    """Incoming gather as a scipy-CSR sparse matrix product."""

    name = "spmm"
    protocol = DENSE
    kernel = "csr"

    def __init__(self) -> None:
        self._ops: dict[int, _GatherOperator] = {}

    def _operator(self, graph) -> _GatherOperator:
        ops = self._ops.get(id(graph))
        if ops is None:
            ops = _GatherOperator(graph)
            self._ops[id(graph)] = ops
        return ops

    def incoming(self, graph, sends: np.ndarray) -> np.ndarray:
        matrix = self._operator(graph).matrix
        if sends.ndim == 2:
            return matrix @ sends.ravel()
        batch = sends.shape[0]
        return np.ascontiguousarray(
            (matrix @ sends.reshape(batch, -1).T).T
        )

    def refresh_topology(self, graph, dirty=None) -> None:
        ops = self._ops.get(id(graph))
        if ops is None:
            return
        if dirty is None:
            del self._ops[id(graph)]
            return
        rows = np.asarray(dirty, dtype=np.int64)
        if rows.size:
            ops.repair(graph, rows)
