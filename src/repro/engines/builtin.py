"""The two numpy backends the orchestrators originally inlined.

These are verbatim extractions of the round computations that used to
live inside ``Simulator.step`` / ``Simulator._step_structured`` and the
``BatchRunner`` round helpers — same operations, same operation order,
so trajectories are bit-identical to every release before the registry
existed.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import (
    DENSE,
    STRUCTURED,
    EngineBackend,
    register_engine,
)


@register_engine
class DenseEngine(EngineBackend):
    """Numpy gather over the reverse-port map (the universal fallback).

    Single runs use two-array advanced indexing; stacked batches use a
    flat fancy index over the ``(n * d+)``-reshaped sends (cached per
    graph), which beats the equivalent two-array gather round after
    round.
    """

    name = "dense"
    protocol = DENSE
    kernel = "numpy"

    def __init__(self) -> None:
        self._flat: dict[int, np.ndarray] = {}

    def _flat_for(self, graph) -> np.ndarray:
        # Token arriving at u over port j was sent by adjacency[u, j]
        # on port reverse_port[u, j].
        flat = self._flat.get(id(graph))
        if flat is None:
            flat = (
                graph.adjacency * graph.total_degree + graph.reverse_port
            ).ravel()
            self._flat[id(graph)] = flat
        return flat

    def incoming(self, graph, sends: np.ndarray) -> np.ndarray:
        if sends.ndim == 2:
            return sends[graph.adjacency, graph.reverse_port].sum(axis=1)
        batch = sends.shape[0]
        return (
            sends.reshape(batch, -1)[:, self._flat_for(graph)]
            .reshape(batch, graph.num_nodes, graph.degree)
            .sum(axis=2)
        )

    def refresh_topology(self, graph, dirty=None) -> None:
        # The flat index is only cached on the shared static graph of a
        # vectorized batch; churned replicas take the two-array path.
        # Dropping is therefore both correct and effectively free.
        self._flat.pop(id(graph), None)


@register_engine
class StructuredEngine(EngineBackend):
    """Matrix-free numpy execution of compact rounds (the fast path)."""

    name = "structured"
    protocol = STRUCTURED
    kernel = "numpy"

    def apply(self, graph, compact, loads: np.ndarray) -> np.ndarray:
        return compact.apply(graph, loads)
