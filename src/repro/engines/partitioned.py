"""Partitioned multi-core backend — one graph split across processes.

Every other scale lever parallelizes *across* runs (``repro.exec``
shards suites); this backend parallelizes *inside* one run.  The graph
is split into ``workers`` contiguous partitions
(:class:`~repro.graphs.partition.PartitionBook`), each owned by a
persistent single-worker ``ProcessPoolExecutor``, and a round's arrays
travel through POSIX shared memory: the parent copies the compact
round's per-node vectors (edge share, and rotor/extra for windowed
rounds) plus the load vector into named blocks, each worker computes
its partition's slice of the new loads in place, and the parent reads
the result back.  Per-round IPC is therefore one tiny task message per
partition — the bulk data moves through ``/dev/shm`` without pickling.

The structured-sends protocol makes the cross-partition traffic small
and fully described by the halo: a partition needs its neighbors'
edge-share scalars, plus — for rotor rounds — the per-cut-edge window
state (``rotors``/``extra`` of halo nodes and the cyclic positions of
reverse ports, precomputed per partition as ``pos_rev``).  Workers keep
partition-static state (remapped adjacency, halo ids, rotor-position
slices) between rounds; topology churn routes dirty-row refreshes to
the owning partition and repairs both sides' halos (ghost slots are
append-only, see :mod:`repro.graphs.partition`).

Everything is ``int64`` end to end and each worker mirrors
:meth:`~repro.core.structured.StructuredRound.apply` exactly over its
disjoint row range, so the result is **bit-identical** to the serial
structured engine (enforced by the cross-backend property suite and
the partition-boundary tests).

Execution modes (``engine="partitioned:{...}"`` params):

* ``workers`` — number of partitions *and* worker processes (default
  ``min(4, cpu_count)``).
* ``min_nodes`` — graphs smaller than this run the same partitioned
  kernel inline (no processes): below a few thousand nodes the ~ms
  process round-trip dwarfs the sub-ms round itself (default 4096).
* ``inline`` — force inline (``true``) or force worker processes
  (``false``) regardless of size; ``null``/omitted means auto.
"""

from __future__ import annotations

import os
import secrets
import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.engines.base import STRUCTURED, EngineBackend, register_engine
from repro.graphs.partition import PartitionBook


def default_workers() -> int:
    """Default partition count: up to four, bounded by the machine."""
    return max(1, min(4, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# The partition kernel (shared by the inline path and the workers)
# ----------------------------------------------------------------------


def _partition_delta(
    lo,
    hi,
    degree,
    d_plus,
    halo_ids,
    adj_local,
    share,
    rotors,
    extra,
    pos_local,
    pos_rev,
    base,
    out,
):
    """One partition's rows of the round, written into ``out[..., lo:hi]``.

    Mirrors :meth:`StructuredRound.apply` exactly over the owned range:
    ``new = loads - d·share - window_out + share-gather + window_in``.
    ``share`` (and ``rotors``/``extra`` for windowed rounds) are full
    length-``n`` vectors — the partition reads its own slice plus the
    halo slots; ``adj_local`` indexes the concatenated
    ``[own | halo]`` space.  All integer, so the per-row sums match the
    serial engine bit for bit.
    """
    own = share[..., lo:hi]
    if halo_ids.size:
        ext = np.concatenate([own, share[..., halo_ids]], axis=-1)
    else:
        ext = own
    delta = np.take(ext, adj_local, axis=-1).sum(axis=-1)
    delta -= degree * own
    if rotors is not None:
        rot_own = rotors[lo:hi]
        len_own = extra[lo:hi]
        hits = ((pos_local - rot_own[:, None]) % d_plus) < len_own[:, None]
        delta -= hits.sum(axis=1)
        if halo_ids.size:
            rot_ext = np.concatenate([rot_own, rotors[halo_ids]])
            len_ext = np.concatenate([len_own, extra[halo_ids]])
        else:
            rot_ext, len_ext = rot_own, len_own
        in_hits = (
            (pos_rev - rot_ext[adj_local]) % d_plus
        ) < len_ext[adj_local]
        delta += in_hits.sum(axis=1)
    if base is not None:
        delta += base[..., lo:hi]
    out[..., lo:hi] = delta


# ----------------------------------------------------------------------
# Worker side (module level so tasks pickle under any start method)
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}
_WORKER_SHM: dict = {}


def _worker_attach(name):
    shm = _WORKER_SHM.get(name)
    if shm is None:
        # Attaching registers the segment with the resource tracker a
        # second time; under the fork start method the tracker process
        # is shared with the parent and its cache is a set, so the
        # re-registration is a no-op and the parent's unlink stays the
        # single point of cleanup.  (3.11 has no track= parameter to
        # opt out of tracking; unregistering here would instead remove
        # the *parent's* entry from the shared tracker.)
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        _WORKER_SHM[name] = shm
    return shm


def _worker_view(ref):
    name, shape, dtype = ref
    return np.ndarray(
        shape, dtype=np.dtype(dtype), buffer=_worker_attach(name).buf
    )


def _worker_update(state, update):
    """Apply one parent-shipped state delta (init / churn repair)."""
    if "init" in update:
        payload = update["init"]
        state.clear()
        state.update(payload)
        state["pos"] = {}
    elif "adj" in update:
        payload = update["adj"]
        if payload["halo_append"].size:
            state["halo_ids"] = np.concatenate(
                [state["halo_ids"], payload["halo_append"]]
            )
        state["adj_local"][payload["rows"]] = payload["adj_local"]
    elif "pos_init" in update:
        payload = update["pos_init"]
        state["pos"][payload["key"]] = [
            payload["pos_local"],
            payload["pos_rev"],
        ]
    else:
        payload = update["pos"]
        entry = state["pos"][payload["key"]]
        entry[0][payload["rows"]] = payload["pos_local"]
        entry[1][payload["rows"]] = payload["pos_rev"]


def _worker_round(task):
    """Run one partition's share of a round inside the worker."""
    state = _WORKER_STATE.setdefault(task["graph"], {"pos": {}})
    for update in task["updates"]:
        _worker_update(state, update)
    share = _worker_view(task["share"])
    loads = _worker_view(task["loads"])
    if task["window"] is None:
        rotors = extra = pos_local = pos_rev = None
    else:
        rotors = _worker_view(task["rotors"])
        extra = _worker_view(task["extra"])
        pos_local, pos_rev = state["pos"][task["window"]]
    # Reading and writing the shared loads block is race-free: every
    # partition touches only its own [lo, hi) slice of it.
    _partition_delta(
        state["lo"],
        state["hi"],
        state["degree"],
        state["d_plus"],
        state["halo_ids"],
        state["adj_local"],
        share,
        rotors,
        extra,
        pos_local,
        pos_rev,
        loads,
        loads,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Arena:
    """Named shared-memory blocks, one per (kind, shape) in use."""

    def __init__(self) -> None:
        self.prefix = f"repro-pt-{os.getpid()}-{secrets.token_hex(3)}"
        self.blocks: dict = {}
        self.counter = 0

    def _block(self, kind, shape, dtype):
        key = (kind, tuple(shape))
        entry = self.blocks.get(key)
        if entry is None:
            from multiprocessing import shared_memory

            self.counter += 1
            size = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            shm = shared_memory.SharedMemory(
                create=True,
                size=max(size, 1),
                name=f"{self.prefix}-{self.counter}",
            )
            view = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf)
            ref = (shm.name, tuple(shape), dtype.str)
            entry = (shm, view, ref)
            self.blocks[key] = entry
        return entry

    def put(self, kind, array):
        """Copy ``array`` into the ``kind`` block; return its ref."""
        _, view, ref = self._block(kind, array.shape, array.dtype)
        np.copyto(view, array)
        return view, ref

    def close(self) -> None:
        for shm, _, _ in self.blocks.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already torn down
                pass
        self.blocks.clear()


class _Runtime:
    """The per-engine process pools + shared-memory arena."""

    def __init__(self, parts: int) -> None:
        import multiprocessing

        self.arena = _Arena()
        # Fork keeps one shared resource-tracker process, so the
        # workers' shm attachments never race the parent's unlink (a
        # spawned worker's private tracker would tear segments down
        # when that worker exits first).
        context = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        # One single-worker executor per partition: partition state
        # lives in its worker between rounds, so tasks must route to a
        # fixed process — k pools of one beat one pool of k here.
        self.executors = [
            ProcessPoolExecutor(max_workers=1, mp_context=context)
            for _ in range(parts)
        ]
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for executor in self.executors:
            executor.shutdown(wait=False, cancel_futures=True)
        self.arena.close()


class _PosState:
    """Per (graph, positions-array) rotor precomputes, per partition.

    ``pos_local[p]`` are the cyclic positions of partition ``p``'s own
    original-edge ports; ``pos_rev[p][u, j]`` is the cyclic position of
    the *reverse* port of edge ``(u, j)`` at its far endpoint — the
    only thing a worker needs from foreign positions rows, precomputed
    so the full ``(n, d+)`` positions array never ships per round.
    """

    __slots__ = ("key", "pos_local", "pos_rev", "pending")

    def __init__(self, key, graph, book, positions) -> None:
        self.key = key
        self.pending: list = []
        d = graph.degree
        self.pos_local = []
        self.pos_rev = []
        for halo in book.halos:
            lo, hi = halo.lo, halo.hi
            self.pos_local.append(
                np.ascontiguousarray(positions[lo:hi, :d])
            )
            self.pos_rev.append(
                positions[
                    graph.adjacency[lo:hi], graph.reverse_port[lo:hi]
                ]
            )

    def repair(self, graph, book, positions, rows):
        """Recompute mutated rows' positions; yield worker updates.

        ``rows`` is the dirty set *plus its post-churn neighborhood*:
        a clean node's ``pos_rev`` can reference a dirty neighbor's
        positions row, so the refresh closure is ``dirty ∪ N(dirty)``.
        """
        d = graph.degree
        for part, part_rows in book.rows_by_partition(rows):
            local = part_rows - book.halos[part].lo
            pos_local = np.ascontiguousarray(positions[part_rows, :d])
            pos_rev = positions[
                graph.adjacency[part_rows], graph.reverse_port[part_rows]
            ]
            self.pos_local[part][local] = pos_local
            self.pos_rev[part][local] = pos_rev
            yield part, {
                "pos": {
                    "key": self.key,
                    "rows": local,
                    "pos_local": pos_local,
                    "pos_rev": pos_rev,
                }
            }


class _GraphState:
    """Parent-side partition state for one graph identity."""

    __slots__ = ("token", "book", "pos", "pending", "updates", "processes")

    def __init__(self, token, graph, parts, processes) -> None:
        self.token = token
        self.book = PartitionBook(graph, parts)
        self.pos: dict = {}
        self.pending: list = []
        self.processes = processes
        self.updates: list = [[] for _ in range(self.book.parts)]
        if processes:
            for part, halo in enumerate(self.book.halos):
                self.updates[part].append(
                    {
                        "init": {
                            "lo": halo.lo,
                            "hi": halo.hi,
                            "degree": graph.degree,
                            "d_plus": graph.total_degree,
                            "halo_ids": halo.halo_ids.copy(),
                            "adj_local": halo.adj_local.copy(),
                        }
                    }
                )


@register_engine
class PartitionedEngine(EngineBackend):
    """Structured rounds over k graph partitions in worker processes."""

    name = "partitioned"
    protocol = STRUCTURED
    kernel = "shm"

    def __init__(
        self,
        workers: int | None = None,
        min_nodes: int = 4096,
        inline: bool | None = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.min_nodes = int(min_nodes)
        self.inline = inline
        # Graph identity -> _GraphState; same per-runner id-keyed cache
        # discipline as the spmm/compiled operator caches.
        self._states: dict[int, _GraphState] = {}
        self._runtime: _Runtime | None = None

    # -- state ----------------------------------------------------------

    def _use_processes(self, graph) -> bool:
        if self.workers == 1:
            return False
        if self.inline is not None:
            return not self.inline
        return graph.num_nodes >= self.min_nodes

    def _state(self, graph) -> _GraphState:
        token = id(graph)
        state = self._states.get(token)
        if state is None:
            state = _GraphState(
                token,
                graph,
                min(self.workers, graph.num_nodes),
                self._use_processes(graph),
            )
            self._states[token] = state
        return state

    def _runtime_for(self, state: _GraphState) -> _Runtime:
        runtime = self._runtime
        if runtime is None:
            runtime = self._runtime = _Runtime(state.book.parts)
            weakref.finalize(self, runtime.close)
        return runtime

    def partition_stats(self, graph) -> dict:
        """Partition/halo statistics for diagnostics and reports."""
        return self._state(graph).book.describe()

    # -- structured protocol --------------------------------------------

    def apply(self, graph, compact, loads: np.ndarray) -> np.ndarray:
        state = self._state(graph)
        book = state.book
        window = compact.window
        self._repair_pending(state, graph)
        pos = None
        if window is not None:
            pos = self._pos_state(state, graph, window)
        if not state.processes:
            return self._apply_inline(state, graph, compact, loads, pos)
        return self._apply_processes(state, graph, compact, loads, pos)

    def _repair_pending(self, state: _GraphState, graph) -> None:
        """Route queued dirty rows to their owning partitions."""
        if not state.pending:
            return
        rows = np.unique(np.concatenate(state.pending))
        state.pending = []
        for part, part_rows in state.book.rows_by_partition(rows):
            halo = state.book.halos[part]
            local_rows, fresh = halo.repair_rows(
                part_rows, graph.adjacency
            )
            if state.processes:
                state.updates[part].append(
                    {
                        "adj": {
                            "rows": local_rows,
                            "adj_local": halo.adj_local[local_rows].copy(),
                            "halo_append": fresh,
                        }
                    }
                )

    def _pos_state(self, state: _GraphState, graph, window) -> _PosState:
        key = id(window.positions)
        pos = state.pos.get(key)
        if pos is None:
            pos = _PosState(key, graph, state.book, window.positions)
            state.pos[key] = pos
            if state.processes:
                for part in range(state.book.parts):
                    state.updates[part].append(
                        {
                            "pos_init": {
                                "key": key,
                                "pos_local": pos.pos_local[part].copy(),
                                "pos_rev": pos.pos_rev[part].copy(),
                            }
                        }
                    )
        elif pos.pending:
            rows = np.unique(np.concatenate(pos.pending))
            pos.pending = []
            for part, update in pos.repair(
                graph, state.book, window.positions, rows
            ):
                if state.processes:
                    state.updates[part].append(update)
        return pos

    def _apply_inline(self, state, graph, compact, loads, pos):
        share = compact.edge_share
        window = compact.window
        out = np.empty_like(loads)
        for halo in state.book.halos:
            _partition_delta(
                halo.lo,
                halo.hi,
                graph.degree,
                graph.total_degree,
                halo.halo_ids,
                halo.adj_local,
                share,
                window.rotors if window is not None else None,
                window.extra if window is not None else None,
                pos.pos_local[halo.part] if pos is not None else None,
                pos.pos_rev[halo.part] if pos is not None else None,
                loads,
                out,
            )
        return out

    def _apply_processes(self, state, graph, compact, loads, pos):
        runtime = self._runtime_for(state)
        arena = runtime.arena
        _, share_ref = arena.put("share", compact.edge_share)
        loads_view, loads_ref = arena.put("loads", loads)
        rotors_ref = extra_ref = None
        if compact.window is not None:
            _, rotors_ref = arena.put("rotors", compact.window.rotors)
            _, extra_ref = arena.put("extra", compact.window.extra)
        futures = []
        for part in range(state.book.parts):
            task = {
                "graph": state.token,
                "updates": state.updates[part],
                "share": share_ref,
                "loads": loads_ref,
                "rotors": rotors_ref,
                "extra": extra_ref,
                "window": pos.key if pos is not None else None,
            }
            state.updates[part] = []
            futures.append(
                runtime.executors[part].submit(_worker_round, task)
            )
        for future in futures:
            future.result()
        # Private copy: the block is rewritten next round, and callers
        # (fault settlement, probes) own the returned array.
        return np.array(loads_view)

    # -- topology churn -------------------------------------------------

    def refresh_topology(self, graph, dirty=None) -> None:
        state = self._states.get(id(graph))
        if state is None:
            return
        if dirty is None:
            # Unknown mutation: rebuild from scratch on next apply (a
            # fresh init payload replaces the workers' state wholesale).
            del self._states[id(graph)]
            return
        rows = np.asarray(dirty, dtype=np.int64)
        if rows.size == 0:
            return
        # dirty ∪ N(dirty): a clean node's pos_rev references its
        # neighbors' positions rows, so the closure includes the
        # post-churn neighborhood (nodes that lost a dirty neighbor
        # are themselves dirty — both endpoints always are).
        affected = np.unique(
            np.concatenate([rows, graph.adjacency[rows].ravel()])
        )
        state.pending.append(affected)
        for pos in state.pos.values():
            pos.pending.append(affected)
