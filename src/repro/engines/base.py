"""Execution-backend plugin API — how a round's arrays actually move.

The engines (:class:`~repro.core.engine.Simulator`,
:class:`~repro.scenarios.batch.BatchRunner`) own *orchestration*: round
ordering, validation, fault/churn/injection bookkeeping, conservation
checks, probe feeding.  What they delegate to a backend is the pure
array computation of one round:

* **dense protocol** — the balancer produced a full ``(n, d+)`` (or
  ``(batch, n, d+)``) sends matrix; the backend computes the incoming
  gather through the graph's reverse-port map.
* **structured protocol** — the balancer produced a compact
  :class:`~repro.core.structured.StructuredRound`; the backend computes
  the new load vector matrix-free.

Backends register under a name in :data:`ENGINES` (the same
:class:`~repro.registry.Registry` mechanism as balancers, probes,
injectors and topology schedules), so ``engine="spmm"`` in a Scenario,
on the CLI, or in a ``Simulator``/``BatchRunner`` constructor resolves
through one table — and new backends (a partitioned multi-core engine,
a GPU kernel) plug in without touching the orchestrators.

Every backend must be **bit-identical** to the builtin dense engine:
all protocol state is integer, so alternative kernels (CSR SpMM, fused
compiled loops) are exact, not approximate.  The cross-backend property
suite enforces this for every registered name.

A backend instance is private to one ``Simulator``/``BatchRunner`` and
may cache per-graph precomputes (gather indices, sparse operators)
keyed by graph identity; :meth:`EngineBackend.refresh_topology` is
called after every churn event so those caches are repaired or dropped
in step with the balancer's own incremental refresh.
"""

from __future__ import annotations

import numpy as np

from repro.registry import Registry, parse_spec_shorthand

DENSE = "dense"
STRUCTURED = "structured"

ENGINES = Registry("engine")


def register_engine(cls):
    """Class decorator registering an :class:`EngineBackend` by name."""
    ENGINES.add(cls.name, cls)
    return cls


class EngineBackend:
    """One way of executing rounds; see the module docstring.

    Class attributes:
        name: registry name (``engine=`` value selecting this backend).
        protocol: :data:`DENSE` (consumes sends matrices) or
            :data:`STRUCTURED` (consumes compact rounds).  Selection
            constraints follow from the protocol alone: structured
            backends need ``supports_structured_sends`` balancers and
            refuse dense-demanding observers, dense backends work with
            everything.
        kernel: short label of the compute flavor actually in use
            (``"numpy"``, ``"csr"``, ``"numba"``) — surfaced by
            ``--list-engines`` and the E13 per-backend rows.
    """

    name: str = ""
    protocol: str = DENSE
    kernel: str = "numpy"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    # -- dense protocol -------------------------------------------------

    def incoming(self, graph, sends: np.ndarray) -> np.ndarray:
        """Incoming tokens per node from a sends matrix.

        ``sends`` is ``(n, d+)`` for a single run or ``(batch, n, d+)``
        for stacked replicas; the result drops the port axis.
        """
        raise NotImplementedError(
            f"engine {self.name!r} does not implement the dense protocol"
        )

    # -- structured protocol --------------------------------------------

    def apply(self, graph, compact, loads: np.ndarray) -> np.ndarray:
        """New load vector(s) from a compact round description."""
        raise NotImplementedError(
            f"engine {self.name!r} does not implement the structured "
            "protocol"
        )

    # -- topology churn -------------------------------------------------

    def refresh_topology(self, graph, dirty=None) -> None:
        """Repair or drop per-graph caches after in-place churn.

        ``dirty`` is the mutated node set (``None`` means unknown —
        rebuild everything), mirroring
        :meth:`~repro.core.balancer.Balancer.refresh_topology`.
        """


def split_engine_spec(spec: str) -> tuple[str, dict]:
    """Split an engine spec into ``(name, params)``.

    Engine specs use the same shorthand grammar as ``--probe`` /
    ``--inject``: a bare registry name, or ``name:{json params}`` —
    e.g. ``partitioned:{"workers": 4}``.  Validation sites check the
    *name* half against :data:`ENGINES`; params go to the constructor.
    """
    return parse_spec_shorthand(spec, "engine")


def create_engine(spec: str, **overrides) -> EngineBackend:
    """Fresh backend instance for ``spec`` (raises on unknown names).

    Accepts the ``name:{json}`` shorthand; keyword ``overrides`` win
    over params embedded in the spec string.
    """
    name, params = split_engine_spec(spec)
    params.update(overrides)
    return ENGINES.create(name, **params)


def engine_names() -> list[str]:
    """All registered backend names, sorted."""
    return ENGINES.names()
