"""Execution backends as registry plugins.

``repro.engines`` owns *how* a round's arrays move — the orchestrators
(:class:`~repro.core.engine.Simulator`,
:class:`~repro.scenarios.batch.BatchRunner`) delegate the per-round
computation to a registered :class:`EngineBackend` and keep everything
else (validation, conservation, probes, faults, churn).  See
:mod:`repro.engines.base` for the backend contract and the built-in
modules for the four shipped backends:

======================  ==========  ========================================
name                    protocol    kernel
======================  ==========  ========================================
``dense``               dense       numpy gather (universal fallback)
``structured``          structured  numpy matrix-free (auto fast path)
``spmm``                dense       scipy-CSR SpMM gather
``compiled``            structured  fused rotor round (numba, or CSR)
``partitioned``         structured  k partitions x worker processes + shm
======================  ==========  ========================================

``engine="auto"`` is a selection policy, not a backend: it picks
``structured`` when the balancer and the attached observers allow it
and ``dense`` otherwise, exactly as before the registry existed.

Engine specs accept constructor params via the shared shorthand
grammar — ``engine='partitioned:{"workers": 4}'`` anywhere an engine
name is accepted (Scenario JSON, the CLI, runner constructors).
"""

from repro.engines.base import (
    DENSE,
    ENGINES,
    STRUCTURED,
    EngineBackend,
    create_engine,
    engine_names,
    register_engine,
    split_engine_spec,
)
from repro.engines import builtin as _builtin  # noqa: F401 (registers)
from repro.engines import spmm as _spmm  # noqa: F401 (registers)
from repro.engines import compiled as _compiled  # noqa: F401 (registers)
from repro.engines import partitioned as _partitioned  # noqa: F401

__all__ = [
    "DENSE",
    "ENGINES",
    "STRUCTURED",
    "EngineBackend",
    "create_engine",
    "engine_names",
    "register_engine",
    "split_engine_spec",
]
