"""Declarative dynamic-workload specifications.

:class:`DynamicsSpec` is the injector counterpart of
:class:`~repro.scenarios.spec.LoadSpec`: a registered injector by name
plus construction parameters, round-tripping through JSON (scenario
files, ``repro-lb simulate --inject``) and building fresh
:class:`~repro.dynamics.injectors.Injector` instances per replica.  If
the params include a ``seed``, replica ``r`` is built with ``seed + r``
so replicas see independent — and batch-size-independent — event
streams, exactly like seeded load specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dynamics.injectors import INJECTORS, Injector
from repro.registry import freeze_params, parse_spec_shorthand


@dataclass(frozen=True)
class DynamicsSpec:
    """A registered injector by name plus construction parameters."""

    name: str
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.name, freeze_params(self.params)))

    def build(self, replica: int = 0) -> Injector:
        params = dict(self.params)
        if replica and "seed" in params:
            params["seed"] += replica
        injector = INJECTORS.create(self.name, **params)
        if not isinstance(injector, Injector):
            raise TypeError(
                f"injector factory {self.name!r} returned "
                f"{type(injector).__name__}, expected an Injector"
            )
        return injector

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DynamicsSpec":
        return cls(data["name"], dict(data.get("params", {})))

    @classmethod
    def parse(cls, text: str) -> "DynamicsSpec":
        """Parse CLI shorthand: ``name`` or ``name:{json params}``."""
        return cls(*parse_spec_shorthand(text, "injector"))


def as_injector(dynamics, replica: int = 0) -> Injector | None:
    """Coerce ``dynamics`` into a fresh-enough :class:`Injector`.

    ``None`` passes through (static workload); a :class:`DynamicsSpec`
    builds a fresh instance for ``replica``; a ready
    :class:`Injector` instance passes through as-is (the caller owns
    its state).
    """
    if dynamics is None:
        return None
    if isinstance(dynamics, DynamicsSpec):
        return dynamics.build(replica)
    if isinstance(dynamics, Injector):
        return dynamics
    raise TypeError(
        f"cannot interpret {dynamics!r} as dynamics: expected None, a "
        "DynamicsSpec, or an Injector instance"
    )
