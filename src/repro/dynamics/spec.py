"""Declarative dynamic-workload specifications.

:class:`DynamicsSpec` is the injector counterpart of
:class:`~repro.scenarios.spec.LoadSpec`: a registered injector by name
plus construction parameters, round-tripping through JSON (scenario
files, ``repro-lb simulate --inject``) and building fresh
:class:`~repro.dynamics.injectors.Injector` instances per replica.  If
the params include a ``seed``, replica ``r`` is built with ``seed + r``
so replicas see independent — and batch-size-independent — event
streams, exactly like seeded load specs.  The shared machinery lives in
:class:`repro.specs.RegistrySpec`.
"""

from __future__ import annotations

from repro.dynamics.injectors import INJECTORS, Injector
from repro.specs import RegistrySpec, coerce_spec


class DynamicsSpec(RegistrySpec):
    """A registered injector by name plus construction parameters."""

    registry = INJECTORS
    instance_type = Injector
    kind = "injector"


def as_injector(dynamics, replica: int = 0) -> Injector | None:
    """Coerce ``dynamics`` into a fresh-enough :class:`Injector`.

    ``None`` passes through (static workload); a :class:`DynamicsSpec`
    builds a fresh instance for ``replica``; a ready
    :class:`Injector` instance passes through as-is (the caller owns
    its state).
    """
    return coerce_spec(dynamics, DynamicsSpec, replica)
