"""Per-round load-event injectors — the dynamic-workload pipeline.

The paper analyzes discrepancy on a *fixed* load vector; the production
analogue (and the direction of Gilbert–Meir–Paz and the dynamic
averaging line of work) balances while load arrives and departs every
round.  An :class:`Injector` is that adversary/workload: at the
*beginning* of round ``t`` — before the balancer moves any tokens — it
emits an integer delta vector which the engine adds to the current
loads.  The round then proceeds exactly as in the static model:

    ``x_t  →  x_t + delta_t  →  balancing step  →  x_{t+1}``

The adversary-moves-first convention keeps every engine invariant
intact: the balancer's sends are validated against the post-injection
vector, token conservation is checked per balancing step, and the
running total is adjusted by exactly ``delta_t.sum()``.

Injection is a plain vector add, so it composes with *every* execution
path — the dense engine, the matrix-free structured engine, and the
stacked ``(replicas, n)`` batch executor — without disturbing their
fast paths (the differential suites in ``tests/differential`` prove
the three bit-identical under dynamics).

Injectors register by name in :data:`INJECTORS` (``@register_injector``)
so scenario JSON and the CLI can request them declaratively via
:class:`~repro.dynamics.spec.DynamicsSpec`::

    @register_injector("my_trickle")
    class MyTrickle(Injector):
        def delta(self, t, loads):
            ...

Seeded injectors take a ``seed`` parameter which batch replicas offset
(``seed + r``) exactly like load specs, so replica ``r`` reproduces the
same event stream whether it runs alone, looped, or inside a batch.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidInjection
from repro.core.loads import validate_delta
from repro.registry import Registry

__all__ = [
    "INJECTORS",
    "register_injector",
    "Injector",
    "validate_delta",  # engine-side validator; lives in repro.core.loads
    "ConstantRate",
    "BatchArrivals",
    "AdversarialPeak",
    "RandomChurn",
    "Scripted",
]

#: Named injectors available to scenario specs and the CLI.
INJECTORS: Registry = Registry("injector")

#: Decorator registering an injector factory: ``@register_injector(name)``.
register_injector = INJECTORS.register


class Injector:
    """Base class for per-round load-event generators.

    Lifecycle mirrors probes: the engine calls :meth:`start` once with
    the graph and the initial vector (resetting any RNG stream so one
    instance can be reused across runs), then :meth:`delta` once per
    round, *before* the balancing step of that round.

    Contract for :meth:`delta`:

    * returns an integer vector of the loads' shape (tokens arriving
      are positive entries, tokens departing negative);
    * must never drain a node below zero — ``loads + delta >= 0``
      (the engine enforces this and raises
      :class:`~repro.core.errors.InvalidInjection`);
    * given the same construction parameters and the same sequence of
      ``delta`` calls, the emitted stream is identical — determinism is
      what makes the differential harness's bit-identity claims
      meaningful.
    """

    #: Human-readable name used in reports.
    name: str = "injector"

    def start(self, graph, loads: np.ndarray) -> None:
        """Reset per-run state (RNG streams, cursors) for a fresh run."""

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        """The load change applied at the beginning of round ``t``.

        The returned array may be an internal scratch buffer reused by
        the next ``delta`` call (the same contract as
        ``Balancer.sends_batch``) — the engines consume it immediately;
        callers that retain deltas must copy.
        """
        raise NotImplementedError

    def _zero_delta(self, n: int) -> np.ndarray:
        """A zeroed length-``n`` scratch buffer, reused across rounds.

        Injection runs once per round on the hot path; handing numpy a
        fresh O(n) allocation each round causes allocator churn (mmap /
        page-fault storms at large ``n``) that costs far more than the
        arithmetic.  Subclasses build their delta in this buffer
        instead.
        """
        buf = getattr(self, "_delta_buf", None)
        if buf is None or buf.shape[0] != n:
            buf = np.zeros(n, dtype=np.int64)
            self._delta_buf = buf
        else:
            buf.fill(0)
        return buf

    def summary(self) -> dict:
        """End-of-run scalar facts (merged into run summaries)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _scatter(nodes: np.ndarray, n: int) -> np.ndarray:
    """Token placement list -> per-node count vector."""
    return np.bincount(nodes, minlength=n).astype(np.int64)


@register_injector("constant_rate")
class ConstantRate(Injector):
    """``rate`` tokens arrive every round.

    ``placement="random"`` throws them uniformly at seeded-random nodes
    (fresh draw per round); ``"round_robin"`` deals them
    deterministically across nodes, continuing where the previous round
    stopped — the zero-variance arrival stream used by the benchmark
    ladder.
    """

    name = "constant_rate"

    def __init__(
        self, rate: int, placement: str = "random", seed: int = 0
    ) -> None:
        if rate < 0:
            raise InvalidInjection(f"rate must be >= 0, got {rate}")
        if placement not in ("random", "round_robin"):
            raise InvalidInjection(
                f"unknown placement {placement!r}; "
                "known: random, round_robin"
            )
        self.rate = int(rate)
        self.placement = placement
        self.seed = int(seed)
        self._injected = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._cursor = 0
        self._injected = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        if self.placement == "random":
            nodes = self._rng.integers(0, n, size=self.rate)
        else:
            nodes = (self._cursor + np.arange(self.rate)) % n
            self._cursor = (self._cursor + self.rate) % n
        self._injected += self.rate
        out = self._zero_delta(n)
        np.add.at(out, nodes, 1)
        return out

    def summary(self) -> dict:
        return {"tokens_arrived": self._injected}


@register_injector("batch_arrivals")
class BatchArrivals(Injector):
    """Every ``period`` rounds a burst of ``tokens`` lands at once.

    The burst hits one seeded-random node per arrival round (``node=``
    pins it instead) — the bursty traffic shape between the smooth
    ``constant_rate`` trickle and a one-off point mass.
    """

    name = "batch_arrivals"

    def __init__(
        self,
        tokens: int,
        period: int = 10,
        node: int | None = None,
        seed: int = 0,
    ) -> None:
        if tokens < 0:
            raise InvalidInjection(f"tokens must be >= 0, got {tokens}")
        if period < 1:
            raise InvalidInjection(f"period must be >= 1, got {period}")
        self.tokens = int(tokens)
        self.period = int(period)
        self.node = node
        self.seed = int(seed)
        self._injected = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._injected = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        out = self._zero_delta(n)
        if t % self.period == 0:
            target = (
                int(self._rng.integers(0, n))
                if self.node is None
                else self.node % n
            )
            out[target] = self.tokens
            self._injected += self.tokens
        return out

    def summary(self) -> dict:
        return {"tokens_arrived": self._injected}


@register_injector("adversarial_peak")
class AdversarialPeak(Injector):
    """``rate`` tokens pile onto the currently most-loaded node.

    The load-aware adversary: it reinforces whatever imbalance the
    balancer has not yet dissolved (ties break toward the lowest node
    index), the worst case for steady-state discrepancy at a given
    arrival rate.  Fully deterministic.
    """

    name = "adversarial_peak"

    def __init__(self, rate: int, period: int = 1) -> None:
        if rate < 0:
            raise InvalidInjection(f"rate must be >= 0, got {rate}")
        if period < 1:
            raise InvalidInjection(f"period must be >= 1, got {period}")
        self.rate = int(rate)
        self.period = int(period)
        self._injected = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._injected = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        out = self._zero_delta(loads.shape[-1])
        if t % self.period == 0:
            out[int(np.argmax(loads))] = self.rate
            self._injected += self.rate
        return out

    def summary(self) -> dict:
        return {"tokens_arrived": self._injected}


@register_injector("random_churn")
class RandomChurn(Injector):
    """Drain/refill churn: tokens depart and (optionally) re-arrive.

    Each round, ``rate`` departure slots hit seeded-random nodes; a
    node loses one token per slot but never goes below zero (departures
    from empty nodes are lost capacity, not negative load).  With
    ``refill=True`` (default) exactly the departed tokens re-arrive at
    seeded-random nodes the same round, so the total is conserved and
    the system has a genuine steady state; ``refill=False`` is a pure
    drain.
    """

    name = "random_churn"

    def __init__(self, rate: int, refill: bool = True, seed: int = 0) -> None:
        if rate < 0:
            raise InvalidInjection(f"rate must be >= 0, got {rate}")
        self.rate = int(rate)
        self.refill = bool(refill)
        self.seed = int(seed)
        self._drained = 0
        self._refilled = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._drained = 0
        self._refilled = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        requested = _scatter(
            self._rng.integers(0, n, size=self.rate), n
        )
        drained = np.minimum(requested, loads)
        moved = int(drained.sum())
        out = -drained
        if self.refill and moved:
            out += _scatter(
                self._rng.integers(0, n, size=moved), n
            )
            self._refilled += moved
        self._drained += moved
        return out

    def summary(self) -> dict:
        return {
            "tokens_departed": self._drained,
            "tokens_arrived": self._refilled,
        }


@register_injector("scripted")
class Scripted(Injector):
    """An explicit event list: ``[[round, node, amount], ...]``.

    The fully reproducible injector — every event is written down, so
    scripted streams round-trip through scenario JSON and are the
    natural target for hypothesis-generated event streams in the
    differential harness.  Amounts may be negative (departures); the
    engine still enforces that no node is drained below zero.
    """

    name = "scripted"

    def __init__(self, events: list) -> None:
        parsed = []
        for event in events:
            if len(event) != 3:
                raise InvalidInjection(
                    f"scripted events are [round, node, amount] "
                    f"triples, got {event!r}"
                )
            t, node, amount = (int(v) for v in event)
            if t < 1:
                raise InvalidInjection(
                    f"scripted event round must be >= 1, got {t}"
                )
            parsed.append((t, node, amount))
        self.events = parsed
        self._arrived = 0
        self._departed = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._by_round: dict[int, list[tuple[int, int]]] = {}
        for t, node, amount in self.events:
            self._by_round.setdefault(t, []).append((node, amount))
        self._arrived = 0
        self._departed = 0

    def delta(self, t: int, loads: np.ndarray) -> np.ndarray:
        n = loads.shape[-1]
        out = self._zero_delta(n)
        for node, amount in self._by_round.get(t, ()):
            out[node % n] += amount
            if amount >= 0:
                self._arrived += amount
            else:
                self._departed -= amount
        return out

    def summary(self) -> dict:
        return {
            "tokens_arrived": self._arrived,
            "tokens_departed": self._departed,
        }
