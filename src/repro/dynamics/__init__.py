"""Dynamic workloads: per-round load injection and churn.

The static model balances a fixed vector; this package adds the
*dynamic* workload class — an :class:`Injector` emits an integer delta
at the beginning of every round (arrivals positive, departures
negative) and the engines apply it before the balancing step.  See
:mod:`repro.dynamics.injectors` for the round semantics and the
built-in injectors (``constant_rate``, ``batch_arrivals``,
``adversarial_peak``, ``random_churn``, ``scripted``) and
:mod:`repro.dynamics.spec` for the declarative
:class:`DynamicsSpec` used by scenario JSON and the CLI.  The
datacenter arrival processes (``poisson_arrivals``, ``pareto_flows``,
``diurnal``, ``hotspot_shift``, ``correlated_burst``) live in
:mod:`repro.traffic` and register here on import.
"""

from repro.dynamics.injectors import (
    INJECTORS,
    AdversarialPeak,
    BatchArrivals,
    ConstantRate,
    Injector,
    RandomChurn,
    Scripted,
    register_injector,
    validate_delta,
)
from repro.dynamics.spec import DynamicsSpec, as_injector

__all__ = [
    "Injector",
    "INJECTORS",
    "register_injector",
    "validate_delta",
    "ConstantRate",
    "BatchArrivals",
    "AdversarialPeak",
    "RandomChurn",
    "Scripted",
    "DynamicsSpec",
    "as_injector",
]

# Registers the datacenter traffic generators in INJECTORS so any
# importer of repro.dynamics (scenario runner, CLI, exec workers) sees
# them without a separate import.  Plain ``import`` (not ``from``) is
# deliberate: it tolerates partially initialized parents during
# circular startup.
import repro.traffic  # noqa: E402,F401
