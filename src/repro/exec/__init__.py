"""Suite execution subsystem: sharding, parallel fan-out, result cache.

The pieces:

* :mod:`repro.exec.sharding` — deterministic shard plans over a
  :class:`~repro.scenarios.spec.ScenarioSuite` (per scenario, with
  optional replica-axis splitting) and content-addressed shard keys;
* :mod:`repro.exec.cache` — the crash-safe JSONL
  :class:`~repro.exec.cache.ResultCache` under ``.repro-cache/``;
* :mod:`repro.exec.runner` — :class:`SuiteExecutor`: killable
  worker-pool fan-out, cache-hit skip, per-shard failure capture,
  ordered reassembly, crash resume — bit-identical to the serial
  path;
* :mod:`repro.exec.retry` — :class:`RetryPolicy` (transient-vs-
  poisoned failure classification, deterministic exponential
  backoff) plus the :class:`ShardTimeoutError` /
  :class:`WorkerCrashError` failure kinds the fault-tolerant pool
  reports;
* :mod:`repro.exec.context` — the ambient :func:`configure` settings
  that ``ScenarioSuite.run`` (and therefore every suite-based
  experiment driver) resolves its defaults from.

Quick use::

    from repro.exec import run_suite

    report = run_suite(suite, workers=4, cache=".repro-cache")
    print(report.summary_line())   # "12 shards: 5 computed, 7 cached"
    rows = [o.replica_summary(0) for o in report.outcomes]
"""

from repro.exec.cache import CacheEntry, CacheStats, ResultCache, as_cache
from repro.exec.context import ExecConfig, configure, current
from repro.exec.records import RecordedRun
from repro.exec.retry import (
    RETRYABLE_ERROR_TYPES,
    RetryPolicy,
    ShardTimeoutError,
    WorkerCrashError,
    as_retry_policy,
)
from repro.exec.runner import (
    PartialSuiteResult,
    ShardFailure,
    SuiteExecutionError,
    SuiteExecutor,
    SuiteReport,
    run_suite,
)
from repro.exec.sharding import (
    Shard,
    plan_shards,
    shard_key,
    source_fingerprint,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "as_cache",
    "ExecConfig",
    "configure",
    "current",
    "RecordedRun",
    "Shard",
    "plan_shards",
    "shard_key",
    "source_fingerprint",
    "RETRYABLE_ERROR_TYPES",
    "RetryPolicy",
    "ShardTimeoutError",
    "WorkerCrashError",
    "as_retry_policy",
    "PartialSuiteResult",
    "ShardFailure",
    "SuiteExecutionError",
    "SuiteExecutor",
    "SuiteReport",
    "run_suite",
]
