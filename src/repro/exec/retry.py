"""Retry policy + fault classification for shard execution.

A shard can fail for two very different reasons: the *environment*
misbehaved (a worker was OOM-killed, a pipe broke, a timeout fired) or
the *work itself* is broken (an invalid scenario raises ``ValueError``
on every attempt).  :class:`RetryPolicy` separates the two — transient
environment failures are retried with exponential backoff, poisoned
shards fail fast on the first attempt so a bad spec never burns
``max_attempts`` × ``timeout`` of wall clock.

Classification is by exception *type name* rather than type object:
worker failures cross a process boundary as ``(type_name, message,
traceback)`` strings (the original exception object may not even be
picklable), so names are the only representation both the serial and
the pool path share.

Backoff jitter is deterministic — a SHA-256 hash of the shard key and
attempt number, not a clock or a global RNG — so a retried suite run is
as reproducible as everything else in this repository.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


class ShardTimeoutError(RuntimeError):
    """A shard exceeded its per-shard timeout and its worker was killed."""


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result.

    Raised (recorded) when the worker's pipe hits EOF before any
    ``("ok", ...)`` / ``("err", ...)`` message arrived — the process
    was SIGKILL'd, segfaulted, or was torn down by the OOM killer.
    """


#: Exception type *names* treated as transient by default.  Everything
#: else — ``ValueError`` from a bad spec, ``InvalidFault`` from a broken
#: schedule, arbitrary assertion failures — is poisoned: retrying cannot
#: help, so the shard fails on its first attempt.
RETRYABLE_ERROR_TYPES: frozenset[str] = frozenset(
    {
        "ShardTimeoutError",
        "WorkerCrashError",
        "TimeoutError",
        "OSError",
        "IOError",
        "EOFError",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
        "MemoryError",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a shard, and how to space the attempts.

    Attributes:
        max_attempts: total attempts per shard (1 = no retries).
        backoff: base delay in seconds before attempt 2; doubles each
            further attempt (exponential backoff).
        max_backoff: cap on the exponential delay.
        retryable: exception type names eligible for retry; any failure
            whose type is not listed is *poisoned* and fails
            immediately.
    """

    max_attempts: int = 3
    backoff: float = 0.5
    max_backoff: float = 30.0
    retryable: frozenset = field(default=RETRYABLE_ERROR_TYPES)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be nonnegative")
        object.__setattr__(
            self, "retryable", frozenset(self.retryable)
        )

    def is_retryable(self, error_type: str) -> bool:
        """Whether a failure of this exception type name may be retried."""
        return error_type in self.retryable

    def should_retry(self, error_type: str, attempt: int) -> bool:
        """Whether to re-attempt after ``attempt`` (1-based) failed."""
        return attempt < self.max_attempts and self.is_retryable(
            error_type
        )

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait after ``attempt`` (1-based) failed.

        Exponential backoff with deterministic jitter in [1.0, 1.5):
        the jitter decorrelates shards retrying in lockstep (they all
        failed together when a machine hiccuped) without introducing a
        nondeterministic clock or RNG dependence.
        """
        base = min(
            self.backoff * (2.0 ** (attempt - 1)), self.max_backoff
        )
        digest = hashlib.sha256(
            f"{key}:{attempt}".encode()
        ).hexdigest()
        jitter = int(digest[:8], 16) / 2**32 / 2  # [0, 0.5)
        return base * (1.0 + jitter)


def as_retry_policy(value) -> RetryPolicy | None:
    """Coerce a user-facing retry setting into a policy.

    ``None`` → no retries (single attempt), an ``int`` → that many
    total attempts with default backoff, a :class:`RetryPolicy` passes
    through.
    """
    if value is None:
        return None
    if isinstance(value, RetryPolicy):
        return value
    if isinstance(value, bool):  # bool is an int; reject explicitly
        raise TypeError(
            "retry must be a RetryPolicy, an attempt count, or None"
        )
    if isinstance(value, int):
        return RetryPolicy(max_attempts=value)
    raise TypeError(
        "retry must be a RetryPolicy, an attempt count, or None; "
        f"got {value!r}"
    )
