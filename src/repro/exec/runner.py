"""Sharded suite execution: process-pool fan-out, caching, resume.

:class:`SuiteExecutor` turns a :class:`~repro.scenarios.spec.\
ScenarioSuite` into a deterministic shard plan (see
:mod:`repro.exec.sharding`), satisfies shards from the content-
addressed :class:`~repro.exec.cache.ResultCache` where possible,
computes the rest either in-process (``workers=1``) or on a
``ProcessPoolExecutor`` (``workers>1``), and reassembles per-scenario
outcomes in suite order regardless of completion order.

Guarantees:

* **Bit-identical results.**  Workers execute the exact same
  ``Scenario.run`` path as a serial run, with absolute replica indices,
  so the reassembled :class:`~repro.core.trace.RunRecord`\\ s are
  byte-identical (canonical JSON) to the serial path's — property-
  tested in ``tests/exec/``.
* **Per-shard failure capture.**  A failing shard never takes down the
  others: every completed shard is still cached, and the failures are
  raised together afterwards as :class:`SuiteExecutionError`.
* **Crash resume.**  Each shard's records hit the cache the moment the
  shard completes, so re-running an interrupted suite recomputes only
  the missing shards.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.core.trace import RunRecord
from repro.exec.cache import ResultCache, as_cache
from repro.exec.records import RecordedRun
from repro.exec.sharding import Shard, plan_shards, shard_key
from repro.scenarios.spec import (
    GraphSpec,
    Scenario,
    ScenarioResult,
    ScenarioSuite,
)


@dataclass(frozen=True)
class ShardFailure:
    """One shard's captured failure (error + full worker traceback)."""

    shard: Shard
    label: str
    error: str
    traceback: str


class SuiteExecutionError(RuntimeError):
    """One or more shards failed; the rest completed.

    Attributes:
        failures: per-shard failure details.
        report: the partial :class:`SuiteReport` (completed scenarios
            only) — useful for salvage and diagnostics.
    """

    def __init__(
        self,
        failures: list[ShardFailure],
        report: "SuiteReport",
        cache_attached: bool = False,
    ) -> None:
        self.failures = failures
        self.report = report
        hint = (
            "completed shards were cached; re-run to resume"
            if cache_attached
            else "no cache configured, so completed work was "
            "discarded; attach a cache to make reruns resume"
        )
        lines = [
            f"{len(failures)} of {len(report.shards)} shards failed "
            f"({hint}):"
        ]
        lines += [
            f"  [{f.shard.scenario_index}] {f.label}: {f.error}"
            for f in failures
        ]
        super().__init__("\n".join(lines))


@dataclass
class SuiteReport:
    """Everything one suite execution produced.

    Attributes:
        suite: the executed suite.
        outcomes: one :class:`ScenarioResult` per completed scenario,
            in suite order (all of them, unless shards failed).
        shards: the deterministic shard plan.
        computed: shards actually executed this run.
        cached: shards satisfied from the result cache.
        failures: captured shard failures (empty on success).
        workers: the worker count used.
    """

    suite: ScenarioSuite
    outcomes: list[ScenarioResult]
    shards: list[Shard]
    computed: int
    cached: int
    failures: list[ShardFailure] = field(default_factory=list)
    workers: int = 1

    @property
    def records(self) -> list[list[RunRecord]]:
        """Per-scenario record lists, in suite order."""
        return [outcome.records for outcome in self.outcomes]

    def summary_line(self) -> str:
        return (
            f"{len(self.shards)} shards: {self.computed} computed, "
            f"{self.cached} cached (workers={self.workers})"
        )


def _shard_task(payload: dict) -> dict:
    """Worker-side execution of one shard (top level: picklable).

    Scenarios travel as their canonical dictionaries and results come
    back as record dictionaries, so the process boundary only ever
    carries the same JSON-shaped data the cache persists.
    """
    scenario = Scenario.from_dict(payload["scenario"])
    result = scenario.run(
        executor=payload["executor"],
        replica_range=range(
            payload["replica_start"], payload["replica_stop"]
        ),
    )
    return {
        "executor": result.executor,
        "records": [record.to_dict() for record in result.records],
    }


class SuiteExecutor:
    """Sharded (optionally parallel, optionally cached) suite runner.

    Args:
        workers: process fan-out; 1 executes shards in-process.
        cache: a :class:`ResultCache`, a directory path, or None.
        executor: per-replica execution strategy forwarded to
            :meth:`Scenario.run` (``"auto"``/``"loop"``/``"batch"``).
            Part of the cache key — forcing a different strategy never
            reuses entries recorded under another one.
        max_replicas_per_shard: split scenario replica axes into
            chunks of at most this size (None = shard per scenario).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | str | None = None,
        executor: str = "auto",
        max_replicas_per_shard: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("auto", "loop", "batch"):
            raise ValueError(f"unknown executor {executor!r}")
        self.workers = workers
        self.cache = as_cache(cache)
        self.executor = executor
        self.max_replicas_per_shard = max_replicas_per_shard

    # ------------------------------------------------------------------

    def run(self, suite: ScenarioSuite, graph=None) -> SuiteReport:
        """Execute ``suite``; see the module docstring for guarantees.

        ``graph`` is the legacy prebuilt-graph override; it is used by
        in-process execution only (worker processes deterministically
        rebuild from the spec) and must match every scenario's spec,
        exactly as in :meth:`ScenarioSuite.run`.  An override bypasses
        the cache entirely (no reads, no writes): the cache key cannot
        attest a caller-supplied object, and a stored spec-built result
        is not an answer about the override.
        """
        scenarios = list(suite)
        if graph is not None and scenarios:
            first = scenarios[0].graph
            if any(s.graph != first for s in scenarios[1:]):
                raise ValueError(
                    "graph= override is only valid when every scenario "
                    "in the suite shares one graph spec; this suite "
                    "sweeps multiple graphs"
                )
        shards = plan_shards(suite, self.max_replicas_per_shard)
        # The cache key attests the *spec*; with a caller-supplied
        # prebuilt graph in play the cache is bypassed entirely — no
        # reads (a stored spec-built result is not an answer about the
        # override) and no writes (see _compute_serial).
        cache = self.cache if graph is None else None
        payloads = self._payloads(scenarios, shards, cache)
        keys = None
        if cache is not None:
            try:
                keys = [
                    shard_key(
                        scenarios[shard.scenario_index],
                        shard,
                        self.executor,
                    )
                    for shard in shards
                ]
            except TypeError as exc:
                raise ValueError(
                    "suite cannot be cached: scenario params are not "
                    f"plain JSON values ({exc}); run with the cache "
                    "disabled or use JSON-serializable params"
                ) from exc

        parts: dict[int, ScenarioResult] = {}
        failures: list[ShardFailure] = []
        cached = 0
        pending: list[int] = []
        for index, shard in enumerate(shards):
            entry = (
                cache.get(keys[index]) if cache is not None else None
            )
            if entry is None:
                pending.append(index)
                continue
            cached += 1
            scenario = scenarios[shard.scenario_index]
            parts[index] = _result_from_records(
                scenario,
                entry.records,
                entry.meta.get("executor", "cached"),
            )

        if pending:
            if self.workers > 1:
                self._compute_pool(
                    pending, shards, scenarios, payloads, keys, parts,
                    failures,
                )
            else:
                self._compute_serial(
                    pending, shards, scenarios, keys, parts, failures,
                    graph,
                )

        outcomes = self._reassemble(scenarios, shards, parts)
        report = SuiteReport(
            suite=suite,
            outcomes=outcomes,
            shards=shards,
            computed=len(parts) - cached,
            cached=cached,
            failures=failures,
            workers=self.workers,
        )
        if failures:
            raise SuiteExecutionError(
                failures, report, cache_attached=cache is not None
            )
        return report

    # ------------------------------------------------------------------

    def _payloads(
        self,
        scenarios: list[Scenario],
        shards: list[Shard],
        cache: ResultCache | None,
    ) -> list[dict] | None:
        """Serialized shard payloads (None when staying in-process).

        Caching and process fan-out both require canonically
        serializable scenarios; the error points at the offender
        instead of failing deep inside a worker.  ``cache`` is the
        *effective* cache (after any graph-override bypass), so a
        serial override run is not asked to serialize anything.
        """
        if cache is None and self.workers <= 1:
            return None
        dicts: dict[int, dict] = {}
        for index, scenario in enumerate(scenarios):
            try:
                dicts[index] = scenario.to_dict()
            except ValueError as exc:
                raise ValueError(
                    f"scenario {scenario.name or scenario.label()!r} "
                    "cannot be sharded across processes or cached: "
                    f"{exc}"
                ) from exc
        return [
            {
                "scenario": dicts[shard.scenario_index],
                "replica_start": shard.replica_start,
                "replica_stop": shard.replica_stop,
                "executor": self.executor,
            }
            for shard in shards
        ]

    def _store(
        self,
        keys: list[str] | None,
        index: int,
        shard: Shard,
        scenario: Scenario,
        records: list[RunRecord],
        executor_used: str,
    ) -> None:
        if keys is None:
            return
        self.cache.put(
            keys[index],
            records,
            meta={
                "executor": executor_used,
                "scenario": shard.label(scenario),
                "replicas": [shard.replica_start, shard.replica_stop],
            },
        )

    def _compute_serial(
        self, pending, shards, scenarios, keys, parts, failures, graph
    ) -> None:
        # One built graph per GraphSpec across the whole plan, exactly
        # like the legacy serial path (specs are deterministic, graphs
        # immutable).
        graph_cache: dict[GraphSpec, object] = {}
        for index in pending:
            shard = shards[index]
            scenario = scenarios[shard.scenario_index]
            shard_graph = graph
            if shard_graph is None and isinstance(
                scenario.graph, GraphSpec
            ):
                try:
                    shard_graph = graph_cache.get(scenario.graph)
                    if shard_graph is None:
                        shard_graph = scenario.graph.build()
                        graph_cache[scenario.graph] = shard_graph
                except TypeError:  # unhashable custom param value
                    shard_graph = None
            try:
                result = scenario.run(
                    executor=self.executor,
                    graph=shard_graph,
                    replica_range=shard.replica_range,
                )
            except Exception as exc:
                failures.append(
                    ShardFailure(
                        shard=shard,
                        label=shard.label(scenario),
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    )
                )
                continue
            parts[index] = result
            # Records computed on a caller-supplied prebuilt graph are
            # never cached: the key attests only the *spec*, and the
            # cache must not outlive an override that might not match
            # spec.build() — a transient wrong answer must not become a
            # persistent one.  Spec-built graphs (graph_cache) are fine.
            if graph is None:
                self._store(
                    keys, index, shard, scenario, result.records,
                    result.executor,
                )

    def _compute_pool(
        self, pending, shards, scenarios, payloads, keys, parts, failures
    ) -> None:
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_shard_task, payloads[index]): index
                for index in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                shard = shards[index]
                scenario = scenarios[shard.scenario_index]
                exc = future.exception()
                if exc is not None:
                    failures.append(
                        ShardFailure(
                            shard=shard,
                            label=shard.label(scenario),
                            error=f"{type(exc).__name__}: {exc}",
                            traceback="".join(
                                traceback.format_exception(exc)
                            ),
                        )
                    )
                    continue
                outcome = future.result()
                records = [
                    RunRecord.from_dict(data)
                    for data in outcome["records"]
                ]
                parts[index] = _result_from_records(
                    scenario, records, outcome["executor"]
                )
                self._store(
                    keys, index, shard, scenario, records,
                    outcome["executor"],
                )

    @staticmethod
    def _reassemble(
        scenarios: list[Scenario],
        shards: list[Shard],
        parts: dict[int, ScenarioResult],
    ) -> list[ScenarioResult]:
        """Suite-ordered outcomes, merging multi-shard scenarios.

        Shard plans list a scenario's replica ranges in ascending
        order, so concatenating its parts restores replica order.
        Scenarios with any missing (failed) shard are omitted — the
        caller raises with the failure details anyway.
        """
        by_scenario: dict[int, list[int]] = {}
        for index, shard in enumerate(shards):
            by_scenario.setdefault(shard.scenario_index, []).append(index)
        outcomes: list[ScenarioResult] = []
        for scenario_index, scenario in enumerate(scenarios):
            shard_ids = by_scenario.get(scenario_index, [])
            if not shard_ids or any(i not in parts for i in shard_ids):
                continue
            first = parts[shard_ids[0]]
            if len(shard_ids) == 1:
                outcomes.append(first)
                continue
            executors = {parts[i].executor for i in shard_ids}
            outcomes.append(
                ScenarioResult(
                    scenario=scenario,
                    graph=first.graph,
                    executor=(
                        executors.pop()
                        if len(executors) == 1
                        else "mixed"
                    ),
                    results=[
                        result
                        for i in shard_ids
                        for result in parts[i].results
                    ],
                    monitors=[
                        monitors
                        for i in shard_ids
                        for monitors in parts[i].monitors
                    ],
                )
            )
        return outcomes


def _result_from_records(
    scenario: Scenario, records: list[RunRecord], executor_label: str
) -> ScenarioResult:
    return ScenarioResult(
        scenario=scenario,
        graph=None,
        executor=executor_label,
        results=[RecordedRun(record) for record in records],
        monitors=[() for _ in records],
    )


def run_suite(
    suite: ScenarioSuite,
    *,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    executor: str = "auto",
    max_replicas_per_shard: int | None = None,
) -> SuiteReport:
    """One-shot convenience wrapper around :class:`SuiteExecutor`."""
    return SuiteExecutor(
        workers=workers,
        cache=cache,
        executor=executor,
        max_replicas_per_shard=max_replicas_per_shard,
    ).run(suite)
