"""Sharded suite execution: process-pool fan-out, caching, resume.

:class:`SuiteExecutor` turns a :class:`~repro.scenarios.spec.\
ScenarioSuite` into a deterministic shard plan (see
:mod:`repro.exec.sharding`), satisfies shards from the content-
addressed :class:`~repro.exec.cache.ResultCache` where possible,
computes the rest either in-process (``workers=1``, no timeout) or on
a managed worker-process pool, and reassembles per-scenario outcomes
in suite order regardless of completion order.

Guarantees:

* **Bit-identical results.**  Workers execute the exact same
  ``Scenario.run`` path as a serial run, with absolute replica indices,
  so the reassembled :class:`~repro.core.trace.RunRecord`\\ s are
  byte-identical (canonical JSON) to the serial path's — property-
  tested in ``tests/exec/``.
* **Per-shard failure capture.**  A failing shard never takes down the
  others: every completed shard is still cached, and the failures are
  raised together afterwards as :class:`SuiteExecutionError` (or
  reported on the :class:`SuiteReport` under
  ``on_shard_failure="partial"``).
* **Fault-tolerant execution.**  A :class:`~repro.exec.retry.\
RetryPolicy` re-attempts shards whose failures look transient
  (timeouts, worker crashes, I/O errors) with deterministic
  exponential backoff; poisoned shards (bad specs) fail fast.  A
  per-shard ``timeout`` kills hung or wedged workers — the pool is
  a hand-rolled ``multiprocessing`` fan-out precisely because
  ``ProcessPoolExecutor`` cannot cancel a running task: a SIGKILL'd
  or sleeping worker must not wedge the whole suite.
* **Crash resume.**  Each shard's records hit the cache the moment the
  shard completes, so re-running an interrupted suite recomputes only
  the missing shards.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from repro.core.trace import RunRecord
from repro.exec.cache import ResultCache, as_cache
from repro.exec.records import RecordedRun
from repro.exec.retry import (
    RetryPolicy,
    ShardTimeoutError,
    WorkerCrashError,
    as_retry_policy,
)
from repro.exec.sharding import Shard, plan_shards, shard_key
from repro.scenarios.spec import (
    GraphSpec,
    Scenario,
    ScenarioResult,
    ScenarioSuite,
)

ON_SHARD_FAILURE = ("raise", "partial")


@dataclass(frozen=True)
class ShardFailure:
    """One shard's captured failure (error + full worker traceback).

    Attributes:
        shard: the failed work unit.
        label: human-readable scenario + replica-range label.
        error: ``"TypeName: message"`` of the final failure.
        traceback: full traceback text from the failing attempt.
        content_hash: the failed scenario's content hash — pin it in a
            bug report and anyone can rebuild the exact failing spec.
        attempts: how many attempts were made (1 = failed first try).
    """

    shard: Shard
    label: str
    error: str
    traceback: str
    content_hash: str = ""
    attempts: int = 1


class SuiteExecutionError(RuntimeError):
    """One or more shards failed; the rest completed.

    The message carries everything needed to act on the failure
    without re-running the suite: each failed shard's scenario
    content hash and replica range, plus a copy-pasteable
    ``repro-lb scenario ... --resume`` command (completed shards are
    cached, so the resume run recomputes only the holes).

    Attributes:
        failures: per-shard failure details.
        report: the partial :class:`SuiteReport` (completed scenarios
            only) — useful for salvage and diagnostics.
    """

    def __init__(
        self,
        failures: list[ShardFailure],
        report: "SuiteReport",
        cache_attached: bool = False,
        cache_root: str | None = None,
    ) -> None:
        self.failures = failures
        self.report = report
        hint = (
            "completed shards were cached; re-run to resume"
            if cache_attached
            else "no cache configured, so completed work was "
            "discarded; attach a cache to make reruns resume"
        )
        lines = [
            f"{len(failures)} of {len(report.shards)} shards failed "
            f"({hint}):"
        ]
        for f in failures:
            detail = (
                f"replicas {f.shard.replica_start}:"
                f"{f.shard.replica_stop}"
            )
            if f.content_hash:
                detail += f", scenario {f.content_hash[:12]}"
            if f.attempts > 1:
                detail += f", {f.attempts} attempts"
            lines.append(
                f"  [{f.shard.scenario_index}] {f.label} "
                f"({detail}): {f.error}"
            )
        if cache_attached:
            command = "repro-lb scenario <suite.json> --resume"
            if cache_root is not None and cache_root != ".repro-cache":
                command += f" --cache-dir {cache_root}"
            lines.append(f"resume with: {command}")
        super().__init__("\n".join(lines))


@dataclass
class SuiteReport:
    """Everything one suite execution produced.

    Attributes:
        suite: the executed suite.
        outcomes: one :class:`ScenarioResult` per completed scenario,
            in suite order (all of them, unless shards failed).
        shards: the deterministic shard plan.
        computed: shards actually executed this run.
        cached: shards satisfied from the result cache.
        failures: captured shard failures (empty on success).
        workers: the worker count used.
    """

    suite: ScenarioSuite
    outcomes: list[ScenarioResult]
    shards: list[Shard]
    computed: int
    cached: int
    failures: list[ShardFailure] = field(default_factory=list)
    workers: int = 1

    @property
    def records(self) -> list[list[RunRecord]]:
        """Per-scenario record lists, in suite order."""
        return [outcome.records for outcome in self.outcomes]

    def summary_line(self) -> str:
        return (
            f"{len(self.shards)} shards: {self.computed} computed, "
            f"{self.cached} cached (workers={self.workers})"
        )


class PartialSuiteResult(list):
    """Completed scenario outcomes plus the failures that were tolerated.

    Returned by ``ScenarioSuite.run(..., on_shard_failure="partial")``.
    A plain ``list`` subclass, so analysis code that iterates scenario
    outcomes works unchanged — check :attr:`complete` / :attr:`failures`
    to find the holes.  Completed shards were cached (when a cache is
    attached), so a later ``--resume`` run fills only the holes.
    """

    def __init__(
        self, outcomes: list[ScenarioResult], report: SuiteReport
    ) -> None:
        super().__init__(outcomes)
        self.report = report
        self.failures = report.failures

    @property
    def complete(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        line = self.report.summary_line()
        if self.failures:
            line += f", {len(self.failures)} failed"
        return line


def _shard_task(payload: dict) -> dict:
    """Worker-side execution of one shard (top level: picklable).

    Scenarios travel as their canonical dictionaries and results come
    back as record dictionaries, so the process boundary only ever
    carries the same JSON-shaped data the cache persists.
    """
    scenario = Scenario.from_dict(payload["scenario"])
    result = scenario.run(
        executor=payload["executor"],
        replica_range=range(
            payload["replica_start"], payload["replica_stop"]
        ),
    )
    return {
        "executor": result.executor,
        "records": [record.to_dict() for record in result.records],
    }


def _proc_main(conn, payload: dict) -> None:
    """Worker-process entry: run one shard, ship the outcome back.

    The protocol is one message per worker: ``("ok", outcome)`` or
    ``("err", type_name, message, traceback)``.  A worker that dies
    before sending anything (SIGKILL, segfault, OOM kill) leaves the
    pipe at EOF, which the parent reports as
    :class:`~repro.exec.retry.WorkerCrashError`.
    """
    try:
        outcome = _shard_task(payload)
        message = ("ok", outcome)
    except BaseException as exc:
        message = (
            "err",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
        )
    try:
        conn.send(message)
    finally:
        conn.close()


def _mp_context():
    """Fork when the platform offers it, else the platform default.

    Forked workers inherit the parent's loaded modules (no re-import
    cost per shard) and its in-process state — which is also what lets
    the chaos tests monkeypatch fault injection into workers.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class _RunningShard:
    """Parent-side bookkeeping for one in-flight worker process."""

    index: int
    attempt: int
    proc: object
    deadline: float | None


class SuiteExecutor:
    """Sharded (optionally parallel, cached, fault-tolerant) runner.

    Args:
        workers: process fan-out; 1 executes shards in-process
            (unless a ``timeout`` forces the killable worker pool).
        cache: a :class:`ResultCache`, a directory path, or None.
        executor: per-replica execution strategy forwarded to
            :meth:`Scenario.run` (``"auto"``/``"loop"``/``"batch"``).
            Part of the cache key — forcing a different strategy never
            reuses entries recorded under another one.
        max_replicas_per_shard: split scenario replica axes into
            chunks of at most this size (None = shard per scenario).
        retry: a :class:`~repro.exec.retry.RetryPolicy`, an attempt
            count, or None (single attempt).  Transient failures are
            re-attempted with deterministic backoff; poisoned shards
            fail fast.
        timeout: per-shard wall-clock budget in seconds.  A shard
            over budget has its worker killed and is recorded (or
            retried) as :class:`~repro.exec.retry.ShardTimeoutError`.
            Requires process isolation, so ``timeout`` routes even
            ``workers=1`` runs through the worker pool.
        on_shard_failure: ``"raise"`` (default) raises
            :class:`SuiteExecutionError` after all shards settle;
            ``"partial"`` returns the report with
            :attr:`SuiteReport.failures` populated — graceful
            degradation for long sweeps where a lost shard should not
            discard the other results.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | str | None = None,
        executor: str = "auto",
        max_replicas_per_shard: int | None = None,
        retry: RetryPolicy | int | None = None,
        timeout: float | None = None,
        on_shard_failure: str = "raise",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("auto", "loop", "batch"):
            raise ValueError(f"unknown executor {executor!r}")
        if timeout is not None and timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {timeout}"
            )
        if on_shard_failure not in ON_SHARD_FAILURE:
            raise ValueError(
                f"on_shard_failure must be one of {ON_SHARD_FAILURE}, "
                f"got {on_shard_failure!r}"
            )
        self.workers = workers
        self.cache = as_cache(cache)
        self.executor = executor
        self.max_replicas_per_shard = max_replicas_per_shard
        self.retry = as_retry_policy(retry)
        self.timeout = timeout
        self.on_shard_failure = on_shard_failure

    # ------------------------------------------------------------------

    def run(self, suite: ScenarioSuite, graph=None) -> SuiteReport:
        """Execute ``suite``; see the module docstring for guarantees.

        ``graph`` is the legacy prebuilt-graph override; it is used by
        in-process execution only (worker processes deterministically
        rebuild from the spec) and must match every scenario's spec,
        exactly as in :meth:`ScenarioSuite.run`.  An override bypasses
        the cache entirely (no reads, no writes): the cache key cannot
        attest a caller-supplied object, and a stored spec-built result
        is not an answer about the override.
        """
        scenarios = list(suite)
        if graph is not None and scenarios:
            first = scenarios[0].graph
            if any(s.graph != first for s in scenarios[1:]):
                raise ValueError(
                    "graph= override is only valid when every scenario "
                    "in the suite shares one graph spec; this suite "
                    "sweeps multiple graphs"
                )
        shards = plan_shards(suite, self.max_replicas_per_shard)
        # The cache key attests the *spec*; with a caller-supplied
        # prebuilt graph in play the cache is bypassed entirely — no
        # reads (a stored spec-built result is not an answer about the
        # override) and no writes (see _compute_serial).
        cache = self.cache if graph is None else None
        use_pool = self.workers > 1 or self.timeout is not None
        payloads = self._payloads(scenarios, shards, cache, use_pool)
        keys = None
        if cache is not None:
            try:
                keys = [
                    shard_key(
                        scenarios[shard.scenario_index],
                        shard,
                        self.executor,
                    )
                    for shard in shards
                ]
            except TypeError as exc:
                raise ValueError(
                    "suite cannot be cached: scenario params are not "
                    f"plain JSON values ({exc}); run with the cache "
                    "disabled or use JSON-serializable params"
                ) from exc

        parts: dict[int, ScenarioResult] = {}
        failures: list[ShardFailure] = []
        cached = 0
        pending: list[int] = []
        for index, shard in enumerate(shards):
            entry = (
                cache.get(keys[index]) if cache is not None else None
            )
            if entry is None:
                pending.append(index)
                continue
            cached += 1
            scenario = scenarios[shard.scenario_index]
            parts[index] = _result_from_records(
                scenario,
                entry.records,
                entry.meta.get("executor", "cached"),
            )

        if pending:
            if use_pool:
                self._compute_pool(
                    pending, shards, scenarios, payloads, keys, parts,
                    failures,
                )
            else:
                self._compute_serial(
                    pending, shards, scenarios, keys, parts, failures,
                    graph,
                )

        outcomes = self._reassemble(scenarios, shards, parts)
        report = SuiteReport(
            suite=suite,
            outcomes=outcomes,
            shards=shards,
            computed=len(parts) - cached,
            cached=cached,
            failures=failures,
            workers=self.workers,
        )
        if failures and self.on_shard_failure == "raise":
            raise SuiteExecutionError(
                failures,
                report,
                cache_attached=cache is not None,
                cache_root=(
                    str(cache.root) if cache is not None else None
                ),
            )
        return report

    # ------------------------------------------------------------------

    def _payloads(
        self,
        scenarios: list[Scenario],
        shards: list[Shard],
        cache: ResultCache | None,
        use_pool: bool,
    ) -> list[dict] | None:
        """Serialized shard payloads (None when staying in-process).

        Caching and process fan-out both require canonically
        serializable scenarios; the error points at the offender
        instead of failing deep inside a worker.  ``cache`` is the
        *effective* cache (after any graph-override bypass), so a
        serial override run is not asked to serialize anything.
        """
        if cache is None and not use_pool:
            return None
        dicts: dict[int, dict] = {}
        for index, scenario in enumerate(scenarios):
            try:
                dicts[index] = scenario.to_dict()
            except ValueError as exc:
                raise ValueError(
                    f"scenario {scenario.name or scenario.label()!r} "
                    "cannot be sharded across processes or cached: "
                    f"{exc}"
                ) from exc
        return [
            {
                "scenario": dicts[shard.scenario_index],
                "replica_start": shard.replica_start,
                "replica_stop": shard.replica_stop,
                "executor": self.executor,
            }
            for shard in shards
        ]

    def _store(
        self,
        keys: list[str] | None,
        index: int,
        shard: Shard,
        scenario: Scenario,
        records: list[RunRecord],
        executor_used: str,
    ) -> None:
        if keys is None:
            return
        self.cache.put(
            keys[index],
            records,
            meta={
                "executor": executor_used,
                "scenario": shard.label(scenario),
                "replicas": [shard.replica_start, shard.replica_stop],
            },
        )

    def _retry_key(self, keys: list[str] | None, index: int) -> str:
        """Stable per-shard key for deterministic backoff jitter."""
        return keys[index] if keys is not None else f"shard:{index}"

    def _record_failure(
        self,
        failures: list[ShardFailure],
        shards: list[Shard],
        scenarios: list[Scenario],
        index: int,
        attempt: int,
        error_type: str,
        error_message: str,
        error_traceback: str,
    ) -> None:
        shard = shards[index]
        scenario = scenarios[shard.scenario_index]
        failures.append(
            ShardFailure(
                shard=shard,
                label=shard.label(scenario),
                error=f"{error_type}: {error_message}",
                traceback=error_traceback,
                content_hash=scenario.content_hash(),
                attempts=attempt,
            )
        )

    def _compute_serial(
        self, pending, shards, scenarios, keys, parts, failures, graph
    ) -> None:
        # One built graph per GraphSpec across the whole plan, exactly
        # like the legacy serial path (specs are deterministic, graphs
        # immutable).
        graph_cache: dict[GraphSpec, object] = {}
        for index in pending:
            shard = shards[index]
            scenario = scenarios[shard.scenario_index]
            shard_graph = graph
            if shard_graph is None and isinstance(
                scenario.graph, GraphSpec
            ):
                try:
                    shard_graph = graph_cache.get(scenario.graph)
                    if shard_graph is None:
                        shard_graph = scenario.graph.build()
                        graph_cache[scenario.graph] = shard_graph
                except TypeError:  # unhashable custom param value
                    shard_graph = None
            result = None
            attempt = 1
            while True:
                try:
                    result = scenario.run(
                        executor=self.executor,
                        graph=shard_graph,
                        replica_range=shard.replica_range,
                    )
                    break
                except Exception as exc:
                    name = type(exc).__name__
                    if self.retry is not None and (
                        self.retry.should_retry(name, attempt)
                    ):
                        time.sleep(
                            self.retry.delay(
                                self._retry_key(keys, index), attempt
                            )
                        )
                        attempt += 1
                        continue
                    self._record_failure(
                        failures, shards, scenarios, index, attempt,
                        name, str(exc), traceback.format_exc(),
                    )
                    break
            if result is None:
                continue
            parts[index] = result
            # Records computed on a caller-supplied prebuilt graph are
            # never cached: the key attests only the *spec*, and the
            # cache must not outlive an override that might not match
            # spec.build() — a transient wrong answer must not become a
            # persistent one.  Spec-built graphs (graph_cache) are fine.
            if graph is None:
                self._store(
                    keys, index, shard, scenario, result.records,
                    result.executor,
                )

    def _compute_pool(
        self, pending, shards, scenarios, payloads, keys, parts, failures
    ) -> None:
        """Fan shards out over killable worker processes.

        Hand-rolled on ``multiprocessing.Pipe`` + ``connection.wait``
        rather than ``ProcessPoolExecutor`` because the pool must be
        able to *cancel a running shard*: a hung or SIGKILL'd worker is
        detected (deadline expiry / pipe EOF), killed if needed, and
        its shard retried or recorded — the rest of the plan keeps
        flowing on fresh workers either way.
        """
        ctx = _mp_context()
        max_workers = min(self.workers, len(pending))
        queue: list[tuple[int, int]] = [(i, 1) for i in pending]
        queue.reverse()  # pop() serves shards in plan order
        delayed: list[tuple[float, int, int]] = []  # (ready_at, idx, att)
        running: dict[object, _RunningShard] = {}

        def _requeue_or_record(
            index: int, attempt: int, name: str, message: str, tb: str
        ) -> None:
            if self.retry is not None and (
                self.retry.should_retry(name, attempt)
            ):
                ready_at = time.monotonic() + self.retry.delay(
                    self._retry_key(keys, index), attempt
                )
                heapq.heappush(
                    delayed, (ready_at, index, attempt + 1)
                )
                return
            self._record_failure(
                failures, shards, scenarios, index, attempt,
                name, message, tb,
            )

        def _settle(conn, job: _RunningShard, message) -> None:
            job.proc.join()
            conn.close()
            if message is None:
                _requeue_or_record(
                    job.index, job.attempt, WorkerCrashError.__name__,
                    "worker process died before reporting a result "
                    "(killed or crashed)",
                    "WorkerCrashError: worker process died before "
                    "reporting a result\n",
                )
                return
            if message[0] == "err":
                _, name, text, tb = message
                _requeue_or_record(job.index, job.attempt, name, text, tb)
                return
            outcome = message[1]
            index = job.index
            shard = shards[index]
            scenario = scenarios[shard.scenario_index]
            records = [
                RunRecord.from_dict(data)
                for data in outcome["records"]
            ]
            parts[index] = _result_from_records(
                scenario, records, outcome["executor"]
            )
            self._store(
                keys, index, shard, scenario, records,
                outcome["executor"],
            )

        try:
            while queue or delayed or running:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, index, attempt = heapq.heappop(delayed)
                    queue.append((index, attempt))
                while queue and len(running) < max_workers:
                    index, attempt = queue.pop()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_proc_main,
                        args=(child_conn, payloads[index]),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    deadline = (
                        time.monotonic() + self.timeout
                        if self.timeout is not None
                        else None
                    )
                    running[parent_conn] = _RunningShard(
                        index=index, attempt=attempt, proc=proc,
                        deadline=deadline,
                    )
                if not running:
                    # Only backoff-delayed retries remain.
                    if delayed:
                        pause = delayed[0][0] - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue
                waits = [
                    job.deadline
                    for job in running.values()
                    if job.deadline is not None
                ]
                if delayed:
                    waits.append(delayed[0][0])
                wait_timeout = None
                if waits:
                    wait_timeout = max(
                        0.0, min(waits) - time.monotonic()
                    )
                ready = mp_connection.wait(
                    list(running), timeout=wait_timeout
                )
                for conn in ready:
                    job = running.pop(conn)
                    try:
                        message = conn.recv()
                    except EOFError:
                        message = None  # died without reporting
                    _settle(conn, job, message)
                # Deadline sweep: kill anything over budget.  A worker
                # that raced its result in just before the deadline is
                # still collected on the next wait() pass.
                now = time.monotonic()
                for conn in [
                    c
                    for c, job in running.items()
                    if job.deadline is not None and now >= job.deadline
                ]:
                    job = running.pop(conn)
                    job.proc.kill()
                    job.proc.join()
                    conn.close()
                    _requeue_or_record(
                        job.index, job.attempt,
                        ShardTimeoutError.__name__,
                        f"shard exceeded the {self.timeout}s per-shard "
                        "timeout; worker killed",
                        "ShardTimeoutError: shard exceeded the "
                        f"{self.timeout}s per-shard timeout\n",
                    )
        finally:
            # Never leak workers, even if the parent errors mid-plan.
            for conn, job in running.items():
                job.proc.kill()
                job.proc.join()
                conn.close()

    @staticmethod
    def _reassemble(
        scenarios: list[Scenario],
        shards: list[Shard],
        parts: dict[int, ScenarioResult],
    ) -> list[ScenarioResult]:
        """Suite-ordered outcomes, merging multi-shard scenarios.

        Shard plans list a scenario's replica ranges in ascending
        order, so concatenating its parts restores replica order.
        Scenarios with any missing (failed) shard are omitted — the
        caller raises with the failure details anyway.
        """
        by_scenario: dict[int, list[int]] = {}
        for index, shard in enumerate(shards):
            by_scenario.setdefault(shard.scenario_index, []).append(index)
        outcomes: list[ScenarioResult] = []
        for scenario_index, scenario in enumerate(scenarios):
            shard_ids = by_scenario.get(scenario_index, [])
            if not shard_ids or any(i not in parts for i in shard_ids):
                continue
            first = parts[shard_ids[0]]
            if len(shard_ids) == 1:
                outcomes.append(first)
                continue
            executors = {parts[i].executor for i in shard_ids}
            outcomes.append(
                ScenarioResult(
                    scenario=scenario,
                    graph=first.graph,
                    executor=(
                        executors.pop()
                        if len(executors) == 1
                        else "mixed"
                    ),
                    results=[
                        result
                        for i in shard_ids
                        for result in parts[i].results
                    ],
                    monitors=[
                        monitors
                        for i in shard_ids
                        for monitors in parts[i].monitors
                    ],
                )
            )
        return outcomes


def _result_from_records(
    scenario: Scenario, records: list[RunRecord], executor_label: str
) -> ScenarioResult:
    return ScenarioResult(
        scenario=scenario,
        graph=None,
        executor=executor_label,
        results=[RecordedRun(record) for record in records],
        monitors=[() for _ in records],
    )


def run_suite(
    suite: ScenarioSuite,
    *,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    executor: str = "auto",
    max_replicas_per_shard: int | None = None,
    retry: RetryPolicy | int | None = None,
    timeout: float | None = None,
    on_shard_failure: str = "raise",
) -> SuiteReport:
    """One-shot convenience wrapper around :class:`SuiteExecutor`."""
    return SuiteExecutor(
        workers=workers,
        cache=cache,
        executor=executor,
        max_replicas_per_shard=max_replicas_per_shard,
        retry=retry,
        timeout=timeout,
        on_shard_failure=on_shard_failure,
    ).run(suite)
