"""Ambient execution configuration for suite runs.

Experiment drivers call ``ScenarioSuite.run`` deep inside their own
code; threading ``workers=``/``cache=`` parameters through every config
dataclass would couple all of them to the executor.  Instead the
executor settings live in a process-local ambient config:

    with repro.exec.configure(workers=4, cache=".repro-cache"):
        run_table1()          # every suite inside fans out and caches

``ScenarioSuite.run`` resolves its ``workers``/``cache`` defaults from
:func:`current`, so ``repro-lb run --workers 4`` parallelizes every
suite-based driver without any of them knowing.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace

from repro.exec.cache import ResultCache, as_cache


@dataclass(frozen=True)
class ExecConfig:
    """Resolved executor settings.

    Attributes:
        workers: process-pool fan-out (1 = serial, in-process).
        cache: content-addressed result cache, or None (no caching).
        max_replicas_per_shard: split a scenario's replica axis into
            shards of at most this many replicas (None = one shard per
            scenario; replica splitting never changes results, only
            work-unit granularity).
    """

    workers: int = 1
    cache: ResultCache | None = None
    max_replicas_per_shard: int | None = None


_ROOT = ExecConfig()
# A ContextVar (not a module-global stack): concurrent threads / async
# tasks each see their own configuration, an exiting context restores
# exactly the frame it replaced (token-based reset cannot pop someone
# else's), and a configure() in one thread never leaks into another.
_current: ContextVar[ExecConfig] = ContextVar(
    "repro_exec_config", default=_ROOT
)


def current() -> ExecConfig:
    """The innermost active :func:`configure` config (or the default)."""
    return _current.get()


@contextmanager
def configure(
    workers: int | None = None,
    cache=None,
    max_replicas_per_shard: int | None = None,
):
    """Override the ambient executor settings within a ``with`` block.

    ``None`` arguments inherit from the enclosing configuration, so
    nested contexts compose — e.g. an outer ``configure(cache=...)``
    with an inner ``configure(workers=4)`` runs parallel *and* cached.
    ``cache`` accepts a :class:`~repro.exec.cache.ResultCache`, a
    directory path, or ``False`` to explicitly disable an inherited
    cache.  Scoping is per thread / async context.
    """
    base = current()
    overrides: dict = {}
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        overrides["workers"] = workers
    if cache is False:
        overrides["cache"] = None
    elif cache is not None:
        overrides["cache"] = as_cache(cache)
    if max_replicas_per_shard is not None:
        overrides["max_replicas_per_shard"] = max_replicas_per_shard
    config = replace(base, **overrides)
    token = _current.set(config)
    try:
        yield config
    finally:
        _current.reset(token)
