"""Ambient execution configuration for suite runs.

Experiment drivers call ``ScenarioSuite.run`` deep inside their own
code; threading ``workers=``/``cache=`` parameters through every config
dataclass would couple all of them to the executor.  Instead the
executor settings live in a process-local ambient config:

    with repro.exec.configure(workers=4, cache=".repro-cache"):
        run_table1()          # every suite inside fans out and caches

``ScenarioSuite.run`` resolves its ``workers``/``cache`` defaults from
:func:`current`, so ``repro-lb run --workers 4`` parallelizes every
suite-based driver without any of them knowing.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace

from repro.exec.cache import ResultCache, as_cache
from repro.exec.retry import RetryPolicy, as_retry_policy


@dataclass(frozen=True)
class ExecConfig:
    """Resolved executor settings.

    Attributes:
        workers: process-pool fan-out (1 = serial, in-process).
        cache: content-addressed result cache, or None (no caching).
        max_replicas_per_shard: split a scenario's replica axis into
            shards of at most this many replicas (None = one shard per
            scenario; replica splitting never changes results, only
            work-unit granularity).
        retry: shard retry policy, or None (single attempt per shard).
        timeout: per-shard wall-clock budget in seconds, or None
            (unbounded).  A timeout forces the killable worker pool
            even at ``workers=1``.
        on_shard_failure: ``"raise"`` (fail the suite after all shards
            settle) or ``"partial"`` (graceful degradation: return the
            completed outcomes, report the holes).
    """

    workers: int = 1
    cache: ResultCache | None = None
    max_replicas_per_shard: int | None = None
    retry: RetryPolicy | None = None
    timeout: float | None = None
    on_shard_failure: str = "raise"


_ROOT = ExecConfig()
# A ContextVar (not a module-global stack): concurrent threads / async
# tasks each see their own configuration, an exiting context restores
# exactly the frame it replaced (token-based reset cannot pop someone
# else's), and a configure() in one thread never leaks into another.
_current: ContextVar[ExecConfig] = ContextVar(
    "repro_exec_config", default=_ROOT
)


def current() -> ExecConfig:
    """The innermost active :func:`configure` config (or the default)."""
    return _current.get()


@contextmanager
def configure(
    workers: int | None = None,
    cache=None,
    max_replicas_per_shard: int | None = None,
    retry=None,
    timeout: float | None = None,
    on_shard_failure: str | None = None,
):
    """Override the ambient executor settings within a ``with`` block.

    ``None`` arguments inherit from the enclosing configuration, so
    nested contexts compose — e.g. an outer ``configure(cache=...)``
    with an inner ``configure(workers=4)`` runs parallel *and* cached.
    ``cache`` accepts a :class:`~repro.exec.cache.ResultCache`, a
    directory path, or ``False`` to explicitly disable an inherited
    cache.  ``retry`` accepts a
    :class:`~repro.exec.retry.RetryPolicy`, an attempt count, or
    ``False`` to disable inherited retries; ``timeout`` (seconds,
    ``False`` disables) and ``on_shard_failure``
    (``"raise"``/``"partial"``) follow the same inherit-unless-set
    rule.  Scoping is per thread / async context.
    """
    base = current()
    overrides: dict = {}
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        overrides["workers"] = workers
    if cache is False:
        overrides["cache"] = None
    elif cache is not None:
        overrides["cache"] = as_cache(cache)
    if max_replicas_per_shard is not None:
        overrides["max_replicas_per_shard"] = max_replicas_per_shard
    if retry is False:
        overrides["retry"] = None
    elif retry is not None:
        overrides["retry"] = as_retry_policy(retry)
    if timeout is False:
        overrides["timeout"] = None
    elif timeout is not None:
        if timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {timeout}"
            )
        overrides["timeout"] = timeout
    if on_shard_failure is not None:
        if on_shard_failure not in ("raise", "partial"):
            raise ValueError(
                "on_shard_failure must be 'raise' or 'partial', "
                f"got {on_shard_failure!r}"
            )
        overrides["on_shard_failure"] = on_shard_failure
    config = replace(base, **overrides)
    token = _current.set(config)
    try:
        yield config
    finally:
        _current.reset(token)
