"""Deterministic sharding of a ScenarioSuite into independent work units.

A shard is one scenario's contiguous replica range.  Scenarios are
independent by construction, and replicas within a scenario are too
(replica ``r`` always runs with seed offset ``r``, whichever shard
carries it), so shards can execute in any order on any worker and the
reassembled records are bit-identical to a serial run.

The default granularity is one shard per scenario.  Crucially, the
shard plan depends only on the suite (and the optional explicit
``max_replicas_per_shard``), *never* on the worker count — so cache
keys derived from shards stay stable when the same suite is re-run
with a different ``--workers`` value.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.scenarios.spec import Scenario, ScenarioSuite, content_hash


def _package_version() -> str:
    # Read lazily through the package attribute (not a from-import) so
    # the version baked into cache keys always reflects the running
    # package — and so tests can exercise version-bump invalidation.
    import repro

    return repro.__version__


_FINGERPRINT_CACHE: dict[str, str] = {}


def source_fingerprint(root: str | Path | None = None) -> str:
    """SHA-256 over the installed package's python sources.

    Baked into every cache key alongside the version string: a
    development edit to any ``repro`` module (same ``__version__``)
    changes the fingerprint, so stale pre-edit results can never be
    replayed as current ones.  Computed once per process per root
    (~milliseconds) and cached.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    else:
        root = Path(root)
    cached = _FINGERPRINT_CACHE.get(str(root))
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _FINGERPRINT_CACHE[str(root)] = value
    return value


@dataclass(frozen=True)
class Shard:
    """One work unit: a scenario index plus a replica range."""

    scenario_index: int
    replica_start: int
    replica_stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.replica_start < self.replica_stop:
            raise ValueError(
                f"invalid replica range [{self.replica_start}, "
                f"{self.replica_stop})"
            )

    @property
    def replica_range(self) -> range:
        return range(self.replica_start, self.replica_stop)

    def __len__(self) -> int:
        return self.replica_stop - self.replica_start

    def label(self, scenario: Scenario) -> str:
        name = scenario.name or scenario.label()
        if (
            self.replica_start == 0
            and self.replica_stop == scenario.replicas
        ):
            return name
        return (
            f"{name}[replicas {self.replica_start}:{self.replica_stop}]"
        )


def shard_key(
    scenario: Scenario,
    shard: Shard,
    executor: str = "auto",
    version: str | None = None,
    source: str | None = None,
) -> str:
    """Content-addressed cache key for one shard's records.

    The key covers everything that determines the resulting records:
    the canonical scenario JSON (graph, algorithm + seed, loads,
    stop rule, probe set, dynamics spec, replicas, recording flags),
    the replica range, the requested executor, the package version,
    and a fingerprint of the installed sources (so both released
    engine changes *and* uncommitted development edits invalidate).
    Any difference in any of these yields a different key — a cache
    hit is only possible for a bit-identical rerun.

    Raises ``TypeError`` for scenarios whose params are not plain JSON
    (see :func:`repro.scenarios.canonical_json`) — such scenarios
    cannot be content-addressed and therefore cannot be cached.
    """
    return content_hash(
        {
            "scenario": scenario.to_dict(),
            "replicas": [shard.replica_start, shard.replica_stop],
            "executor": executor,
            "version": version if version is not None else _package_version(),
            "source": source if source is not None else source_fingerprint(),
        }
    )


def plan_shards(
    suite: ScenarioSuite,
    max_replicas_per_shard: int | None = None,
) -> list[Shard]:
    """Deterministically split ``suite`` into ordered work units.

    One shard per scenario by default; with ``max_replicas_per_shard``
    each scenario's replica axis is additionally chunked into ranges of
    at most that many replicas (useful when a suite has fewer scenarios
    than workers).  The plan is a pure function of its arguments.
    """
    if max_replicas_per_shard is not None and max_replicas_per_shard < 1:
        raise ValueError(
            "max_replicas_per_shard must be >= 1, got "
            f"{max_replicas_per_shard}"
        )
    shards: list[Shard] = []
    for index, scenario in enumerate(suite):
        step = (
            scenario.replicas
            if max_replicas_per_shard is None
            else max_replicas_per_shard
        )
        for start in range(0, scenario.replicas, step):
            stop = min(start + step, scenario.replicas)
            shards.append(Shard(index, start, stop))
    return shards
