"""Content-addressed, crash-safe result cache for suite shards.

Deterministic load-balancing runs are bit-reproducible, so a shard's
records are fully determined by its content hash (canonical scenario
JSON + replica range + executor + package version — see
:func:`repro.exec.sharding.shard_key`).  The cache persists each
shard's :class:`~repro.core.trace.RunRecord`\\ s as one JSONL file
under ``.repro-cache/``:

    .repro-cache/<key[:2]>/<key>.jsonl
        line 1:    entry metadata (format tag, key, record count, ...)
        lines 2+:  one RunRecord dict per record

Entries are written atomically (temp file + ``os.replace``), so a
crash mid-write never leaves a readable-but-wrong entry; reads
validate the format tag, the key, and the record count and treat any
malformed or truncated entry as a miss to be recomputed — corrupted
data is never trusted.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.export import read_jsonl, write_jsonl
from repro.core.trace import RunRecord

ENTRY_FORMAT = "repro-shard-records/1"


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0
    write_errors: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "write_errors": self.write_errors,
        }


@dataclass
class CacheEntry:
    """One decoded cache entry: the records plus the stored metadata."""

    key: str
    records: list[RunRecord]
    meta: dict = field(default_factory=dict)


class ResultCache:
    """JSONL-backed content-addressed store of shard records."""

    def __init__(self, root: str | Path = ".repro-cache") -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.jsonl"

    # -- read -----------------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """The entry for ``key``, or None (missing *or* corrupt).

        A corrupt entry — unparseable line, wrong format tag, key
        mismatch, or a record count that does not match the metadata
        (the signature of a torn write) — is counted in
        ``stats.corrupt`` and reported as a miss, so callers always
        recompute rather than trust damaged data.
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            rows = read_jsonl(path)
            meta = rows[0]
            if (
                not isinstance(meta, dict)
                or meta.get("format") != ENTRY_FORMAT
                or meta.get("key") != key
                or meta.get("records") != len(rows) - 1
            ):
                raise ValueError("malformed cache entry")
            records = [RunRecord.from_dict(row) for row in rows[1:]]
        except (ValueError, KeyError, TypeError, IndexError,
                json.JSONDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return CacheEntry(key=key, records=records, meta=meta)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> list[str]:
        """All stored entry keys (sorted; includes unvalidated ones)."""
        if not self.root.exists():
            return []
        return sorted(
            path.stem for path in self.root.glob("*/*.jsonl")
        )

    def __len__(self) -> int:
        return len(self.keys())

    # -- write ----------------------------------------------------------

    def put(
        self, key: str, records: list[RunRecord], meta: dict | None = None
    ) -> Path | None:
        """Atomically persist ``records`` under ``key``.

        The cache is an accelerator, never a correctness dependency:
        an ``OSError`` anywhere in the write path (disk full, read-only
        mount, permission change mid-run) is logged, counted in
        ``stats.write_errors``, and swallowed — the entry simply stays
        a miss to be recomputed next run, and returns ``None`` instead
        of the entry path.  Atomicity (temp file + ``os.replace``)
        guarantees a failed write never leaves a readable-but-torn
        entry behind.
        """
        path = self.path_for(key)
        header = {
            "format": ENTRY_FORMAT,
            "key": key,
            "records": len(records),
            **(meta or {}),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                write_jsonl(
                    [header, *(record.to_dict() for record in records)],
                    tmp,
                )
                os.replace(tmp, path)
            finally:
                if tmp.exists():
                    tmp.unlink()
        except OSError as exc:
            self.stats.write_errors += 1
            logging.getLogger(__name__).warning(
                "cache write failed for %s (%s); entry stays a miss",
                path,
                exc,
            )
            return None
        self.stats.writes += 1
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            self.path_for(key).unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r})"


def as_cache(value) -> ResultCache | None:
    """Coerce a cache argument: None, a ResultCache, or a directory."""
    if value is None or isinstance(value, ResultCache):
        return value
    if isinstance(value, (str, Path)):
        return ResultCache(value)
    raise TypeError(
        f"cannot interpret {value!r} as a cache: expected None, a "
        "ResultCache, or a directory path"
    )
