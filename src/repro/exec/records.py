"""Record-backed stand-ins for engine results.

Cached shards and shards computed in worker processes travel as
:class:`~repro.core.trace.RunRecord`\\ s — the canonical, serializable
outcome of a run.  :class:`RecordedRun` re-presents one record through
the :class:`~repro.core.engine.SimulationResult` API surface that
:class:`~repro.scenarios.spec.ScenarioResult` consumers (drivers, the
CLI table, ``replica_summary``) actually use, so callers handle fresh
and replayed results uniformly.

Load *vectors* are deliberately not part of a record, so
``final_loads``/``initial_loads`` raise with an explanation instead of
silently returning something wrong.
"""

from __future__ import annotations

from repro.core.trace import RunRecord


class RecordedRun:
    """A replica outcome reconstructed from its :class:`RunRecord`."""

    def __init__(self, record: RunRecord) -> None:
        self.record = record

    @property
    def rounds_executed(self) -> int:
        return self.record.rounds_executed

    @property
    def stopped_early(self) -> bool:
        return self.record.stopped_early

    @property
    def replica(self) -> int:
        return self.record.replica

    @property
    def initial_discrepancy(self):
        return self.record.summary["initial_discrepancy"]

    @property
    def final_discrepancy(self):
        return self.record.summary["final_discrepancy"]

    @property
    def discrepancy_history(self) -> list:
        """The full-resolution discrepancy trajectory, if recorded.

        Only a contiguous ``0..k`` round-boundary column is accepted:
        a sparsely sampled discrepancy probe column is *not* the
        engine history, and returning it would silently change
        plateau/time-to-target computations.  Missing or sparse
        columns yield ``[]``, exactly like a run recorded with
        ``record_history=False``.
        """
        trace = self.record.trace
        if "discrepancy" not in trace:
            return []
        rounds, values = trace.series("discrepancy")
        if rounds != list(range(len(rounds))):
            return []
        return values

    def summary(self) -> dict:
        # Mirrors SimulationResult.summary() key for key.
        return {
            "rounds": self.rounds_executed,
            "initial_discrepancy": self.initial_discrepancy,
            "final_discrepancy": self.final_discrepancy,
            "stopped_early": self.stopped_early,
        }

    def _no_loads(self, attribute: str):
        raise AttributeError(
            f"{attribute} is not available on a record-backed result: "
            "load vectors are not persisted in RunRecords (re-run the "
            "scenario without the cache / with workers=1 to get full "
            "SimulationResults)"
        )

    @property
    def final_loads(self):
        self._no_loads("final_loads")

    @property
    def initial_loads(self):
        self._no_loads("initial_loads")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecordedRun(replica={self.record.replica}, "
            f"rounds={self.record.rounds_executed})"
        )
