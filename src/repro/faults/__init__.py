"""Fault injection: per-round network-fault schedules and their specs.

The network adversary complementing :mod:`repro.dynamics`: link
failures, node crash/recover epochs, and in-flight message drops, all
declarative (:class:`FaultSpec`), seeded with the replica-offset
discipline, and executed bit-identically by the dense, structured, and
batched engines (see :mod:`repro.faults.schedules` for the model).
"""

from repro.faults.schedules import (
    FAULTS,
    FaultSchedule,
    InvalidFault,
    LinkFailures,
    MessageDrop,
    NodeCrashes,
    RoundFaults,
    apply_round_faults,
    dense_port_values,
    register_fault,
    structured_port_values,
    validate_round_faults,
)
from repro.faults.spec import FaultSpec, as_fault_schedule

__all__ = [
    "FAULTS",
    "register_fault",
    "FaultSchedule",
    "FaultSpec",
    "InvalidFault",
    "RoundFaults",
    "LinkFailures",
    "NodeCrashes",
    "MessageDrop",
    "as_fault_schedule",
    "apply_round_faults",
    "dense_port_values",
    "structured_port_values",
    "validate_round_faults",
]
