"""Declarative fault-schedule specifications.

:class:`FaultSpec` is the fault counterpart of
:class:`~repro.dynamics.spec.DynamicsSpec`: a registered fault schedule
by name plus construction parameters, round-tripping through JSON
(scenario files, ``repro-lb simulate --faults``) and building fresh
:class:`~repro.faults.schedules.FaultSchedule` instances per replica.
If the params include a ``seed``, replica ``r`` is built with
``seed + r`` so replicas see independent — and batch-size-independent —
fault histories, exactly like seeded load specs and injectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.schedules import FAULTS, FaultSchedule
from repro.registry import freeze_params, parse_spec_shorthand


@dataclass(frozen=True)
class FaultSpec:
    """A registered fault schedule by name plus construction params."""

    name: str
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.name, freeze_params(self.params)))

    def build(self, replica: int = 0) -> FaultSchedule:
        params = dict(self.params)
        if replica and "seed" in params:
            params["seed"] += replica
        schedule = FAULTS.create(self.name, **params)
        if not isinstance(schedule, FaultSchedule):
            raise TypeError(
                f"fault factory {self.name!r} returned "
                f"{type(schedule).__name__}, expected a FaultSchedule"
            )
        return schedule

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(data["name"], dict(data.get("params", {})))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse CLI shorthand: ``name`` or ``name:{json params}``."""
        return cls(*parse_spec_shorthand(text, "fault"))


def as_fault_schedule(faults, replica: int = 0) -> FaultSchedule | None:
    """Coerce ``faults`` into a fresh-enough :class:`FaultSchedule`.

    ``None`` passes through (fault-free fabric); a :class:`FaultSpec`
    builds a fresh instance for ``replica``; a ready
    :class:`FaultSchedule` instance passes through as-is (the caller
    owns its state).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultSpec):
        return faults.build(replica)
    if isinstance(faults, FaultSchedule):
        return faults
    raise TypeError(
        f"cannot interpret {faults!r} as faults: expected None, a "
        "FaultSpec, or a FaultSchedule instance"
    )
