"""Declarative fault-schedule specifications.

:class:`FaultSpec` is the fault counterpart of
:class:`~repro.dynamics.spec.DynamicsSpec`: a registered fault schedule
by name plus construction parameters, round-tripping through JSON
(scenario files, ``repro-lb simulate --faults``) and building fresh
:class:`~repro.faults.schedules.FaultSchedule` instances per replica.
If the params include a ``seed``, replica ``r`` is built with
``seed + r`` so replicas see independent — and batch-size-independent —
fault histories, exactly like seeded load specs and injectors.  The
shared machinery lives in :class:`repro.specs.RegistrySpec`.
"""

from __future__ import annotations

from repro.faults.schedules import FAULTS, FaultSchedule
from repro.specs import RegistrySpec, coerce_spec


class FaultSpec(RegistrySpec):
    """A registered fault schedule by name plus construction params."""

    registry = FAULTS
    instance_type = FaultSchedule
    kind = "fault"


def as_fault_schedule(faults, replica: int = 0) -> FaultSchedule | None:
    """Coerce ``faults`` into a fresh-enough :class:`FaultSchedule`.

    ``None`` passes through (fault-free fabric); a :class:`FaultSpec`
    builds a fresh instance for ``replica``; a ready
    :class:`FaultSchedule` instance passes through as-is (the caller
    owns its state).
    """
    return coerce_spec(faults, FaultSpec, replica)
