"""Per-round network-fault schedules — the fault-injection pipeline.

The paper's schemes are prized for self-stabilization, yet the harness
so far could only exercise them on a frozen, fault-free fabric.  A
:class:`FaultSchedule` is the network adversary complementing the
workload adversary of :mod:`repro.dynamics`: at the beginning of round
``t`` it declares what the fabric does to this round's sends —

* **dead edges** — directed ``(node, port)`` pairs whose link is down
  this round.  Tokens assigned to a dead port *bounce back* to the
  sender (the link-layer view of a failed transmission), so dead edges
  conserve tokens;
* **dropped sends** — directed ``(node, port)`` pairs whose tokens are
  silently lost in flight.  Drops break conservation *in a tracked
  way*: the engines subtract exactly the dropped tokens from the
  running total, so the per-round conservation check stays exact;
* **load delta** — crash/recovery epochs move (handoff) or destroy
  (loss) the load of crashing nodes before the round begins.

The round then proceeds::

    x_t  →  crash/recover epochs  →  workload injection
         →  balancing over the live topology  →  x_{t+1}

Both engines honor one :class:`RoundFaults` identically: they execute
the normal fault-free round (dense sends matrix or matrix-free
:class:`~repro.core.structured.StructuredRound`) and then apply O(F)
sparse corrections — bounce dead-port sends back, erase dropped sends —
where F is the number of faulted ports.  A static schedule therefore
costs nothing, and an active one stays within the benchmark ladder's
1.2x overhead gate (``benchmarks/bench_e13_engine_throughput.py``).

Schedules register by name in :data:`FAULTS` (``@register_fault``) so
scenario JSON and the CLI can request them declaratively via
:class:`~repro.faults.spec.FaultSpec`.  Seeded schedules take a
``seed`` parameter which batch replicas offset (``seed + r``) exactly
like load specs and injectors, so replica ``r`` sees the same fault
history whether it runs alone, looped, or inside a batch.

Faults never touch padding ports of a
:class:`~repro.graphs.irregular.PaddedBalancingGraph` — padding is an
engine artifact, not a link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.registry import Registry

__all__ = [
    "FAULTS",
    "register_fault",
    "InvalidFault",
    "RoundFaults",
    "FaultSchedule",
    "LinkFailures",
    "NodeCrashes",
    "MessageDrop",
    "validate_round_faults",
    "dense_port_values",
    "structured_port_values",
    "apply_round_faults",
]

#: Named fault schedules available to scenario specs and the CLI.
FAULTS: Registry = Registry("fault")

#: Decorator registering a fault schedule: ``@register_fault(name)``.
register_fault = FAULTS.register


class InvalidFault(ValueError):
    """A fault schedule was mis-parameterized or emitted invalid state."""


_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)
_EMPTY_INDICES = np.empty(0, dtype=np.int64)


@dataclass
class RoundFaults:
    """What the fabric does to one round, in sparse directed-port form.

    ``dead`` and ``dropped`` are ``(k, 2)`` integer arrays of directed
    ``(node, port)`` pairs over *real* ports (never padding ports).
    ``dead`` must be closed under edge reversal — a link is down for
    both endpoints — while ``dropped`` is genuinely directed (a send
    can be lost one way).  The two sets are disjoint: a dead port sends
    nothing, so there is nothing to drop.  ``load_delta`` is an
    integer per-node vector applied *before* injection (crash handoff
    sums to zero; crash loss sums negative and is tracked).

    ``trusted`` marks rounds whose invariants hold *by construction*
    (the built-in schedules assemble pairs from pre-validated canonical
    edge stacks); engines then skip the per-round
    :func:`validate_round_faults` re-check — a unit test pins that
    every registered schedule's emitted rounds are validator-clean.
    Third-party schedules leave it False and get validated every round.
    """

    dead: np.ndarray = field(default_factory=lambda: _EMPTY_PAIRS)
    dropped: np.ndarray = field(default_factory=lambda: _EMPTY_PAIRS)
    load_delta: np.ndarray | None = None
    trusted: bool = False

    def is_empty(self) -> bool:
        return (
            self.dead.size == 0
            and self.dropped.size == 0
            and self.load_delta is None
        )


class _BernoulliGapStream:
    """Hit indices of an iid Bernoulli(``rate``) trial stream.

    The inter-arrival gaps of a Bernoulli process are iid
    Geometric(``rate``), so the stream draws gaps in large vectorized
    chunks (covering ~64 rounds per RNG call) and serves each round's
    block of ``count`` trials with one ``searchsorted`` — the
    per-round sampling cost is O(F) in the number of hits with no RNG
    call at all on most rounds, which is what keeps an active fault
    schedule inside the structured engine's throughput gate.  Exactly
    equivalent to flipping an independent coin per trial.
    """

    __slots__ = ("_rng", "_rate", "_chunk", "_pending", "_last", "_offset")

    def __init__(self, rng, rate: float, block: int) -> None:
        self._rng = rng
        self._rate = float(rate)
        self._chunk = max(64, int(64 * block * rate) + 16)
        self._pending = _EMPTY_INDICES
        self._last = -1  # last absolute trial position drawn so far
        self._offset = 0  # absolute position where the next block starts

    def take(self, count: int) -> np.ndarray:
        """Sorted hit indices in [0, count) for the next ``count`` trials."""
        if self._rate <= 0.0 or count == 0:
            return _EMPTY_INDICES
        if self._rate >= 1.0:
            return np.arange(count, dtype=np.int64)
        end = self._offset + count
        while self._last < end - 1:
            gaps = self._rng.geometric(self._rate, size=self._chunk)
            # For vanishingly small rates a single geometric gap can
            # approach 2**63 and overflow the cumsum.  Clamping at 2**50
            # is observably exact: by memorylessness the clamped
            # "phantom hit" sits ~1e15 trials ahead — beyond any
            # servable block — and the stream continues geometrically.
            np.minimum(gaps, 1 << 50, out=gaps)
            more = self._last + np.cumsum(gaps)
            self._last = int(more[-1])
            if self._pending.size:
                self._pending = np.concatenate([self._pending, more])
            else:
                self._pending = more
        split = int(np.searchsorted(self._pending, end))
        hits = self._pending[:split] - self._offset
        self._pending = self._pending[split:]
        self._offset = end
        return hits


class FaultSchedule:
    """Base class for per-round fault generators.

    Lifecycle mirrors :class:`~repro.dynamics.injectors.Injector`: the
    engine calls :meth:`start` once with the graph and initial loads
    (resetting RNG streams so one instance can be reused), then
    :meth:`round_state` exactly once per round, before that round's
    injection and balancing.  Determinism contract: the same
    construction parameters and the same sequence of ``round_state``
    calls produce the identical fault history — this is what makes the
    differential harness's bit-identity claims meaningful under faults.
    """

    #: Human-readable name used in reports.
    name: str = "fault"

    def start(self, graph, loads: np.ndarray) -> None:
        """Bind the graph and reset per-run state for a fresh run."""
        self._bind(graph)

    def round_state(self, t: int, loads: np.ndarray):
        """Faults for round ``t`` (or ``None`` for a fault-free round).

        ``loads`` is the pre-injection vector at the start of round
        ``t``; crash semantics read it to size handoffs.  Returning
        ``None`` keeps the engines on their unmodified fast path.
        """
        raise NotImplementedError

    def summary(self) -> dict:
        """End-of-run scalar facts (merged into run summaries)."""
        return {}

    # -- shared graph precomputes ---------------------------------------

    def _bind(self, graph) -> None:
        """Precompute the real directed-port arrays faults draw from."""
        if graph is None:
            raise InvalidFault(
                f"fault schedule {self.name!r} needs a graph to bind to"
            )
        self._graph = graph
        adjacency = graph.adjacency
        n, d = adjacency.shape
        true_degrees = getattr(graph, "true_degrees", None)
        if true_degrees is None:
            real = np.ones((n, d), dtype=bool)
        else:
            real = np.arange(d)[None, :] < true_degrees[:, None]
        self._real_mask = real
        self._real_u, self._real_p = (
            arr.astype(np.int64) for arr in np.nonzero(real)
        )
        self._real_pairs = np.stack(
            [self._real_u, self._real_p], axis=1
        )
        # Canonical (u < v) side of every undirected real edge, plus its
        # reverse — one coin per link, shared by both directions.
        canonical = real & (np.arange(n)[:, None] < adjacency)
        self._canon_u, self._canon_p = (
            arr.astype(np.int64) for arr in np.nonzero(canonical)
        )
        self._canon_v = adjacency[self._canon_u, self._canon_p]
        self._canon_q = graph.reverse_port[self._canon_u, self._canon_p]
        # Both directed pairs of every canonical edge, stacked so a
        # faulty round pays ONE O(F) fancy index, not re-assembly:
        # _canon_both[e] == [[u, p], [v, q]] for undirected edge e.
        self._canon_both = np.stack(
            [
                np.stack([self._canon_u, self._canon_p], axis=1),
                np.stack([self._canon_v, self._canon_q], axis=1),
            ],
            axis=1,
        )

    def _edges_to_pairs(self, selected: np.ndarray) -> np.ndarray:
        """Canonical-edge index array -> symmetric directed pairs."""
        return self._canon_both[selected].reshape(-1, 2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


@register_fault("link_failures")
class LinkFailures(FaultSchedule):
    """Per-round link outages: random coins or an adversarial cut.

    ``mode="random"``: every undirected real edge is independently down
    with probability ``rate`` each round (one seeded coin per link —
    both directions fail together).  ``mode="cut"``: the adversary
    severs every edge crossing the node bisection ``[0, n/2) |
    [n/2, n)`` for the first ``down`` rounds of every ``period`` — the
    worst connected-component stress a bisection adversary can apply
    without disconnecting forever.  ``until`` limits the schedule to
    rounds ``t <= until`` (the fabric then heals), which is how the E17
    driver measures discrepancy-recovery time.
    """

    name = "link_failures"

    def __init__(
        self,
        rate: float = 0.1,
        mode: str = "random",
        period: int = 8,
        down: int = 4,
        until: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidFault(f"rate must lie in [0, 1], got {rate}")
        if mode not in ("random", "cut"):
            raise InvalidFault(
                f"unknown mode {mode!r}; known: random, cut"
            )
        if period < 1:
            raise InvalidFault(f"period must be >= 1, got {period}")
        if not 0 <= down <= period:
            raise InvalidFault(
                f"down must lie in [0, period], got {down}"
            )
        if until is not None and until < 0:
            raise InvalidFault(f"until must be >= 0, got {until}")
        self.rate = float(rate)
        self.mode = mode
        self.period = int(period)
        self.down = int(down)
        self.until = until
        self.seed = int(seed)
        self._edge_failures = 0
        self._failure_rounds = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._bind(graph)
        self._rng = np.random.default_rng(self.seed)
        self._coins = _BernoulliGapStream(
            self._rng, self.rate, self._canon_u.size
        )
        self._edge_failures = 0
        self._failure_rounds = 0
        if self.mode == "cut":
            half = graph.num_nodes // 2
            self._cut_edges = np.flatnonzero(
                (self._canon_u < half) != (self._canon_v < half)
            )

    def round_state(self, t: int, loads: np.ndarray):
        if self.until is not None and t > self.until:
            return None
        if self.mode == "cut":
            if (t - 1) % self.period >= self.down:
                return None
            selected = self._cut_edges
        else:
            if self.rate == 0.0 or self._canon_u.size == 0:
                return None
            selected = self._coins.take(self._canon_u.size)
        count = int(selected.size)
        if count == 0:
            return None
        self._edge_failures += count
        self._failure_rounds += 1
        return RoundFaults(
            dead=self._edges_to_pairs(selected), trusted=True
        )

    def summary(self) -> dict:
        return {
            "edge_failures": self._edge_failures,
            "failure_rounds": self._failure_rounds,
        }


@register_fault("node_crashes")
class NodeCrashes(FaultSchedule):
    """Crash/recover epochs with load handoff or tracked load loss.

    Every round, each live node independently crashes with probability
    ``rate`` (or at the scripted ``events`` rounds, ``[[round, node],
    ...]``); a crashed node stays down for ``downtime`` rounds and all
    its incident links are dead meanwhile — it neither sends nor
    receives.  At the crash instant its load is handed to its currently
    live real neighbors, split evenly with the remainder dealt in port
    order (``handoff="neighbors"``, conserving), or destroyed and
    tracked (``handoff="lost"``, or when no live neighbor exists).
    Recovery is implicit: after ``downtime`` rounds the node rejoins
    with whatever load it accumulated while down (normally zero).
    """

    name = "node_crashes"

    def __init__(
        self,
        rate: float = 0.0,
        downtime: int = 5,
        handoff: str = "neighbors",
        events: list | None = None,
        until: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidFault(f"rate must lie in [0, 1], got {rate}")
        if downtime < 1:
            raise InvalidFault(f"downtime must be >= 1, got {downtime}")
        if handoff not in ("neighbors", "lost"):
            raise InvalidFault(
                f"unknown handoff {handoff!r}; known: neighbors, lost"
            )
        if until is not None and until < 0:
            raise InvalidFault(f"until must be >= 0, got {until}")
        parsed = []
        for event in events or []:
            if len(event) != 2:
                raise InvalidFault(
                    f"crash events are [round, node] pairs, got {event!r}"
                )
            t, node = (int(v) for v in event)
            if t < 1:
                raise InvalidFault(
                    f"crash event round must be >= 1, got {t}"
                )
            parsed.append((t, node))
        self.rate = float(rate)
        self.downtime = int(downtime)
        self.handoff = handoff
        self.events = parsed
        self.until = until
        self.seed = int(seed)
        self._crashes = 0
        self._tokens_lost = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._bind(graph)
        self._rng = np.random.default_rng(self.seed)
        n = graph.num_nodes
        self._coins = _BernoulliGapStream(self._rng, self.rate, n)
        self._down_until = np.zeros(n, dtype=np.int64)
        self._by_round: dict[int, list[int]] = {}
        for t, node in self.events:
            self._by_round.setdefault(t, []).append(node % n)
        self._crashes = 0
        self._tokens_lost = 0

    def round_state(self, t: int, loads: np.ndarray):
        graph = self._graph
        n = graph.num_nodes
        down = self._down_until > t
        active = self.until is None or t <= self.until
        crashing = np.zeros(n, dtype=bool)
        if active:
            if self.rate > 0.0:
                sampled = self._coins.take(n)
                crashing[sampled[~down[sampled]]] = True
            for node in self._by_round.get(t, ()):
                if not down[node]:
                    crashing[node] = True
        if crashing.any():
            self._down_until[crashing] = t + self.downtime
            down = down | crashing
        if not down.any():
            return None
        load_delta = None
        if crashing.any():
            load_delta = np.zeros(n, dtype=np.int64)
            for node in np.flatnonzero(crashing):
                amount = int(loads[node])
                self._crashes += 1
                if amount == 0:
                    continue
                targets = np.empty(0, dtype=np.int64)
                if self.handoff == "neighbors":
                    ports = np.flatnonzero(self._real_mask[node])
                    neighbors = graph.adjacency[node, ports]
                    targets = neighbors[~down[neighbors]]
                if targets.size:
                    share, extra = divmod(amount, targets.size)
                    load_delta[targets] += share
                    load_delta[targets[:extra]] += 1
                else:
                    self._tokens_lost += amount
                load_delta[node] -= amount
        # Every real directed port touching a down node is dead; the
        # reverse side is added only where the far endpoint is live so
        # down-down links appear exactly once per direction.
        sel = down[self._real_u]
        u, p = self._real_u[sel], self._real_p[sel]
        v = graph.adjacency[u, p]
        q = graph.reverse_port[u, p]
        live = ~down[v]
        dead = np.stack(
            [
                np.concatenate([u, v[live]]),
                np.concatenate([p, q[live]]),
            ],
            axis=1,
        )
        return RoundFaults(
            dead=dead, load_delta=load_delta, trusted=True
        )

    def summary(self) -> dict:
        return {
            "crashes": self._crashes,
            "tokens_lost_at_crash": self._tokens_lost,
        }


@register_fault("message_drop")
class MessageDrop(FaultSchedule):
    """A fraction of each round's sends is silently lost in flight.

    Every directed real port independently loses its tokens with
    probability ``rate`` each round — the lossy-datagram fabric.  Drops
    are the one fault that breaks token conservation, and they break it
    in a *tracked* way: the engines subtract exactly the dropped tokens
    from the running total (reported as ``tokens_dropped``), so the
    conservation invariant stays an exact equality.
    """

    name = "message_drop"

    def __init__(
        self,
        rate: float = 0.05,
        until: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidFault(f"rate must lie in [0, 1], got {rate}")
        if until is not None and until < 0:
            raise InvalidFault(f"until must be >= 0, got {until}")
        self.rate = float(rate)
        self.until = until
        self.seed = int(seed)
        self._drop_events = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._bind(graph)
        self._rng = np.random.default_rng(self.seed)
        self._coins = _BernoulliGapStream(
            self._rng, self.rate, self._real_u.size
        )
        self._drop_events = 0

    def round_state(self, t: int, loads: np.ndarray):
        if self.until is not None and t > self.until:
            return None
        if self.rate == 0.0 or self._real_u.size == 0:
            return None
        selected = self._coins.take(self._real_u.size)
        if selected.size == 0:
            return None
        self._drop_events += int(selected.size)
        return RoundFaults(
            dropped=self._real_pairs[selected], trusted=True
        )

    def summary(self) -> dict:
        return {"drop_events": self._drop_events}


# ----------------------------------------------------------------------
# Engine-side helpers (shared by the dense, structured, and batch paths)
# ----------------------------------------------------------------------


def validate_round_faults(faults: RoundFaults, graph) -> None:
    """Structural validation of one round's fault state.

    Checks index ranges, that only real (non-padding) ports are
    touched, that ``dead`` is closed under edge reversal with no
    duplicates, and that ``dead`` and ``dropped`` are disjoint.
    """
    n, d = graph.adjacency.shape
    true_degrees = getattr(graph, "true_degrees", None)
    flats = {}
    for label, pairs in (("dead", faults.dead), ("dropped", faults.dropped)):
        pairs = np.asarray(pairs)
        if pairs.size == 0:
            flats[label] = np.empty(0, dtype=np.int64)
            continue
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise InvalidFault(
                f"{label} pairs must have shape (k, 2), got {pairs.shape}"
            )
        u, p = pairs[:, 0], pairs[:, 1]
        if u.min() < 0 or u.max() >= n or p.min() < 0 or p.max() >= d:
            raise InvalidFault(
                f"{label} pairs out of range for a ({n}, {d}) port space"
            )
        if true_degrees is not None and np.any(p >= true_degrees[u]):
            raise InvalidFault(
                f"{label} pairs touch padding ports; faults apply to "
                "real links only"
            )
        flats[label] = u * d + p
    dead = flats["dead"]
    if dead.size:
        dead = np.sort(dead)
        if np.any(dead[1:] == dead[:-1]):
            raise InvalidFault("dead pairs contain duplicates")
        u, p = faults.dead[:, 0], faults.dead[:, 1]
        reverse = (
            graph.adjacency[u, p] * d + graph.reverse_port[u, p]
        )
        if not np.array_equal(dead, np.sort(reverse)):
            raise InvalidFault(
                "dead pairs are not closed under edge reversal; a "
                "failed link is down for both endpoints"
            )
    dropped = flats["dropped"]
    if dropped.size:
        dropped = np.sort(dropped)
        if np.any(dropped[1:] == dropped[:-1]):
            raise InvalidFault("dropped pairs contain duplicates")
    if dead.size and dropped.size:
        if np.intersect1d(dead, dropped, assume_unique=True).size:
            raise InvalidFault(
                "dead and dropped pairs overlap; a dead port sends "
                "nothing, so nothing of it can be dropped"
            )
    if faults.load_delta is not None:
        delta = faults.load_delta
        if delta.shape[-1] != n:
            raise InvalidFault(
                f"load_delta has shape {delta.shape}, expected ({n},)"
            )
        if not np.issubdtype(delta.dtype, np.integer):
            raise InvalidFault(
                f"load_delta must be integer, got dtype {delta.dtype}"
            )


def dense_port_values(sends: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Per-pair token counts read off a dense ``(n, d+)`` sends matrix."""
    return sends[pairs[:, 0], pairs[:, 1]]


def structured_port_values(
    compact, graph, pairs: np.ndarray, replica: int | None = None
) -> np.ndarray:
    """Per-pair token counts a :class:`StructuredRound` assigns.

    Every real port of node ``u`` carries ``edge_share[u]`` plus one
    window token iff the port's cyclic position falls inside the rotor
    window — evaluated only at the F faulted pairs, never densely.
    """
    u, p = pairs[:, 0], pairs[:, 1]
    share = np.asarray(compact.edge_share)
    if share.ndim == 2:
        share = share[replica if replica is not None else 0]
    if share.ndim == 0:
        values = np.full(u.shape, int(share), dtype=np.int64)
    else:
        # take() always materializes a fresh array, so the in-place
        # window add below cannot alias the balancer's state.
        values = share.take(u).astype(np.int64, copy=False)
    window = compact.window
    if window is not None:
        hits = (
            window.positions[u, p] - window.rotors[u]
        ) % graph.total_degree < window.extra[u]
        values += hits
    return values


def apply_round_faults(
    new_loads: np.ndarray, graph, faults: RoundFaults, port_values
) -> int:
    """Correct a fault-free round result in place; returns tokens lost.

    ``port_values(pairs)`` maps directed ``(node, port)`` pairs to the
    token counts the round assigned them (dense or structured).  Dead
    sends are pulled back from the receiver and returned to the sender
    (conserving); dropped sends are pulled back and vanish — the
    returned count is what the caller subtracts from its running total.
    """
    if faults.dead.size:
        values = port_values(faults.dead)
        senders = faults.dead[:, 0]
        receivers = graph.adjacency[senders, faults.dead[:, 1]]
        # One fused scatter: -value at the receiver, +value back at the
        # sender (ufunc.at dominates this path's cost, so call it once).
        np.add.at(
            new_loads,
            np.concatenate([receivers, senders]),
            np.concatenate([-values, values]),
        )
    dropped_tokens = 0
    if faults.dropped.size:
        values = port_values(faults.dropped)
        receivers = graph.adjacency[
            faults.dropped[:, 0], faults.dropped[:, 1]
        ]
        np.subtract.at(new_loads, receivers, values)
        dropped_tokens = int(values.sum())
    return dropped_tokens
