"""Reproduction of *Improved Analysis of Deterministic Load-Balancing
Schemes* (Berenbrink, Klasing, Kosowski, Mallmann-Trenn, Uznański —
PODC 2015).

Public API overview
-------------------

* :mod:`repro.graphs` — d-regular graph families, the balancing graph
  ``G+`` (self-loops, ports), spectral toolkit (``μ``, ``T``).
* :mod:`repro.core` — synchronous simulation engine, balancer
  interface, flow accounting, fairness checkers, potentials, metrics.
* :mod:`repro.algorithms` — SEND(⌊x/d+⌋), SEND([x/d+]), ROTOR-ROUTER,
  ROTOR-ROUTER*, continuous diffusion, and all Table 1 baselines.
* :mod:`repro.lower_bounds` — the Section 4 adversarial constructions.
* :mod:`repro.analysis` — theory-bound formulas, convergence runs,
  scaling fits, table rendering.
* :mod:`repro.experiments` — drivers regenerating Table 1 and every
  theorem's measurement (see DESIGN.md for the index).

Quickstart
----------

>>> from repro.graphs import random_regular
>>> from repro.algorithms import RotorRouter
>>> from repro.core import Simulator, point_mass
>>> graph = random_regular(64, 4, seed=1)
>>> sim = Simulator(graph, RotorRouter(), point_mass(64, 6400))
>>> result = sim.run(500)
>>> result.final_discrepancy < result.initial_discrepancy
True
"""

from repro import algorithms, analysis, core, experiments, graphs, lower_bounds

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "core",
    "algorithms",
    "lower_bounds",
    "analysis",
    "experiments",
    "__version__",
]
