"""Reproduction of *Improved Analysis of Deterministic Load-Balancing
Schemes* (Berenbrink, Klasing, Kosowski, Mallmann-Trenn, Uznański —
PODC 2015).

Public API overview
-------------------

* :mod:`repro.scenarios` — the declarative front door: ``Scenario``
  (graph × workload × algorithm × stop rule × replicas),
  ``ScenarioSuite`` cartesian sweeps, JSON round-tripping, and the
  vectorized ``BatchRunner`` that executes all replicas as one stacked
  ``(replicas, n)`` array.
* :mod:`repro.graphs` — d-regular graph families, the balancing graph
  ``G+`` (self-loops, ports), spectral toolkit (``μ``, ``T``).
* :mod:`repro.core` — synchronous simulation engine, balancer
  interface, named load workloads, capability-typed probes
  (``Probe`` / ``ProbeSpec`` / ``@register_probe``), the columnar
  ``Trace`` / ``RunRecord`` model, flow accounting, fairness checkers,
  potentials, metrics.
* :mod:`repro.algorithms` — SEND(⌊x/d+⌋), SEND([x/d+]), ROTOR-ROUTER,
  ROTOR-ROUTER*, continuous diffusion, and all Table 1 baselines.
* :mod:`repro.dynamics` — dynamic workloads: per-round load-event
  injectors (``constant_rate``, ``batch_arrivals``,
  ``adversarial_peak``, ``random_churn``, ``scripted``;
  ``@register_injector``) and the declarative ``DynamicsSpec`` that
  scenarios, the CLI, and both engines consume.
* :mod:`repro.exec` — the suite-execution subsystem: deterministic
  sharding, ``ProcessPoolExecutor`` fan-out (``workers=N``), a
  content-addressed result cache under ``.repro-cache/`` with
  crash-resume, all bit-identical to serial execution.
* :mod:`repro.lower_bounds` — the Section 4 adversarial constructions.
* :mod:`repro.analysis` — theory-bound formulas, convergence runs,
  scaling fits, table rendering.
* :mod:`repro.experiments` — drivers regenerating Table 1 and every
  theorem's measurement, built on ``ScenarioSuite``.
* :mod:`repro.registry` — the decorator-based plugin registry behind
  ``@register_balancer`` / ``@register_family`` / ``@register_load_spec``.

Quickstart
----------

>>> from repro.scenarios import (
...     AlgorithmSpec, GraphSpec, LoadSpec, Scenario, StopRule,
... )
>>> scenario = Scenario(
...     graph=GraphSpec("random_regular", {"n": 64, "degree": 4, "seed": 1}),
...     algorithm=AlgorithmSpec("rotor_router"),
...     loads=LoadSpec("point_mass", {"tokens": 6400}),
...     stop=StopRule.fixed(500),
...     replicas=4,
... )
>>> result = scenario.run()  # replicas run as one vectorized batch
>>> all(d <= 12 for d in result.final_discrepancies)
True

The classic imperative API remains available:

>>> from repro.graphs import random_regular
>>> from repro.algorithms import RotorRouter
>>> from repro.core import Simulator, point_mass
>>> graph = random_regular(64, 4, seed=1)
>>> sim = Simulator(graph, RotorRouter(), point_mass(64, 6400))
>>> sim.run(500).final_discrepancy < 6400
True
"""

from repro import (
    algorithms,
    analysis,
    core,
    dynamics,
    exec,  # noqa: A004 - the suite-execution subsystem, per the paper repo layout
    experiments,
    graphs,
    lower_bounds,
    scenarios,
)
from repro.registry import Registry

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "core",
    "algorithms",
    "dynamics",
    "exec",
    "lower_bounds",
    "analysis",
    "experiments",
    "scenarios",
    "Registry",
    "__version__",
]
