"""Command-line entry point: ``repro-lb`` / ``python -m repro``.

Examples::

    repro-lb list                 # enumerate experiments
    repro-lb run E1 E3            # run selected experiments
    repro-lb run --full           # run everything at full size
    repro-lb run --json out.json  # machine-readable results
    repro-lb simulate rotor_router --family cycle --n 32 --rounds 500
    repro-lb simulate send_floor --n 64 \\
        --inject 'constant_rate:{"rate": 8}'   # dynamic workload
    repro-lb scenario sweep.json  # run a declarative scenario (suite)
    repro-lb scenario sweep.json --workers 4   # sharded process fan-out
    repro-lb scenario sweep.json --resume      # recompute missing shards
    repro-lb run E1 E3 --workers 4             # parallel experiment drivers
    python -m repro --workers 4                # the full battery, parallel

The ``simulate`` subcommand is a thin front end over the declarative
Scenario API (:mod:`repro.scenarios`); ``scenario`` executes scenario /
suite specifications straight from JSON files produced by
``Scenario.to_dict`` / ``ScenarioSuite.to_dict``, sharded through the
:mod:`repro.exec` executor: ``--workers N`` fans shards out over a
process pool and the content-addressed result cache (on by default,
under ``.repro-cache/``) makes reruns and crash resume skip everything
already computed — results are bit-identical in every mode.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.runner import EXPERIMENTS, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description=(
            "Reproduction harness for 'Improved Analysis of Deterministic "
            "Load-Balancing Schemes' (Berenbrink et al., PODC 2015)"
        ),
    )
    parser.add_argument(
        "--workers",
        dest="global_workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "process fan-out for suite execution; with no subcommand, "
            "`python -m repro --workers N` runs the full experiment "
            "battery in parallel"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use the full-size configurations (slower)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan suite-based drivers out over N worker processes",
    )
    run_parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse/persist suite results in the content-addressed "
            "result cache (see --cache-dir)"
        ),
    )
    run_parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="PATH",
        help="result cache directory (default: .repro-cache)",
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write results as JSON to PATH",
    )
    run_parser.add_argument(
        "--markdown",
        action="store_true",
        help="print markdown tables instead of text tables",
    )
    sim_parser = subparsers.add_parser(
        "simulate", help="run one algorithm on one graph"
    )
    sim_parser.add_argument(
        "algorithm",
        nargs="?",
        help="registered balancer name (see repro.algorithms)",
    )
    sim_parser.add_argument(
        "--family",
        default="random_regular",
        help=(
            "graph family (cycle, torus, hypercube, random_regular, "
            "fat_tree, leaf_spine, ...; see --list-families)"
        ),
    )
    sim_parser.add_argument("--n", type=int, default=64)
    sim_parser.add_argument("--degree", type=int, default=4)
    sim_parser.add_argument("--self-loops", type=int, default=None)
    sim_parser.add_argument("--rounds", type=int, default=None)
    sim_parser.add_argument("--tokens-per-node", type=int, default=64)
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument(
        "--csv",
        metavar="PATH",
        help="dump the discrepancy trajectory as CSV",
    )
    sim_parser.add_argument(
        "--probe",
        action="append",
        default=[],
        metavar="NAME[:JSON]",
        help=(
            "attach a registered probe by name, e.g. --probe "
            "load_bounds or --probe 'potentials:{\"c_values\": [4], "
            "\"s\": 1}' (repeatable; loads-only probes keep the "
            "structured/batched fast paths)"
        ),
    )
    sim_parser.add_argument(
        "--list-probes",
        action="store_true",
        help="list registered probe names and exit",
    )
    sim_parser.add_argument(
        "--list-families",
        action="store_true",
        help="list registered graph-family names and exit",
    )
    sim_parser.add_argument(
        "--inject",
        metavar="NAME[:JSON]",
        help=(
            "dynamic workload: a registered injector applied at the "
            "start of every round, e.g. --inject "
            "'constant_rate:{\"rate\": 8, \"seed\": 1}' or --inject "
            "'random_churn:{\"rate\": 16}' (injection rides the "
            "structured/batched fast paths)"
        ),
    )
    sim_parser.add_argument(
        "--list-injectors",
        action="store_true",
        help="list registered injector names and exit",
    )
    sim_parser.add_argument(
        "--faults",
        metavar="NAME[:JSON]",
        help=(
            "fault schedule: a registered schedule applied every "
            "round, e.g. --faults 'link_failures:{\"rate\": 0.05, "
            "\"seed\": 1}' or --faults 'node_crashes:{\"rate\": "
            "0.01, \"downtime\": 5}' (faults ride the structured "
            "fast path; dropped tokens are tracked in the summary)"
        ),
    )
    sim_parser.add_argument(
        "--list-faults",
        action="store_true",
        help="list registered fault-schedule names and exit",
    )
    sim_parser.add_argument(
        "--topology",
        metavar="NAME[:JSON]",
        help=(
            "dynamic-topology schedule: a registered schedule applied "
            "at the top of every round, e.g. --topology "
            "'edge_churn:{\"rate\": 0.05, \"seed\": 1}' or --topology "
            "'expander_rewire:{\"swaps\": 2}' (the graph churns in "
            "place; incompatible with --faults)"
        ),
    )
    sim_parser.add_argument(
        "--list-topologies",
        action="store_true",
        help="list registered topology-schedule names and exit",
    )
    sim_parser.add_argument(
        "--engine",
        default="auto",
        metavar="NAME",
        help=(
            "execution backend: auto (default), or any registered "
            "engine — dense, structured, spmm (CSR SpMM gather), "
            "compiled (fused rotor kernel; numba when installed, CSR "
            "otherwise), partitioned (k partitions x worker processes "
            "over shared memory; params via "
            "'partitioned:{\"workers\": 4}'); see --list-engines"
        ),
    )
    sim_parser.add_argument(
        "--list-engines",
        action="store_true",
        help="list registered engine backends and exit",
    )
    sim_parser.add_argument(
        "--trace-csv",
        metavar="PATH",
        help="dump replica 0's columnar trace (probe columns) as CSV",
    )
    sim_parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent repetitions (multi-replica runs are batched)",
    )
    scenario_parser = subparsers.add_parser(
        "scenario",
        help="run a declarative scenario or suite from a JSON file",
    )
    scenario_parser.add_argument(
        "path", help="JSON file (Scenario.to_dict / ScenarioSuite.to_dict)"
    )
    scenario_parser.add_argument(
        "--executor",
        choices=("auto", "loop", "batch"),
        default="auto",
        help="force an execution strategy (default: auto)",
    )
    scenario_parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write per-replica summaries as JSON to PATH",
    )
    scenario_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan independent shards out over N worker processes",
    )
    scenario_parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "content-addressed result cache: completed shards are "
            "persisted and reruns skip them (default: on; runs are "
            "deterministic given their specs, so cached replay is "
            "bit-identical)"
        ),
    )
    scenario_parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="PATH",
        help="result cache directory (default: .repro-cache)",
    )
    scenario_parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted run: recompute only shards missing "
            "from the cache (requires the cache; incompatible with "
            "--no-cache)"
        ),
    )
    scenario_parser.add_argument(
        "--max-replicas-per-shard",
        type=int,
        default=None,
        metavar="K",
        help=(
            "additionally split each scenario's replica axis into "
            "shards of at most K replicas (finer-grained fan-out; "
            "never changes results)"
        ),
    )
    scenario_parser.add_argument(
        "--records-jsonl",
        metavar="PATH",
        help="also dump every RunRecord (summary + trace) as JSON lines",
    )
    scenario_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "attempt each shard up to N times: transient failures "
            "(timeouts, worker crashes, I/O errors) are retried with "
            "exponential backoff, bad specs still fail fast"
        ),
    )
    scenario_parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-shard wall-clock budget; a shard over budget has its "
            "worker process killed (and is retried under --retries)"
        ),
    )
    scenario_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help=(
            "graceful degradation: report failed shards and exit 0 "
            "with the completed results instead of failing the run; "
            "completed shards stay cached, so a later --resume only "
            "recomputes the holes"
        ),
    )
    return parser


def graph_spec_from_cli(
    family: str,
    n: int,
    degree: int,
    seed: int,
    self_loops: int | None = None,
):
    """Translate the CLI's uniform ``--n`` knob into per-family params."""
    from repro.graphs.balancing import log2_ceil
    from repro.scenarios import GraphSpec

    if family == "random_regular":
        params = {"n": n, "degree": degree, "seed": seed}
    elif family == "hypercube":
        params = {"dimension": log2_ceil(n)}
    elif family == "torus":
        params = {"side": max(3, int(round(n ** 0.5))), "dimensions": 2}
    elif family == "fat_tree":
        # Smallest even k whose fabric hosts at least n nodes
        # (k^3/4 hosts).
        k = 2
        while k ** 3 // 4 < n:
            k += 2
        params = {"k": k}
    elif family == "leaf_spine":
        # --n hosts hanging --degree per leaf; spines scale with
        # the leaf count.
        hosts_per_leaf = max(1, degree)
        leaves = max(1, -(-n // hosts_per_leaf))
        params = {
            "leaves": leaves,
            "spines": max(1, leaves // 2),
            "hosts_per_leaf": hosts_per_leaf,
        }
    else:
        params = {"n": n}
    if self_loops is not None:
        params["num_self_loops"] = self_loops
    return GraphSpec(family, params)


def _run_simulate(args) -> int:
    from repro.analysis.convergence import horizon_for
    from repro.core.probes import PROBES, ProbeSpec
    from repro.dynamics import INJECTORS, DynamicsSpec
    from repro.faults import FAULTS, FaultSpec
    from repro.topology import TOPOLOGIES, TopologySpec
    from repro.graphs.spectral import eigenvalue_gap
    from repro.scenarios import (
        AlgorithmSpec,
        LoadSpec,
        Scenario,
        StopRule,
    )

    if args.list_probes:
        print("registered probes:")
        for name in PROBES.names():
            print(f"  {name}")
        return 0
    if args.list_injectors:
        print("registered injectors:")
        for name in INJECTORS.names():
            print(f"  {name}")
        return 0
    if args.list_faults:
        print("registered fault schedules:")
        for name in FAULTS.names():
            print(f"  {name}")
        return 0
    if args.list_topologies:
        print("registered topology schedules:")
        for name in TOPOLOGIES.names():
            print(f"  {name}")
        return 0
    if args.list_families:
        from repro.graphs import FAMILY_BUILDERS

        print("registered graph families:")
        for name in FAMILY_BUILDERS.names():
            print(f"  {name}")
        return 0
    if args.list_engines:
        from repro.engines import create_engine, engine_names
        from repro.graphs.balancing import estimate_memory_bytes

        # Planning estimate: per-round working set at a million nodes
        # on the paper's standard d+ = 2d augmentation (d = 2).
        ref_n, ref_d_plus = 10**6, 4
        print("registered engines (plus 'auto' selection):")
        for name in engine_names():
            backend = create_engine(name)
            megabytes = estimate_memory_bytes(
                ref_n, ref_d_plus, engine=name
            ) / 2**20
            print(
                f"  {name}  [{backend.protocol} protocol, "
                f"{backend.kernel} kernel, ~{megabytes:.0f} MB @ "
                f"n=10^6 d+=4]"
            )
        return 0
    if args.algorithm is None:
        raise SystemExit("simulate: an algorithm name is required")
    probes = tuple(ProbeSpec.parse(text) for text in args.probe)
    dynamics = (
        DynamicsSpec.parse(args.inject) if args.inject else None
    )
    faults = FaultSpec.parse(args.faults) if args.faults else None
    topology = (
        TopologySpec.parse(args.topology) if args.topology else None
    )
    graph_spec = graph_spec_from_cli(
        args.family, args.n, args.degree, args.seed, args.self_loops
    )
    graph = graph_spec.build()
    gap = eigenvalue_gap(graph)
    tokens = args.tokens_per_node * graph.num_nodes
    rounds = args.rounds
    if rounds is None:
        from repro.core.loads import point_mass

        rounds = horizon_for(
            graph, point_mass(graph.num_nodes, tokens), gap=gap
        )
    scenario = Scenario(
        graph=graph_spec,
        algorithm=AlgorithmSpec(args.algorithm, seed=args.seed),
        loads=LoadSpec("point_mass", {"tokens": tokens}),
        stop=StopRule.fixed(rounds),
        replicas=args.replicas,
        probes=probes,
        dynamics=dynamics,
        faults=faults,
        topology=topology,
        engine=args.engine,
    )
    outcome = scenario.run(graph=graph)
    result = outcome.replica(0)
    print(f"graph:      {graph.name} (d+={graph.total_degree})")
    print(f"mu:         {gap:.5g}")
    print(f"rounds:     {result.rounds_executed}")
    if dynamics is not None:
        print(f"dynamics:   {dynamics.name}")
    if faults is not None:
        print(f"faults:     {faults.name}")
    if topology is not None:
        print(f"topology:   {topology.name}")
    if args.engine != "auto":
        print(f"engine:     {args.engine}")
    print(f"discrepancy {result.initial_discrepancy} -> "
          f"{result.final_discrepancy}")
    if args.replicas > 1:
        finals = outcome.final_discrepancies
        print(
            f"replicas:   {args.replicas} ({outcome.executor} executor), "
            f"final discrepancy {min(finals)}..{max(finals)}"
        )
    record = outcome.record(0)
    if (
        probes
        or dynamics is not None
        or faults is not None
        or topology is not None
    ) and record is not None:
        for key, value in record.summary.items():
            if key in ("initial_discrepancy", "final_discrepancy"):
                continue
            print(f"{key}: {value}")
    if args.csv:
        from repro.analysis.export import write_trajectory_csv

        write_trajectory_csv(result.discrepancy_history, args.csv)
        print(f"wrote {args.csv}")
    if args.trace_csv:
        from repro.analysis.export import write_trace_csv

        if record is None:
            raise SystemExit("no trace recorded for this run")
        write_trace_csv(record.trace, args.trace_csv)
        print(f"wrote {args.trace_csv}")
    return 0


def _run_scenario(args) -> int:
    from repro.analysis.tables import render_table
    from repro.exec import (
        ResultCache,
        SuiteExecutionError,
        SuiteExecutor,
    )
    from repro.scenarios import Scenario, ScenarioSuite

    with open(args.path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "scenarios" in data:
        suite = ScenarioSuite.from_dict(data)
    else:
        suite = ScenarioSuite((Scenario.from_dict(data),))
    if args.resume and not args.cache:
        raise SystemExit("scenario: --resume requires the cache "
                         "(drop --no-cache)")
    if args.retries is not None and args.retries < 1:
        raise SystemExit("scenario: --retries must be >= 1")
    cache = ResultCache(args.cache_dir) if args.cache else None
    runner = SuiteExecutor(
        workers=args.workers or args.global_workers or 1,
        cache=cache,
        executor=args.executor,
        max_replicas_per_shard=args.max_replicas_per_shard,
        retry=args.retries,
        timeout=args.shard_timeout,
        on_shard_failure=(
            "partial" if args.allow_partial else "raise"
        ),
    )
    try:
        report = runner.run(suite)
    except SuiteExecutionError as exc:
        print(exc, file=sys.stderr)
        for failure in exc.failures:
            print(f"--- {failure.label} ---", file=sys.stderr)
            print(failure.traceback, file=sys.stderr)
        if args.cache:
            print(
                f"resume with: repro-lb scenario {args.path} --resume"
                + (
                    f" --cache-dir {args.cache_dir}"
                    if args.cache_dir != ".repro-cache"
                    else ""
                ),
                file=sys.stderr,
            )
        return 1
    if report.failures:
        # --allow-partial: completed results below, holes on stderr.
        print(
            f"warning: {len(report.failures)} shards failed "
            "(--allow-partial; completed shards are cached)",
            file=sys.stderr,
        )
        for failure in report.failures:
            print(
                f"  [{failure.shard.scenario_index}] {failure.label}: "
                f"{failure.error}",
                file=sys.stderr,
            )
    rows = []
    for outcome in report.outcomes:
        label = outcome.scenario.name or outcome.scenario.label()
        for replica in range(len(outcome)):
            rows.append(
                {
                    "scenario": label,
                    "replica": replica,
                    "executor": outcome.executor,
                    **outcome.replica_summary(replica),
                }
            )
    # Union of keys across all rows: mixed stop rules produce
    # heterogeneous summaries (e.g. time_to_target only on some rows)
    # and render_table would otherwise take its columns from row 0.
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    print(
        render_table(
            rows, columns=columns, title=f"scenarios from {args.path}"
        )
    )
    print(report.summary_line())
    if cache is not None:
        stats = cache.stats
        line = (
            f"cache: {cache.root} ({stats.hits} hits, "
            f"{stats.writes} writes"
        )
        if stats.corrupt:
            line += f", {stats.corrupt} corrupt entries recomputed"
        print(line + ")")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2, default=str)
        print(f"wrote {args.json}")
    if args.records_jsonl:
        from repro.analysis.export import write_records_jsonl

        write_records_jsonl(
            (
                record
                for outcome in report.outcomes
                for record in outcome.records
            ),
            args.records_jsonl,
        )
        print(f"wrote {args.records_jsonl}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None and args.global_workers:
        # `python -m repro --workers N`: the full battery, parallel.
        args.command = "run"
        args.experiments = []
        args.full = False
        args.json = None
        args.markdown = False
        args.workers = args.global_workers
        args.cache = False
        args.cache_dir = ".repro-cache"
    if args.command == "list" or args.command is None:
        from repro.experiments.runner import FULL_OVERRIDDEN

        print("available experiments:")
        for experiment_id in sorted(EXPERIMENTS, key=_experiment_key):
            print(f"  {experiment_id}")
        print(
            "full-size variants exist for:",
            ", ".join(FULL_OVERRIDDEN),
        )
        return 0
    if args.command == "run":
        only = tuple(args.experiments) or None
        results = run_all(
            fast=not args.full,
            only=only,
            workers=args.workers or args.global_workers,
            cache=args.cache_dir if args.cache else None,
        )
        payload = []
        for result in results:
            if args.markdown:
                print(result.to_markdown())
            else:
                print(result.to_text())
            print(f"(elapsed: {result.elapsed_seconds:.2f}s)")
            print()
            payload.append(json.loads(result.to_json()))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}")
        return 0
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "scenario":
        return _run_scenario(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _experiment_key(experiment_id: str) -> tuple:
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    return (int(digits) if digits else 0, experiment_id)


if __name__ == "__main__":
    sys.exit(main())
