"""Command-line entry point: ``repro-lb`` / ``python -m repro``.

Examples::

    repro-lb list                 # enumerate experiments
    repro-lb run E1 E3            # run selected experiments
    repro-lb run --full           # run everything at full size
    repro-lb run --json out.json  # machine-readable results
    repro-lb simulate rotor_router --family cycle --n 32 --rounds 500
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.runner import EXPERIMENTS, FULL_EXPERIMENTS, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description=(
            "Reproduction harness for 'Improved Analysis of Deterministic "
            "Load-Balancing Schemes' (Berenbrink et al., PODC 2015)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use the full-size configurations (slower)",
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write results as JSON to PATH",
    )
    run_parser.add_argument(
        "--markdown",
        action="store_true",
        help="print markdown tables instead of text tables",
    )
    sim_parser = subparsers.add_parser(
        "simulate", help="run one algorithm on one graph"
    )
    sim_parser.add_argument(
        "algorithm", help="registered balancer name (see repro.algorithms)"
    )
    sim_parser.add_argument(
        "--family",
        default="random_regular",
        help="graph family (cycle, torus, hypercube, random_regular, ...)",
    )
    sim_parser.add_argument("--n", type=int, default=64)
    sim_parser.add_argument("--degree", type=int, default=4)
    sim_parser.add_argument("--self-loops", type=int, default=None)
    sim_parser.add_argument("--rounds", type=int, default=None)
    sim_parser.add_argument("--tokens-per-node", type=int, default=64)
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument(
        "--csv",
        metavar="PATH",
        help="dump the discrepancy trajectory as CSV",
    )
    return parser


def _build_graph(args):
    from repro.graphs import families

    kwargs = {}
    if args.self_loops is not None:
        kwargs["num_self_loops"] = args.self_loops
    if args.family == "random_regular":
        return families.random_regular(
            args.n, args.degree, args.seed, **kwargs
        )
    if args.family == "cycle":
        return families.cycle(args.n, **kwargs)
    if args.family == "complete":
        return families.complete(args.n, **kwargs)
    if args.family == "hypercube":
        from repro.graphs.balancing import log2_ceil

        return families.hypercube(log2_ceil(args.n), **kwargs)
    if args.family == "torus":
        side = max(3, int(round(args.n ** 0.5)))
        return families.torus(side, 2, **kwargs)
    return families.build(args.family, n=args.n, **kwargs)


def _run_simulate(args) -> int:
    from repro.algorithms.registry import make
    from repro.analysis.convergence import horizon_for
    from repro.core.engine import Simulator
    from repro.core.loads import point_mass
    from repro.graphs.spectral import eigenvalue_gap

    graph = _build_graph(args)
    gap = eigenvalue_gap(graph)
    initial = point_mass(
        graph.num_nodes, args.tokens_per_node * graph.num_nodes
    )
    rounds = args.rounds
    if rounds is None:
        rounds = horizon_for(graph, initial, gap=gap)
    simulator = Simulator(graph, make(args.algorithm, seed=args.seed), initial)
    result = simulator.run(rounds)
    print(f"graph:      {graph.name} (d+={graph.total_degree})")
    print(f"mu:         {gap:.5g}")
    print(f"rounds:     {result.rounds_executed}")
    print(f"discrepancy {result.initial_discrepancy} -> "
          f"{result.final_discrepancy}")
    if args.csv:
        from repro.analysis.export import write_trajectory_csv

        write_trajectory_csv(result.discrepancy_history, args.csv)
        print(f"wrote {args.csv}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        print("available experiments:")
        table = EXPERIMENTS
        for experiment_id in sorted(table, key=_experiment_key):
            print(f"  {experiment_id}")
        print("full-size variants exist for:", ", ".join(
            sorted(set(FULL_EXPERIMENTS) & set(EXPERIMENTS))
        ))
        return 0
    if args.command == "run":
        only = tuple(args.experiments) or None
        results = run_all(fast=not args.full, only=only)
        payload = []
        for result in results:
            if args.markdown:
                print(result.to_markdown())
            else:
                print(result.to_text())
            print(f"(elapsed: {result.elapsed_seconds:.2f}s)")
            print()
            payload.append(json.loads(result.to_json()))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}")
        return 0
    if args.command == "simulate":
        return _run_simulate(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _experiment_key(experiment_id: str) -> tuple:
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    return (int(digits) if digits else 0, experiment_id)


if __name__ == "__main__":
    sys.exit(main())
