"""Declarative scenario specifications.

The paper's statements are over *ensembles* — many graphs × algorithms
× initial vectors — so the public API is built around a declarative
:class:`Scenario`: what graph (:class:`GraphSpec`), what workload
(:class:`LoadSpec`), what algorithm (:class:`AlgorithmSpec`), when to
stop (:class:`StopRule`), and how many replicas.  Scenarios round-trip
through plain dictionaries (JSON/CLI use) and compose into cartesian
sweeps via :class:`ScenarioSuite`.

Example::

    scenario = Scenario(
        graph=GraphSpec("random_regular", {"n": 64, "degree": 4, "seed": 1}),
        algorithm=AlgorithmSpec("rotor_router"),
        loads=LoadSpec("point_mass", {"tokens": 6400}),
        stop=StopRule.fixed(200),
        replicas=4,
    )
    result = scenario.run()

Execution is delegated either to the looped
:class:`~repro.core.engine.Simulator` (one per replica; required by
legacy monitors and sends-consuming probes) or to the vectorized
:class:`~repro.scenarios.batch.BatchRunner`, which stacks all replicas
into one ``(replicas, n)`` array.  Loads-only probes
(:class:`~repro.core.probes.ProbeSpec` entries in :attr:`Scenario.\
probes`) ride both executors — and the structured engine — without
forcing the slow path.  Both executors produce identical trajectories
replica-for-replica.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.algorithms.registry import make
from repro.core.balancer import Balancer
from repro.core.engine import SimulationResult, Simulator
from repro.core.loads import LOAD_SPECS
from repro.core.metrics import (
    discrepancy,
    final_plateau,
    time_to_discrepancy,
)
from repro.core.monitors import LoadBoundsMonitor, Monitor
from repro.core.probes import Probe, ProbeSpec, build_probes, loads_only
from repro.core.trace import RunRecord
from repro.dynamics.spec import DynamicsSpec, as_injector
from repro.engines import ENGINES, engine_names, split_engine_spec
from repro.faults.spec import FaultSpec, as_fault_schedule
from repro.topology.spec import TopologySpec, as_topology_schedule
from repro.graphs import families
from repro.graphs.balancing import BalancingGraph
from repro.registry import freeze_params as _freeze
from repro.scenarios.batch import BatchRunner

STOP_KINDS = ("rounds", "target_discrepancy", "converged")


def canonical_json(data) -> str:
    """The canonical serialization used for content-addressed hashing.

    Key order and separators are pinned so the same logical dictionary
    always produces the same byte string — the foundation of the result
    cache's "no false hits" guarantee.  Values that are not plain JSON
    raise ``TypeError`` (no ``default=`` fallback): a lossy stringified
    stand-in — numpy truncates large arrays to ``[0 1 ... 999]`` — could
    hash two different scenarios to the same key.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GraphSpec:
    """A graph family by name plus its construction parameters."""

    family: str
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.family, _freeze(self.params)))

    def build(self) -> BalancingGraph:
        return families.build(self.family, **self.params)

    def to_dict(self) -> dict:
        return {"family": self.family, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "GraphSpec":
        return cls(data["family"], dict(data.get("params", {})))


@dataclass(frozen=True)
class LoadSpec:
    """A named initial-load distribution plus its parameters.

    Names resolve against :data:`repro.core.loads.LOAD_SPECS`
    (``point_mass``, ``uniform_random``, ``adversarial_split``,
    ``skewed``, ...).  If the params include a ``seed``, replica ``r``
    uses ``seed + r`` so replicas are independent samples; seedless
    (deterministic) workloads are identical across replicas.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.name, _freeze(self.params)))

    def build(self, n: int, replica: int = 0) -> np.ndarray:
        params = dict(self.params)
        if replica and "seed" in params:
            params["seed"] += replica
        return LOAD_SPECS.create(self.name, n=n, **params)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "LoadSpec":
        return cls(data["name"], dict(data.get("params", {})))


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered balancer by name plus seed and extra parameters.

    Replica ``r`` is built with ``seed + r`` so randomized schemes get
    independent, reproducible streams; deterministic schemes ignore the
    seed entirely.
    """

    name: str
    seed: int = 0
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.name, self.seed, _freeze(self.params)))

    def build(self, replica: int = 0) -> Balancer:
        return make(self.name, seed=self.seed + replica, **self.params)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AlgorithmSpec":
        return cls(
            data["name"],
            int(data.get("seed", 0)),
            dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class StopRule:
    """When a replica's run ends.

    Kinds:

    * ``rounds`` — exactly ``rounds`` rounds (the paper's ``O(T)``
      measurements);
    * ``target_discrepancy`` — until discrepancy ``<= target``, up to
      ``max_rounds`` (Theorem 3.3's time-to-``O(d)`` column);
    * ``converged`` — until the discrepancy has not improved for
      ``window`` consecutive checks, up to ``max_rounds``.
    """

    kind: str = "rounds"
    rounds: int | None = None
    target: int | None = None
    max_rounds: int | None = None
    check_every: int = 1
    window: int = 16

    def __post_init__(self) -> None:
        if self.kind not in STOP_KINDS:
            raise ValueError(
                f"unknown stop kind {self.kind!r}; known: {STOP_KINDS}"
            )
        if self.kind == "rounds":
            if self.rounds is None or self.rounds < 0:
                raise ValueError("kind='rounds' needs rounds >= 0")
        elif self.max_rounds is None or self.max_rounds < 0:
            raise ValueError(f"kind={self.kind!r} needs max_rounds >= 0")
        if self.kind == "target_discrepancy" and self.target is None:
            raise ValueError("kind='target_discrepancy' needs a target")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    @classmethod
    def fixed(cls, rounds: int) -> "StopRule":
        return cls(kind="rounds", rounds=rounds)

    @classmethod
    def discrepancy(
        cls, target: int, max_rounds: int, check_every: int = 1
    ) -> "StopRule":
        return cls(
            kind="target_discrepancy",
            target=target,
            max_rounds=max_rounds,
            check_every=check_every,
        )

    @classmethod
    def converged(
        cls, max_rounds: int, window: int = 16, check_every: int = 1
    ) -> "StopRule":
        return cls(
            kind="converged",
            max_rounds=max_rounds,
            window=window,
            check_every=check_every,
        )

    def predicate(self) -> Callable[[np.ndarray], bool] | None:
        """A fresh per-replica stop predicate (None for fixed rounds)."""
        if self.kind == "rounds":
            return None
        if self.kind == "target_discrepancy":
            target = self.target

            def reached(loads: np.ndarray) -> bool:
                return discrepancy(loads) <= target

            return reached
        best: int | None = None
        stale = 0
        window = self.window

        def converged(loads: np.ndarray) -> bool:
            nonlocal best, stale
            current = discrepancy(loads)
            if best is None or current < best:
                best, stale = current, 0
            else:
                stale += 1
            return stale >= window

        return converged

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        for key in ("rounds", "target", "max_rounds"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.check_every != 1:
            data["check_every"] = self.check_every
        if self.kind == "converged":
            data["window"] = self.window
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StopRule":
        return cls(**data)


@dataclass
class ScenarioResult:
    """Outcome of one scenario: per-replica results, probes, records.

    ``graph`` may be ``None`` for results reassembled from cached or
    remotely computed records (the executor subsystem ships
    :class:`~repro.core.trace.RunRecord`\\ s, not graphs); it is rebuilt
    lazily from the scenario's spec when actually needed.
    """

    scenario: "Scenario"
    graph: BalancingGraph | None
    executor: str
    results: list[SimulationResult]
    monitors: list[tuple]

    def _resolve_graph(self) -> BalancingGraph:
        if self.graph is None:
            self.graph = self.scenario.build_graph()
        return self.graph

    @property
    def records(self) -> list[RunRecord]:
        """Per-replica columnar records (engine facts + probe output)."""
        return [
            result.record
            for result in self.results
            if result.record is not None
        ]

    def __len__(self) -> int:
        return len(self.results)

    def replica(self, index: int = 0) -> SimulationResult:
        return self.results[index]

    @property
    def final_discrepancies(self) -> list[int]:
        return [result.final_discrepancy for result in self.results]

    def monitor(self, monitor_type: type, replica: int = 0):
        """The first attached monitor of ``monitor_type`` (or None)."""
        for monitor in self.monitors[replica]:
            if isinstance(monitor, monitor_type):
                return monitor
        return None

    def record(self, replica: int = 0) -> RunRecord | None:
        """Replica ``replica``'s columnar record (None if unavailable)."""
        return self.results[replica].record

    def replica_summary(
        self, replica: int = 0, plateau_window: int = 16
    ) -> dict:
        """Measurement row for one replica (plateau, min load, target).

        Engine facts come first; every probe's scalar summary is merged
        in (``min_load`` from the load-bounds probe, ``period`` from
        the period detector, ...), so drivers read one uniform dict
        instead of fishing values out of monitor instances.
        """
        result = self.results[replica]
        history = result.discrepancy_history
        data = result.summary()
        data["plateau"] = (
            final_plateau(history, plateau_window)
            if history
            else result.final_discrepancy
        )
        record = result.record
        if record is not None:
            for key, value in record.summary.items():
                data.setdefault(key, value)
        bounds = self.monitor(LoadBoundsMonitor, replica)
        if bounds is not None:
            data["min_load"] = bounds.min_ever
        stop = self.scenario.stop
        if stop.kind == "target_discrepancy" and history:
            data["target"] = stop.target
            data["time_to_target"] = time_to_discrepancy(
                history, stop.target
            )
        return data

    def summary(self) -> dict:
        """Aggregate summary over replicas."""
        finals = self.final_discrepancies
        return {
            "scenario": self.scenario.name or self.scenario.label(),
            "graph": self._resolve_graph().name,
            "replicas": len(self.results),
            "executor": self.executor,
            "final_discrepancy_min": min(finals),
            "final_discrepancy_max": max(finals),
            "final_discrepancy_mean": sum(finals) / len(finals),
            "rounds": [r.rounds_executed for r in self.results],
        }


@dataclass
class Scenario:
    """One declarative unit of work: graph × workload × algorithm × stop.

    Attributes:
        graph: a :class:`GraphSpec`, or a prebuilt
            :class:`BalancingGraph` (programmatic use; such scenarios
            cannot be serialized with :meth:`to_dict`).
        algorithm: the balancer spec; replica ``r`` runs with
            ``seed + r``.
        loads: the initial-load spec; seeded workloads offset their seed
            per replica.
        stop: when each replica ends.
        replicas: independent repetitions of the run.
        probes: capability-typed observers, instantiated fresh per
            replica: :class:`~repro.core.probes.ProbeSpec`\\ s (which
            serialize with the scenario) or probe factories (e.g. the
            class ``LoadBoundsMonitor`` itself; not serializable).
            Loads-only probes keep multi-replica scenarios on the
            vectorized batch executor and the structured engine;
            sends-consuming probes fall back to the looped executor.
        dynamics: optional dynamic workload — a
            :class:`~repro.dynamics.spec.DynamicsSpec` (serializes with
            the scenario; replica ``r`` gets a fresh injector built
            with ``seed + r``) or, for single-replica programmatic use,
            a ready :class:`~repro.dynamics.injectors.Injector`.
            Injection is a vector add, so dynamic scenarios keep every
            fast path (structured engine, batch executor).
        faults: optional network-fault schedule — a
            :class:`~repro.faults.spec.FaultSpec` (serializes with the
            scenario; replica ``r`` gets a fresh schedule built with
            ``seed + r``) or, for single-replica programmatic use, a
            ready :class:`~repro.faults.schedules.FaultSchedule`.
            Fault corrections are sparse ``O(faults)`` fix-ups after
            the fault-free round, so faulty scenarios keep the
            structured engine and the batch executor (only the
            batch executor's fully-vectorized inner loop is bypassed).
        topology: optional dynamic-topology schedule — a
            :class:`~repro.topology.spec.TopologySpec` (serializes with
            the scenario; replica ``r`` gets a fresh schedule built
            with ``seed + r``) or, for single-replica programmatic
            use, a ready
            :class:`~repro.topology.schedules.TopologySchedule`.  Each
            replica churns its own private mutable graph copy; the
            engines apply events incrementally, so churny scenarios
            keep the structured engine and the batch executor (graphs
            diverge per replica, so the batch executor's
            fully-vectorized inner loop is bypassed).  Mutually
            exclusive with ``faults``.
        monitors: legacy per-replica monitor *factories*.  Monitors
            force the looped executor and the dense engine and are not
            serialized — prefer ``probes``.
        record_history: keep per-round discrepancy trajectories.
        validate_every_round: structural validation each round.
        name: optional label used in reports.
        engine: execution backend for every replica — any name
            registered in :data:`repro.engines.ENGINES` or ``"auto"``
            (default).  Serialized (and hashed into suite cache keys)
            only when it differs from ``"auto"``, so existing cached
            results and goldens stay valid.
    """

    graph: GraphSpec | BalancingGraph
    algorithm: AlgorithmSpec
    loads: LoadSpec
    stop: StopRule
    replicas: int = 1
    probes: tuple = ()
    dynamics: DynamicsSpec | None = None
    faults: FaultSpec | None = None
    topology: TopologySpec | None = None
    monitors: tuple[Callable[[], Monitor], ...] = ()
    record_history: bool = True
    validate_every_round: bool = True
    name: str = ""
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if (
            self.engine != "auto"
            and split_engine_spec(self.engine)[0] not in ENGINES
        ):
            raise ValueError(
                f"unknown engine {self.engine!r}; registered engines: "
                f"{', '.join(engine_names())} (or 'auto')"
            )
        if (
            self.dynamics is not None
            and not isinstance(self.dynamics, DynamicsSpec)
            and self.replicas > 1
        ):
            raise ValueError(
                "multi-replica scenarios need fresh injectors per "
                "replica; pass a DynamicsSpec instead of an instance "
                f"({type(self.dynamics).__name__})"
            )
        if (
            self.faults is not None
            and not isinstance(self.faults, FaultSpec)
            and self.replicas > 1
        ):
            raise ValueError(
                "multi-replica scenarios need fresh fault schedules "
                "per replica; pass a FaultSpec instead of an instance "
                f"({type(self.faults).__name__})"
            )
        if self.faults is not None and self.topology is not None:
            raise ValueError(
                "faults and topology cannot be combined in one "
                "scenario (fault schedules precompute canonical port "
                "maps that topology churn invalidates)"
            )
        if (
            self.topology is not None
            and not isinstance(self.topology, TopologySpec)
            and self.replicas > 1
        ):
            raise ValueError(
                "multi-replica scenarios need fresh topology schedules "
                "per replica; pass a TopologySpec instead of an "
                f"instance ({type(self.topology).__name__})"
            )
        if self.replicas > 1:
            # Anything that is not a spec or a factory is a ready
            # instance (Probe or duck-typed legacy observer) whose
            # state would be shared — and corrupted — across replicas.
            shared = [
                spec
                for spec in self.probes
                if not isinstance(spec, ProbeSpec) and not callable(spec)
            ]
            if shared:
                raise ValueError(
                    "multi-replica scenarios need fresh probes per "
                    "replica; pass ProbeSpecs or factories instead of "
                    f"instances ({type(shared[0]).__name__})"
                )

    def build_probe_set(self) -> tuple[Probe, ...]:
        """One replica's freshly built probe instances."""
        return build_probes(self.probes)

    # -- construction helpers ------------------------------------------

    def label(self) -> str:
        graph = (
            self.graph.name
            if isinstance(self.graph, BalancingGraph)
            else self.graph.family
        )
        label = f"{self.algorithm.name} @ {graph} / {self.loads.name}"
        if self.dynamics is not None:
            label += f" + {self.dynamics.name}"
        if self.faults is not None:
            label += f" ! {self.faults.name}"
        if self.topology is not None:
            label += f" ~ {self.topology.name}"
        return label

    def build_graph(self) -> BalancingGraph:
        if isinstance(self.graph, BalancingGraph):
            return self.graph
        return self.graph.build()

    def build_loads(
        self, graph: BalancingGraph, replica: int = 0
    ) -> np.ndarray:
        return self.loads.build(graph.num_nodes, replica)

    def build_balancer(self, replica: int = 0) -> Balancer:
        return self.algorithm.build(replica)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        if isinstance(self.graph, BalancingGraph):
            raise ValueError(
                "scenarios holding a prebuilt graph object cannot be "
                "serialized; use a GraphSpec"
            )
        if self.monitors:
            raise ValueError(
                "monitor factories cannot be serialized; attach them "
                "programmatically after from_dict (or use ProbeSpecs)"
            )
        not_specs = [
            spec
            for spec in self.probes
            if not isinstance(spec, ProbeSpec)
        ]
        if not_specs:
            raise ValueError(
                "probe factories/instances cannot be serialized; use "
                "registered ProbeSpecs (repro.core.probes.register_probe)"
            )
        if self.dynamics is not None and not isinstance(
            self.dynamics, DynamicsSpec
        ):
            raise ValueError(
                "injector instances cannot be serialized; use a "
                "registered DynamicsSpec "
                "(repro.dynamics.register_injector)"
            )
        if self.faults is not None and not isinstance(
            self.faults, FaultSpec
        ):
            raise ValueError(
                "fault-schedule instances cannot be serialized; use a "
                "registered FaultSpec (repro.faults.register_fault)"
            )
        if self.topology is not None and not isinstance(
            self.topology, TopologySpec
        ):
            raise ValueError(
                "topology-schedule instances cannot be serialized; use "
                "a registered TopologySpec "
                "(repro.topology.register_topology)"
            )
        data = {
            "graph": self.graph.to_dict(),
            "algorithm": self.algorithm.to_dict(),
            "loads": self.loads.to_dict(),
            "stop": self.stop.to_dict(),
            "replicas": self.replicas,
            "record_history": self.record_history,
            "validate_every_round": self.validate_every_round,
            "name": self.name,
        }
        if self.engine != "auto":
            data["engine"] = self.engine
        if self.probes:
            data["probes"] = [spec.to_dict() for spec in self.probes]
        if self.dynamics is not None:
            data["dynamics"] = self.dynamics.to_dict()
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.topology is not None:
            data["topology"] = self.topology.to_dict()
        return data

    def canonical_json(self) -> str:
        """Canonical byte-stable JSON of this scenario (see
        :func:`canonical_json`).  Raises for scenarios that cannot be
        serialized (prebuilt graphs, monitor factories, probe
        instances) — exactly the scenarios that cannot be cached or
        shipped to worker processes."""
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        """SHA-256 of the canonical scenario JSON."""
        return content_hash(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            graph=GraphSpec.from_dict(data["graph"]),
            algorithm=AlgorithmSpec.from_dict(data["algorithm"]),
            loads=LoadSpec.from_dict(data["loads"]),
            stop=StopRule.from_dict(data["stop"]),
            replicas=int(data.get("replicas", 1)),
            probes=tuple(
                ProbeSpec.from_dict(entry)
                for entry in data.get("probes", [])
            ),
            dynamics=(
                DynamicsSpec.from_dict(data["dynamics"])
                if data.get("dynamics") is not None
                else None
            ),
            faults=(
                FaultSpec.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            topology=(
                TopologySpec.from_dict(data["topology"])
                if data.get("topology") is not None
                else None
            ),
            record_history=bool(data.get("record_history", True)),
            validate_every_round=bool(
                data.get("validate_every_round", True)
            ),
            name=data.get("name", ""),
            engine=data.get("engine", "auto"),
        )

    # -- execution ------------------------------------------------------

    def run(
        self,
        executor: str = "auto",
        graph: BalancingGraph | None = None,
        replica_range: range | None = None,
    ) -> ScenarioResult:
        """Execute every replica and collect the results.

        Args:
            executor: ``"loop"`` (one :class:`Simulator` per replica),
                ``"batch"`` (stacked :class:`BatchRunner`), or
                ``"auto"`` — batch for multi-replica scenarios whose
                observers are loads-only probes, loop otherwise.
            graph: optional prebuilt graph (cache for sweeps that reuse
                one graph across many scenarios).
            replica_range: execute only this absolute replica range
                (default: all of ``range(self.replicas)``).  Replica
                ``r`` always runs with seed offset ``r`` regardless of
                which range carries it, so a scenario split across
                shards produces bit-identical per-replica results —
                the contract the parallel suite executor relies on.
        """
        if executor not in ("auto", "loop", "batch"):
            raise ValueError(f"unknown executor {executor!r}")
        if replica_range is None:
            replica_range = range(self.replicas)
        elif (
            replica_range.step != 1
            or replica_range.start < 0
            or replica_range.stop > self.replicas
            or len(replica_range) == 0
        ):
            raise ValueError(
                f"replica_range {replica_range!r} must be a non-empty "
                f"unit-step range within [0, {self.replicas})"
            )
        probe_preview = self.build_probe_set()
        if executor == "auto":
            executor = (
                "batch"
                if self.replicas > 1
                and not self.monitors
                and loads_only(probe_preview)
                else "loop"
            )
        if executor == "batch":
            if self.monitors:
                raise ValueError(
                    "monitors require the looped executor "
                    "(run(executor='loop'))"
                )
            if not loads_only(probe_preview):
                bad = next(
                    p for p in probe_preview if p.needs != "loads"
                )
                raise ValueError(
                    f"probe {type(bad).__name__} consumes sends "
                    "matrices and requires the looped executor "
                    "(run(executor='loop'))"
                )
        graph = graph if graph is not None else self.build_graph()
        if executor == "loop":
            return self._run_looped(graph, replica_range)
        return self._run_batched(graph, replica_range)

    def _run_looped(
        self, graph: BalancingGraph, replica_range: range
    ) -> ScenarioResult:
        results: list[SimulationResult] = []
        monitor_sets: list[tuple] = []
        for replica in replica_range:
            monitors = tuple(factory() for factory in self.monitors)
            probe_set = self.build_probe_set()
            simulator = Simulator(
                graph,
                self.build_balancer(replica),
                self.build_loads(graph, replica),
                monitors=monitors,
                probes=probe_set,
                dynamics=as_injector(self.dynamics, replica),
                faults=as_fault_schedule(self.faults, replica),
                topology=as_topology_schedule(self.topology, replica),
                record_history=self.record_history,
                validate_every_round=self.validate_every_round,
                engine=self.engine,
            )
            stop = self.stop
            if stop.kind == "rounds":
                result = simulator.run(stop.rounds)
            else:
                result = simulator.run_until(
                    stop.predicate(),
                    stop.max_rounds,
                    check_every=stop.check_every,
                )
            if result.record is not None:
                result.record.replica = replica
            results.append(result)
            monitor_sets.append(tuple(simulator.monitors))
        return ScenarioResult(
            scenario=self,
            graph=graph,
            executor="loop",
            results=results,
            monitors=monitor_sets,
        )

    def _run_batched(
        self, graph: BalancingGraph, replica_range: range
    ) -> ScenarioResult:
        first = self.build_balancer(replica_range.start)
        if (
            first.supports_batched_sends
            and first.properties.stateless
            and first.properties.deterministic
            # Under topology churn every replica's graph diverges, so
            # even stateless balancers need one instance per replica
            # (each bound to its own mutating graph copy).
            and self.topology is None
        ):
            balancers: list[Balancer] = [first]
        else:
            balancers = [first] + [
                self.build_balancer(replica)
                for replica in replica_range[1:]
            ]
        initial = np.stack(
            [
                self.build_loads(graph, replica)
                for replica in replica_range
            ]
        )
        probe_sets = (
            [self.build_probe_set() for _ in replica_range]
            if self.probes
            else None
        )
        # Injectors and fault schedules are built here with *absolute*
        # replica indices so a replica sub-range sees the same seed
        # offsets as a full run.
        dynamics = self.dynamics
        if isinstance(dynamics, DynamicsSpec):
            dynamics = [
                dynamics.build(replica) for replica in replica_range
            ]
        faults = self.faults
        if isinstance(faults, FaultSpec):
            faults = [
                faults.build(replica) for replica in replica_range
            ]
        topology = self.topology
        if isinstance(topology, TopologySpec):
            topology = [
                topology.build(replica) for replica in replica_range
            ]
        runner = BatchRunner(
            graph,
            balancers,
            initial,
            probes=probe_sets,
            dynamics=dynamics,
            faults=faults,
            topology=topology,
            record_history=self.record_history,
            validate_every_round=self.validate_every_round,
            engine=self.engine,
        )
        stop = self.stop
        if stop.kind == "rounds":
            batch = runner.run(stop.rounds)
        else:
            predicates = [stop.predicate() for _ in replica_range]
            batch = runner.run_until(
                predicates,
                stop.max_rounds,
                check_every=stop.check_every,
            )
        results = batch.as_simulation_results()
        for replica, result in zip(replica_range, results):
            if result.record is not None:
                result.record.replica = replica
        return ScenarioResult(
            scenario=self,
            graph=graph,
            executor="batch",
            results=results,
            monitors=(
                probe_sets
                if probe_sets is not None
                else [() for _ in replica_range]
            ),
        )


def _as_tuple(value, kinds: tuple[type, ...]) -> tuple:
    if isinstance(value, kinds):
        return (value,)
    return tuple(value)


@dataclass
class ScenarioSuite:
    """An ordered collection of scenarios (usually a cartesian sweep)."""

    scenarios: tuple[Scenario, ...]
    name: str = ""

    def __post_init__(self) -> None:
        self.scenarios = tuple(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    @classmethod
    def cartesian(
        cls,
        *,
        graphs: GraphSpec | BalancingGraph | Sequence,
        algorithms: AlgorithmSpec | Sequence[AlgorithmSpec],
        loads: LoadSpec | Sequence[LoadSpec],
        stop: StopRule | Sequence[StopRule],
        replicas: int = 1,
        probes: tuple = (),
        dynamics: DynamicsSpec | None = None,
        faults: FaultSpec | None = None,
        topology: TopologySpec | None = None,
        monitors: tuple[Callable[[], Monitor], ...] = (),
        record_history: bool = True,
        validate_every_round: bool = True,
        name: str = "",
        engine: str = "auto",
    ) -> "ScenarioSuite":
        """The cartesian product graphs × algorithms × loads × stops.

        Axis order is ``graphs`` (slowest) → ``algorithms`` → ``loads``
        → ``stop`` (fastest), so sweeps group naturally by graph.
        """
        scenarios = tuple(
            Scenario(
                graph=graph,
                algorithm=algorithm,
                loads=load,
                stop=stop_rule,
                replicas=replicas,
                probes=probes,
                dynamics=dynamics,
                faults=faults,
                topology=topology,
                monitors=monitors,
                record_history=record_history,
                validate_every_round=validate_every_round,
                engine=engine,
            )
            for graph, algorithm, load, stop_rule in product(
                _as_tuple(graphs, (GraphSpec, BalancingGraph)),
                _as_tuple(algorithms, (AlgorithmSpec,)),
                _as_tuple(loads, (LoadSpec,)),
                _as_tuple(stop, (StopRule,)),
            )
        )
        return cls(scenarios, name=name)

    def canonical_json(self) -> str:
        """Canonical byte-stable JSON of the whole suite."""
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        """SHA-256 of the canonical suite JSON."""
        return content_hash(self.to_dict())

    def run(
        self,
        executor: str = "auto",
        graph: BalancingGraph | None = None,
        *,
        workers: int | None = None,
        cache=None,
        retry=None,
        timeout: float | None = None,
        on_shard_failure: str | None = None,
    ) -> list[ScenarioResult]:
        """Run every scenario in order; see :meth:`Scenario.run`.

        ``graph`` is a prebuilt-graph cache — it must be the graph the
        shared spec builds (graph construction is deterministic, so
        this is a pure build-once optimization) and is only legal when
        every scenario in the suite shares one graph spec: a
        multi-graph sweep would otherwise silently run each scenario
        on the wrong topology.  With ``workers > 1`` the prebuilt
        object is not shipped to worker processes; they rebuild from
        the spec, which by the above contract is the same graph.  The
        executor also bypasses the cache entirely for override runs,
        since a cache key can only attest the spec.

        ``workers`` and ``cache`` route execution through the
        :mod:`repro.exec` subsystem: ``workers > 1`` fans independent
        shards out over a process pool, ``cache`` (a
        :class:`~repro.exec.ResultCache` or a directory path) skips
        shards whose records are already cached.  Both default to the
        ambient :func:`repro.exec.configure` context — pass
        ``cache=False`` to opt this call out of an inherited cache
        (e.g. a run drawing entropy outside its spec).  Drivers built
        on ``ScenarioSuite.run`` therefore inherit parallelism and
        caching without any config plumbing, and results are
        bit-identical to the serial path in every mode.

        ``retry``, ``timeout``, and ``on_shard_failure`` make the run
        fault tolerant (see :mod:`repro.exec.retry`): ``retry`` (a
        policy or attempt count) re-attempts transiently failing
        shards, ``timeout`` kills shards over a per-shard wall-clock
        budget, and ``on_shard_failure="partial"`` degrades gracefully
        — instead of raising :class:`~repro.exec.SuiteExecutionError`,
        the run returns a :class:`~repro.exec.PartialSuiteResult` (a
        list of the completed outcomes carrying ``.failures``), with
        healthy shards still cached so a later run only fills the
        holes.  All three default to the ambient configuration; pass
        ``retry=False`` / ``timeout=False`` to opt out of inherited
        settings.
        """
        from repro.exec.context import current as current_exec_config
        from repro.exec.retry import as_retry_policy

        config = current_exec_config()
        if workers is None:
            workers = config.workers
        if cache is False:
            cache = None
        elif cache is None:
            cache = config.cache
        if retry is False:
            retry = None
        elif retry is None:
            retry = config.retry
        else:
            retry = as_retry_policy(retry)
        if timeout is False:
            timeout = None
        elif timeout is None:
            timeout = config.timeout
        if on_shard_failure is None:
            on_shard_failure = config.on_shard_failure
        if (
            workers > 1
            or cache is not None
            or retry is not None
            or timeout is not None
            or on_shard_failure != "raise"
        ):
            from repro.exec.runner import (
                PartialSuiteResult,
                SuiteExecutor,
            )

            report = SuiteExecutor(
                workers=workers,
                cache=cache,
                executor=executor,
                max_replicas_per_shard=config.max_replicas_per_shard,
                retry=retry,
                timeout=timeout,
                on_shard_failure=on_shard_failure,
            ).run(self, graph=graph)
            if on_shard_failure == "partial":
                return PartialSuiteResult(report.outcomes, report)
            return report.outcomes
        if graph is not None and self.scenarios:
            first = self.scenarios[0].graph
            if any(s.graph != first for s in self.scenarios[1:]):
                raise ValueError(
                    "graph= override is only valid when every scenario "
                    "in the suite shares one graph spec; this suite "
                    "sweeps multiple graphs"
                )
        # Scenarios sharing a GraphSpec share one built graph instance
        # (specs are deterministic, graphs immutable), so a sweep of k
        # algorithms over one graph builds it once, not k times.
        graph_cache: dict[GraphSpec, BalancingGraph] = {}
        results = []
        for scenario in self.scenarios:
            scenario_graph = graph
            if scenario_graph is None and isinstance(
                scenario.graph, GraphSpec
            ):
                try:
                    scenario_graph = graph_cache.get(scenario.graph)
                    if scenario_graph is None:
                        scenario_graph = scenario.graph.build()
                        graph_cache[scenario.graph] = scenario_graph
                except TypeError:  # unhashable custom param value
                    scenario_graph = None
            results.append(
                scenario.run(executor=executor, graph=scenario_graph)
            )
        return results

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSuite":
        return cls(
            tuple(
                Scenario.from_dict(entry)
                for entry in data.get("scenarios", [])
            ),
            name=data.get("name", ""),
        )
