"""Vectorized batch execution of scenario replicas.

The looped baseline runs one :class:`~repro.core.engine.Simulator` per
replica; every round then costs ``replicas`` sets of small numpy calls,
which at practical sizes (``n`` in the hundreds) is pure interpreter
overhead.  :class:`BatchRunner` instead stacks all replicas into one
``(replicas, n)`` array and executes a whole batch round with a handful
of large operations — the gather through the graph's reverse-port map,
the conservation check, and (for stateless schemes implementing
``sends_batch``) the send rule itself all broadcast over the replica
axis.

Like the looped engine, the runner executes each round either from the
balancer's dense ``(replicas, n, d+)`` sends or — when every balancer
implements ``sends_structured`` — matrix-free from compact
:class:`~repro.core.structured.StructuredRound` descriptions, which at
large ``n`` removes the dominant allocation entirely (``engine="auto"``
picks the structured path whenever it is available).

Semantics are bit-identical to the looped baseline: replica ``r`` of a
batch run produces the same load trajectory as a fresh ``Simulator``
driven with the same balancer and initial vector (the parity tests
enforce this replica-for-replica).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.balancer import Balancer
from repro.core.engine import SimulationResult
from repro.core.errors import (
    ConservationError,
    InvalidSendMatrix,
    NegativeLoadError,
)
from repro.core.loads import validate_delta, validate_load_matrix
from repro.engines import (
    ENGINES,
    STRUCTURED,
    create_engine,
    engine_names,
    split_engine_spec,
)
from repro.core.probes import Probe, build_probes, loads_only
from repro.faults.schedules import (
    apply_round_faults,
    dense_port_values,
    structured_port_values,
    validate_round_faults,
)
from repro.core.trace import RunRecord, build_record
from repro.graphs.balancing import BalancingGraph
from repro.topology.schedules import (
    apply_topology_events,
    validate_topology_events,
)


@dataclass
class BatchResult:
    """Outcome of a batch run: one row per replica.

    Attributes:
        initial_loads: ``(replicas, n)`` stacked starting vectors.
        final_loads: ``(replicas, n)`` vectors after the last round each
            replica executed.
        rounds_executed: per-replica executed round counts.
        stopped_early: per-replica early-stop flags (``run_until``).
        histories: per-replica discrepancy trajectories (empty lists if
            recording was off).
        records: per-replica columnar
            :class:`~repro.core.trace.RunRecord`\\ s (engine summary
            plus any attached probes' columns and scalars).
    """

    initial_loads: np.ndarray
    final_loads: np.ndarray
    rounds_executed: np.ndarray
    stopped_early: np.ndarray
    histories: list[list[int]] = field(default_factory=list)
    records: list[RunRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return self.initial_loads.shape[0]

    @property
    def final_discrepancies(self) -> np.ndarray:
        return self.final_loads.max(axis=1) - self.final_loads.min(axis=1)

    def replica(self, index: int) -> SimulationResult:
        """Replica ``index`` repackaged as a looped-engine result."""
        return SimulationResult(
            initial_loads=self.initial_loads[index].copy(),
            final_loads=self.final_loads[index].copy(),
            rounds_executed=int(self.rounds_executed[index]),
            discrepancy_history=(
                list(self.histories[index]) if self.histories else []
            ),
            stopped_early=bool(self.stopped_early[index]),
            record=(
                self.records[index] if self.records else None
            ),
        )

    def as_simulation_results(self) -> list[SimulationResult]:
        """All replicas as :class:`SimulationResult`, in replica order."""
        return [self.replica(index) for index in range(len(self))]


class BatchRunner:
    """Drives ``replicas`` independent runs as one stacked array.

    Args:
        graph: the shared balancing graph ``G+``.
        balancers: either one balancer per replica, or a single
            stateless balancer implementing ``sends_batch`` (shared
            across all replicas and evaluated fully vectorized).
        initial_loads: ``(replicas, n)`` nonnegative integer array.
        probes: per-replica observer sets — a sequence of ``replicas``
            collections of loads-only probes (specs, factories, or
            instances).  Loads-only is the price of staying on the
            stacked vectorized path; sends-consuming probes need the
            looped :class:`~repro.core.engine.Simulator`.
        dynamics: optional dynamic workload.  A
            :class:`~repro.dynamics.spec.DynamicsSpec` builds one fresh
            injector per replica (seeded specs offset ``seed + r``, so
            replica ``r``'s event stream is independent of the batch
            size); alternatively a sequence of ``replicas`` ready
            :class:`~repro.dynamics.injectors.Injector` instances.
            Deltas apply at the beginning of each round, before the
            balancing step, exactly as in the looped engine.
        faults: optional network-fault schedule.  A
            :class:`~repro.faults.spec.FaultSpec` builds one fresh
            schedule per replica (seeded specs offset ``seed + r``, so
            replica ``r``'s fault history is independent of the batch
            size); alternatively a sequence of ``replicas`` ready
            :class:`~repro.faults.schedules.FaultSchedule` instances.
            Each round opens with crash/recover epochs (before
            injection); the balancing step is then corrected for dead
            links (bounce-back) and dropped sends (tracked loss),
            exactly as in the looped engine.
        topology: optional dynamic-topology schedule.  A
            :class:`~repro.topology.spec.TopologySpec` builds one
            fresh schedule per replica (seeded specs offset
            ``seed + r``); alternatively a sequence of ``replicas``
            ready :class:`~repro.topology.schedules.TopologySchedule`
            instances.  Each replica gets its own private
            :class:`~repro.graphs.mutable.MutableBalancingGraph` copy
            (graphs diverge under churn) and its own balancer — the
            shared-balancer shortcut is incompatible with topology
            churn.  Events apply at the top of each round, before
            injection, exactly as in the looped engine.  Mutually
            exclusive with ``faults``.
        record_history: keep per-replica discrepancy trajectories.
        validate_every_round: structural validation of each batch of
            sends matrices or compact rounds (vectorized; cheap).
        engine: any name registered in :data:`repro.engines.ENGINES`
            (``"dense"``, ``"structured"``, ``"spmm"``,
            ``"compiled"``, ...) or ``"auto"`` (default) — auto picks
            ``structured`` when every balancer supports it.
    """

    def __init__(
        self,
        graph: BalancingGraph,
        balancers: Balancer | Sequence[Balancer],
        initial_loads: np.ndarray,
        *,
        probes: Sequence[Sequence] | None = None,
        dynamics=None,
        faults=None,
        topology=None,
        record_history: bool = True,
        validate_every_round: bool = True,
        engine: str = "auto",
    ) -> None:
        initial_loads = validate_load_matrix(initial_loads)
        if initial_loads.shape[1] != graph.num_nodes:
            raise InvalidSendMatrix(
                f"load rows have {initial_loads.shape[1]} entries for a "
                f"graph with {graph.num_nodes} nodes"
            )
        replicas = initial_loads.shape[0]
        if isinstance(balancers, Balancer):
            balancers = [balancers]
        self._topology_schedules = self._build_topology_schedules(
            topology, replicas
        )
        if self._topology_schedules is not None:
            if faults is not None:
                raise ValueError(
                    "faults and topology cannot be combined: fault "
                    "schedules precompute canonical port maps that "
                    "topology churn invalidates"
                )
            if len(balancers) != replicas:
                raise ValueError(
                    "topology churn diverges the graphs per replica, "
                    "so the shared-balancer shortcut is unavailable; "
                    f"pass one balancer per replica (got "
                    f"{len(balancers)} for {replicas})"
                )
            from repro.graphs.mutable import MutableBalancingGraph

            # Each replica churns its own private copy; the caller's
            # (possibly shared/prebuilt) graph is never mutated.
            self._graphs: list | None = [
                MutableBalancingGraph.from_graph(graph)
                for _ in range(replicas)
            ]
            balancers = [
                b.bind(g) for b, g in zip(balancers, self._graphs)
            ]
        else:
            self._graphs = None
            balancers = [b.bind(graph) for b in balancers]
        if len(balancers) == 1 and replicas > 1:
            shared = balancers[0]
            if not (
                shared.supports_batched_sends
                and shared.properties.stateless
            ):
                raise ValueError(
                    f"balancer {shared.name!r} cannot be shared across "
                    "replicas (needs sends_batch and statelessness); "
                    "pass one instance per replica instead"
                )
        elif len(balancers) != replicas:
            raise ValueError(
                f"got {len(balancers)} balancers for {replicas} replicas"
            )
        self.graph = graph
        self.balancers = balancers
        self._vectorized = (
            len(balancers) == 1
            and balancers[0].supports_batched_sends
            # Under churn every replica owns a divergent graph; the
            # shared-stack shortcut would evaluate them all against
            # the static base topology.
            and self._topology_schedules is None
        )
        if engine != "auto" and split_engine_spec(engine)[0] not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; registered engines: "
                f"{', '.join(engine_names())} (or 'auto')"
            )
        structured_ok = all(
            b.supports_structured_sends for b in balancers
        )
        if engine == "auto":
            engine = "structured" if structured_ok else "dense"
        self._backend = create_engine(engine)
        if self._backend.protocol == STRUCTURED and not structured_ok:
            missing = next(
                b.name
                for b in balancers
                if not b.supports_structured_sends
            )
            raise ValueError(
                f"balancer {missing!r} does not implement structured "
                "sends; use the dense engine"
            )
        self.engine = engine
        self.initial_loads = initial_loads.copy()
        self._loads = initial_loads.copy()
        self.record_history = record_history
        self.validate_every_round = validate_every_round
        self.num_replicas = replicas
        self.totals = initial_loads.sum(axis=1)
        self.round = 1  # paper convention: x_1 is the initial vector
        self._active = np.ones(replicas, dtype=bool)
        self._rounds_executed = np.zeros(replicas, dtype=np.int64)
        self._stopped_early = np.zeros(replicas, dtype=bool)
        self._injectors = self._build_injectors(dynamics, replicas)
        self._tokens_injected = np.zeros(replicas, dtype=np.int64)
        self._fault_schedules = self._build_fault_schedules(
            faults, replicas
        )
        self._round_faults: list = [None] * replicas
        self._tokens_dropped = np.zeros(replicas, dtype=np.int64)
        self._topology_rounds = np.zeros(replicas, dtype=np.int64)
        if self._topology_schedules is not None:
            for replica, schedule in enumerate(
                self._topology_schedules
            ):
                schedule.start(
                    self._graphs[replica], self.initial_loads[replica]
                )
        if self._fault_schedules is not None:
            for replica, schedule in enumerate(self._fault_schedules):
                schedule.start(graph, self.initial_loads[replica])
        if self._injectors is not None:
            for replica, injector in enumerate(self._injectors):
                injector.start(graph, self.initial_loads[replica])
        self.histories: list[list[int]] = (
            [
                [int(row.max() - row.min())]
                for row in initial_loads
            ]
            if record_history
            else []
        )
        if probes is None:
            self.probe_sets: list[tuple[Probe, ...]] = []
        else:
            if len(probes) != replicas:
                raise ValueError(
                    f"got {len(probes)} probe sets for "
                    f"{replicas} replicas"
                )
            self.probe_sets = [build_probes(spec) for spec in probes]
            for replica, probe_set in enumerate(self.probe_sets):
                if not loads_only(probe_set):
                    bad = next(
                        p for p in probe_set if p.needs != "loads"
                    )
                    raise ValueError(
                        f"probe {type(bad).__name__} consumes sends "
                        "matrices; the vectorized batch runner only "
                        "carries loads-only probes — use the looped "
                        "Simulator for sends-consuming probes"
                    )
                for probe in probe_set:
                    probe.start(
                        graph,
                        self._balancer_for(replica),
                        self.initial_loads[replica],
                    )
        self._has_probes = any(self.probe_sets)

    # ------------------------------------------------------------------

    @property
    def loads(self) -> np.ndarray:
        """Current ``(replicas, n)`` load stack (owned; copy to mutate)."""
        return self._loads

    def _balancer_for(self, replica: int) -> Balancer:
        return self.balancers[0 if len(self.balancers) == 1 else replica]

    def _graph_for(self, replica: int):
        """Replica ``replica``'s graph (private copy under churn)."""
        if self._graphs is not None:
            return self._graphs[replica]
        return self.graph

    @staticmethod
    def _build_injectors(dynamics, replicas: int):
        """One fresh injector per replica (or None for static runs)."""
        if dynamics is None:
            return None
        from repro.dynamics.injectors import Injector
        from repro.dynamics.spec import DynamicsSpec

        if isinstance(dynamics, DynamicsSpec):
            return [dynamics.build(replica) for replica in range(replicas)]
        if isinstance(dynamics, Injector):
            if replicas != 1:
                raise ValueError(
                    "a single Injector instance cannot be shared across "
                    f"{replicas} replicas (its state would be corrupted); "
                    "pass a DynamicsSpec or one instance per replica"
                )
            return [dynamics]
        injectors = list(dynamics)
        if len(injectors) != replicas:
            raise ValueError(
                f"got {len(injectors)} injectors for {replicas} replicas"
            )
        return injectors

    @staticmethod
    def _build_fault_schedules(faults, replicas: int):
        """One fresh fault schedule per replica (or None when fault-free)."""
        if faults is None:
            return None
        from repro.faults.schedules import FaultSchedule
        from repro.faults.spec import FaultSpec

        if isinstance(faults, FaultSpec):
            return [faults.build(replica) for replica in range(replicas)]
        if isinstance(faults, FaultSchedule):
            if replicas != 1:
                raise ValueError(
                    "a single FaultSchedule instance cannot be shared "
                    f"across {replicas} replicas (its state would be "
                    "corrupted); pass a FaultSpec or one instance per "
                    "replica"
                )
            return [faults]
        schedules = list(faults)
        if len(schedules) != replicas:
            raise ValueError(
                f"got {len(schedules)} fault schedules for "
                f"{replicas} replicas"
            )
        return schedules

    @staticmethod
    def _build_topology_schedules(topology, replicas: int):
        """One fresh topology schedule per replica (or None if static)."""
        if topology is None:
            return None
        from repro.topology.schedules import TopologySchedule
        from repro.topology.spec import TopologySpec

        if isinstance(topology, TopologySpec):
            return [
                topology.build(replica) for replica in range(replicas)
            ]
        if isinstance(topology, TopologySchedule):
            if replicas != 1:
                raise ValueError(
                    "a single TopologySchedule instance cannot be "
                    f"shared across {replicas} replicas (its state "
                    "would be corrupted); pass a TopologySpec or one "
                    "instance per replica"
                )
            return [topology]
        schedules = list(topology)
        if len(schedules) != replicas:
            raise ValueError(
                f"got {len(schedules)} topology schedules for "
                f"{replicas} replicas"
            )
        return schedules

    def _apply_topology_events(self) -> None:
        """Open the round with each replica's topology churn events.

        Mirrors the looped engine exactly: each replica's schedule
        mutates that replica's private graph copy in place (frozen
        ``run_until`` replicas stop churning, just as a stopped
        Simulator stops stepping) and its balancer repairs its
        graph-derived structures from the dirty node set only.
        """
        for replica in np.flatnonzero(self._active).tolist():
            schedule = self._topology_schedules[replica]
            graph = self._graphs[replica]
            row = self._loads[replica]
            events = schedule.round_events(self.round, row)
            if events is None or events.is_empty():
                continue
            if self.validate_every_round and not events.trusted:
                validate_topology_events(events, graph)
            apply_topology_events(graph, events, row)
            dirty = graph.consume_dirty()
            self._balancer_for(replica).refresh_topology(graph, dirty)
            self._backend.refresh_topology(graph, dirty)
            self._topology_rounds[replica] += 1

    def _apply_fault_events(self) -> None:
        """Open the round with each replica's fault-schedule epochs.

        Mirrors the looped engine exactly: crash/recover load movement
        lands before injection (frozen ``run_until`` replicas stop
        seeing fault events, just as a stopped Simulator stops
        stepping), and the round's dead/dropped port sets are stashed
        for the balancing step to correct against.
        """
        for replica in np.flatnonzero(self._active).tolist():
            schedule = self._fault_schedules[replica]
            row = self._loads[replica]
            faults = schedule.round_state(self.round, row)
            if faults is not None:
                if self.validate_every_round and not faults.trusted:
                    validate_round_faults(faults, self.graph)
                if faults.load_delta is not None:
                    delta = validate_delta(
                        faults.load_delta, row, schedule.name, self.round
                    )
                    row += delta
                    self.totals[replica] += int(delta.sum())
            self._round_faults[replica] = faults

    def _apply_injection(self) -> None:
        """Apply this round's load events to every active replica.

        Mirrors the looped engine exactly: each replica's own injector
        sees its own row (frozen ``run_until`` replicas stop receiving
        events, just as a stopped Simulator stops stepping), and the
        per-replica token total shifts by the delta sum.
        """
        for replica in np.flatnonzero(self._active).tolist():
            injector = self._injectors[replica]
            row = self._loads[replica]
            delta = validate_delta(
                injector.delta(self.round, row),
                row,
                injector.name,
                self.round,
            )
            row += delta  # in place: the runner owns the load stack
            moved = int(delta.sum())
            self.totals[replica] += moved
            self._tokens_injected[replica] += moved

    def step(self) -> np.ndarray:
        """Execute one synchronous round for every active replica."""
        if self._topology_schedules is not None:
            self._apply_topology_events()
        if self._fault_schedules is not None:
            self._apply_fault_events()
        if self._injectors is not None:
            self._apply_injection()
        all_active = bool(self._active.all())
        if all_active:
            # Fast path: no index gathers/scatters on the load stack.
            active = np.arange(self.num_replicas)
            loads = self._loads
        else:
            active = np.flatnonzero(self._active)
            if active.size == 0:
                return self._loads
            loads = self._loads[active]
        if self._backend.protocol == STRUCTURED:
            new_loads = self._round_structured(loads, active)
        else:
            new_loads = self._round_dense(loads, active)
        new_totals = new_loads.sum(axis=1)
        totals = self.totals if all_active else self.totals[active]
        if np.any(new_totals != totals):
            bad = int(active[np.flatnonzero(new_totals != totals)[0]])
            raise ConservationError(
                f"round {self.round}: replica {bad} token count changed "
                f"from {int(self.totals[bad])}"
            )
        if all_active:
            self._loads = new_loads
            self._rounds_executed += 1
        else:
            self._loads[active] = new_loads
            self._rounds_executed[active] += 1
        if self.record_history:
            discrepancies = (
                new_loads.max(axis=1) - new_loads.min(axis=1)
            ).tolist()
            for replica, value in zip(active.tolist(), discrepancies):
                self.histories[replica].append(value)
        if self._has_probes:
            for replica in active.tolist():
                row = self._loads[replica]
                for probe in self.probe_sets[replica]:
                    probe.observe_loads(self.round, row)
        self.round += 1
        return self._loads

    def _round_dense(
        self, loads: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """One round's new loads from full ``(batch, n, d+)`` sends."""
        if self._graphs is not None:
            return self._round_dense_churned(loads, active)
        graph = self.graph
        if self._vectorized:
            sends = self.balancers[0].sends_batch(loads, self.round)
        else:
            sends = np.stack(
                [
                    self._balancer_for(int(r)).sends(
                        self._loads[int(r)], self.round
                    )
                    for r in active
                ]
            )
        if self.validate_every_round:
            self._validate_sends(sends, active.size)
        degree = graph.degree
        edge_out = sends[:, :, :degree].sum(axis=2)
        kept = sends[:, :, degree:].sum(axis=2)
        # remainder = loads - (edge_out + kept); new = remainder + in + kept
        # which telescopes to loads - edge_out + incoming.
        self._check_overdraw(loads - edge_out - kept, active)
        incoming = self._backend.incoming(graph, sends)
        new_loads = loads - edge_out
        new_loads += incoming
        if self._fault_schedules is not None:
            for row, replica in enumerate(active.tolist()):
                faults = self._round_faults[replica]
                if faults is None:
                    continue
                self._settle_faults(
                    new_loads[row],
                    replica,
                    faults,
                    lambda pairs, s=sends[row]: dense_port_values(
                        s, pairs
                    ),
                )
        return new_loads

    def _round_dense_churned(
        self, loads: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Dense rounds under churn: one gather per replica's graph.

        The stacked flat-gather shortcut assumes one shared reverse-
        port map; under topology churn each replica's map differs, so
        the round mirrors the looped engine replica by replica.
        """
        new_loads = np.empty_like(loads)
        for row, replica in enumerate(active.tolist()):
            graph = self._graphs[replica]
            replica_loads = self._loads[replica]
            sends = self._balancer_for(replica).sends(
                replica_loads, self.round
            )
            if self.validate_every_round:
                self._validate_sends(sends[None], 1)
            degree = graph.degree
            edge_out = sends[:, :degree].sum(axis=1)
            kept = sends[:, degree:].sum(axis=1)
            self._check_overdraw(
                (replica_loads - edge_out - kept)[None, :],
                np.asarray([replica]),
            )
            incoming = self._backend.incoming(graph, sends)
            new_loads[row] = replica_loads - edge_out
            new_loads[row] += incoming
        return new_loads

    def _settle_faults(
        self, new_row: np.ndarray, replica: int, faults, port_values
    ) -> None:
        """Apply one replica's round corrections and track the loss."""
        dropped = apply_round_faults(
            new_row, self.graph, faults, port_values
        )
        self.totals[replica] -= dropped
        self._tokens_dropped[replica] += dropped

    def _round_structured(
        self, loads: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """One round's new loads executed matrix-free.

        The shared stateless balancer evaluates the whole stack in one
        compact description; per-replica balancers (e.g. stateful
        rotors) produce one compact round each — still O(n·d) per
        replica instead of a dense matrix.
        """
        graph = self.graph
        if self._vectorized:
            balancer = self.balancers[0]
            compact = balancer.sends_structured(loads, self.round)
            if self.validate_every_round:
                compact.validate(graph, loads)
            if not balancer.allows_negative:
                remainder = compact.remainder(graph, loads)
                if remainder.min() < 0:
                    self._raise_structured_overdraw(
                        remainder, active, balancer
                    )
            new_loads = self._backend.apply(graph, compact, loads)
            if self._fault_schedules is not None:
                for row, replica in enumerate(active.tolist()):
                    faults = self._round_faults[replica]
                    if faults is None:
                        continue
                    self._settle_faults(
                        new_loads[row],
                        replica,
                        faults,
                        lambda pairs, r=row: structured_port_values(
                            compact, graph, pairs, replica=r
                        ),
                    )
            return new_loads
        new_loads = np.empty_like(loads)
        for row, replica in enumerate(active):
            balancer = self._balancer_for(int(replica))
            graph = self._graph_for(int(replica))
            replica_loads = self._loads[int(replica)]
            compact = balancer.sends_structured(replica_loads, self.round)
            if self.validate_every_round:
                compact.validate(graph, replica_loads)
            if not balancer.allows_negative:
                remainder = compact.remainder(graph, replica_loads)
                if remainder.min() < 0:
                    self._raise_structured_overdraw(
                        remainder[None, :], active[row:], balancer
                    )
            new_loads[row] = self._backend.apply(
                graph, compact, replica_loads
            )
            if self._fault_schedules is not None:
                faults = self._round_faults[int(replica)]
                if faults is not None:
                    self._settle_faults(
                        new_loads[row],
                        int(replica),
                        faults,
                        lambda pairs, c=compact: structured_port_values(
                            c, graph, pairs
                        ),
                    )
        return new_loads

    def _raise_structured_overdraw(
        self,
        remainder: np.ndarray,
        active: np.ndarray,
        balancer: Balancer,
    ) -> None:
        row, node = np.unravel_index(
            int(np.argmin(remainder)), remainder.shape
        )
        raise NegativeLoadError(
            f"round {self.round}: replica {int(active[row])} node "
            f"{int(node)} overdrew its load (balancer "
            f"{balancer.name!r} does not allow negative load)"
        )

    def run(self, rounds: int) -> BatchResult:
        """Execute ``rounds`` rounds for every replica.

        Fault schedules take the per-step path: their corrections are
        per-replica scatter updates, which is exactly the bookkeeping
        the tight vectorized loop exists to avoid.
        """
        if (
            self._vectorized
            and self._active.all()
            and self._fault_schedules is None
            and self._topology_schedules is None
        ):
            self._run_vectorized(rounds)
        else:
            for _ in range(rounds):
                self.step()
        return self._result()

    def _run_vectorized(self, rounds: int) -> None:
        """Tight fixed-round loop for the shared-balancer batch path.

        Semantically identical to ``rounds`` calls of :meth:`step` with
        every replica active; exists because per-step bookkeeping
        (masking, per-replica history appends) would otherwise eat the
        vectorization win at small ``n``.
        """
        graph = self.graph
        balancer = self.balancers[0]
        backend = self._backend
        structured = backend.protocol == STRUCTURED
        degree = graph.degree
        replicas = self.num_replicas
        validate = self.validate_every_round
        check_overdraw = not balancer.allows_negative
        record = self.record_history
        discrepancy_rows: list[np.ndarray] = []
        loads = self._loads
        for _ in range(rounds):
            if self._injectors is not None:
                loads = self._inject_stack(loads)
            if structured:
                compact = balancer.sends_structured(loads, self.round)
                if validate:
                    compact.validate(graph, loads)
                if check_overdraw:
                    remainder = compact.remainder(graph, loads)
                    if remainder.min() < 0:
                        self._raise_structured_overdraw(
                            remainder, np.arange(replicas), balancer
                        )
                new_loads = backend.apply(graph, compact, loads)
            else:
                sends = balancer.sends_batch(loads, self.round)
                if validate:
                    self._validate_sends(sends, replicas)
                edge_out = sends[:, :, :degree].sum(axis=2)
                if check_overdraw:
                    remainder = loads - edge_out
                    remainder -= sends[:, :, degree:].sum(axis=2)
                    if remainder.min() < 0:
                        self._check_overdraw(
                            remainder, np.arange(replicas)
                        )
                incoming = backend.incoming(graph, sends)
                new_loads = loads - edge_out
                new_loads += incoming
            new_totals = new_loads.sum(axis=1)
            if not np.array_equal(new_totals, self.totals):
                bad = int(np.flatnonzero(new_totals != self.totals)[0])
                raise ConservationError(
                    f"round {self.round}: replica {bad} token count "
                    f"changed from {int(self.totals[bad])}"
                )
            loads = new_loads
            if record:
                discrepancy_rows.append(
                    loads.max(axis=1) - loads.min(axis=1)
                )
            if self._has_probes:
                for replica in range(replicas):
                    row = loads[replica]
                    for probe in self.probe_sets[replica]:
                        probe.observe_loads(self.round, row)
            self.round += 1
        self._loads = loads
        self._rounds_executed += rounds
        if record and discrepancy_rows:
            tails = np.stack(discrepancy_rows, axis=1).tolist()
            for history, tail in zip(self.histories, tails):
                history.extend(tail)

    def _inject_stack(self, loads: np.ndarray) -> np.ndarray:
        """Injection for the tight fixed-round loop (all replicas active).

        In place, row by row: each replica's injector sees exactly its
        own row, and no per-round ``(replicas, n)`` scratch array is
        allocated (allocator churn would dominate the vector add).
        """
        for replica in range(self.num_replicas):
            injector = self._injectors[replica]
            row = loads[replica]
            delta = validate_delta(
                injector.delta(self.round, row),
                row,
                injector.name,
                self.round,
            )
            row += delta
            moved = int(delta.sum())
            self.totals[replica] += moved
            self._tokens_injected[replica] += moved
        return loads

    def run_until(
        self,
        predicates: Sequence[Callable[[np.ndarray], bool]],
        max_rounds: int,
        check_every: int = 1,
    ) -> BatchResult:
        """Run until each replica's predicate holds (or budget runs out).

        Mirrors :meth:`Simulator.run_until` replica-for-replica: each
        predicate is evaluated on its replica's load vector before the
        first round and then every ``check_every`` rounds; a satisfied
        replica is frozen (no further rounds) while the rest continue.
        """
        if len(predicates) != self.num_replicas:
            raise ValueError(
                f"got {len(predicates)} predicates for "
                f"{self.num_replicas} replicas"
            )
        for replica in np.flatnonzero(self._active):
            if predicates[replica](self._loads[replica]):
                self._active[replica] = False
                self._stopped_early[replica] = True
        executed = 0
        while executed < max_rounds and self._active.any():
            self.step()
            executed += 1
            if executed % check_every == 0:
                for replica in np.flatnonzero(self._active):
                    if predicates[replica](self._loads[replica]):
                        self._active[replica] = False
                        self._stopped_early[replica] = True
        return self._result()

    # ------------------------------------------------------------------

    def _check_overdraw(
        self, remainder: np.ndarray, active: np.ndarray
    ) -> None:
        if remainder.min() >= 0:
            return
        for row, replica in enumerate(active):
            balancer = self._balancer_for(int(replica))
            if balancer.allows_negative:
                continue
            if remainder[row].min() < 0:
                node = int(np.argmin(remainder[row]))
                raise NegativeLoadError(
                    f"round {self.round}: replica {int(replica)} node "
                    f"{node} overdrew its load (balancer "
                    f"{balancer.name!r} does not allow negative load)"
                )

    def _validate_sends(self, sends: np.ndarray, batch: int) -> None:
        expected = (batch, self.graph.num_nodes, self.graph.total_degree)
        if sends.shape != expected:
            raise InvalidSendMatrix(
                f"batched sends have shape {sends.shape}, "
                f"expected {expected}"
            )
        if not np.issubdtype(sends.dtype, np.integer):
            raise InvalidSendMatrix(
                f"sends must be integer, got dtype {sends.dtype}"
            )
        if sends.min() < 0:
            raise InvalidSendMatrix(
                "sends contain negative entries; tokens can only move "
                "forward along edges"
            )

    def _engine_summary(self, replica: int) -> dict:
        summary = {
            "initial_discrepancy": int(
                self.initial_loads[replica].max()
                - self.initial_loads[replica].min()
            ),
            "final_discrepancy": int(
                self._loads[replica].max()
                - self._loads[replica].min()
            ),
        }
        if self._injectors is not None:
            summary["tokens_injected"] = int(
                self._tokens_injected[replica]
            )
            summary.update(self._injectors[replica].summary())
        if self._fault_schedules is not None:
            schedule = self._fault_schedules[replica]
            summary["fault_schedule"] = schedule.name
            summary["tokens_dropped"] = int(
                self._tokens_dropped[replica]
            )
            summary.update(schedule.summary())
        if self._topology_schedules is not None:
            schedule = self._topology_schedules[replica]
            summary["topology_schedule"] = schedule.name
            summary["topology_rounds"] = int(
                self._topology_rounds[replica]
            )
            summary.update(schedule.summary())
        return summary

    def _result(self) -> BatchResult:
        records = [
            build_record(
                replica=replica,
                rounds_executed=int(self._rounds_executed[replica]),
                stopped_early=bool(self._stopped_early[replica]),
                engine_summary=self._engine_summary(replica),
                discrepancy_history=(
                    self.histories[replica] if self.histories else None
                ),
                probes=(
                    self.probe_sets[replica] if self.probe_sets else ()
                ),
            )
            for replica in range(self.num_replicas)
        ]
        return BatchResult(
            initial_loads=self.initial_loads,
            final_loads=self._loads.copy(),
            rounds_executed=self._rounds_executed.copy(),
            stopped_early=self._stopped_early.copy(),
            histories=[list(h) for h in self.histories],
            records=records,
        )
