"""Declarative scenario API: specs, suites, and the batch runner.

This is the system's front door: describe *what to run* — graph family,
initial workload, algorithm, stop rule, replicas — and let the runtime
decide *how to execute it* (looped simulators or one vectorized batch).
See :mod:`repro.scenarios.spec` for the data model and
:mod:`repro.scenarios.batch` for the stacked-array engine.
"""

from repro.core.probes import ProbeSpec
from repro.core.trace import RunRecord, SamplingSchedule, Trace
from repro.dynamics.spec import DynamicsSpec
from repro.faults.spec import FaultSpec
from repro.topology.spec import TopologySpec
from repro.scenarios.batch import BatchResult, BatchRunner
from repro.scenarios.spec import (
    STOP_KINDS,
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioResult,
    ScenarioSuite,
    StopRule,
    canonical_json,
    content_hash,
)

__all__ = [
    "canonical_json",
    "content_hash",
    "GraphSpec",
    "LoadSpec",
    "AlgorithmSpec",
    "StopRule",
    "STOP_KINDS",
    "ProbeSpec",
    "DynamicsSpec",
    "FaultSpec",
    "TopologySpec",
    "SamplingSchedule",
    "Trace",
    "RunRecord",
    "Scenario",
    "ScenarioResult",
    "ScenarioSuite",
    "BatchRunner",
    "BatchResult",
]
