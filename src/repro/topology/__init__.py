"""Dynamic-topology subsystem: per-round graph churn schedules.

See :mod:`repro.topology.schedules` for the schedule protocol and the
built-in schedules (``edge_churn``, ``node_join_leave``,
``expander_rewire``, ``scripted``), and :mod:`repro.topology.spec` for
the declarative JSON/CLI spec layer.
"""

from repro.topology.schedules import (
    TOPOLOGIES,
    EdgeChurn,
    ExpanderRewire,
    InvalidTopology,
    NodeJoinLeave,
    ScriptedTopology,
    TopologyEvents,
    TopologySchedule,
    apply_topology_events,
    register_topology,
    validate_topology_events,
)
from repro.topology.spec import TopologySpec, as_topology_schedule

__all__ = [
    "TOPOLOGIES",
    "register_topology",
    "InvalidTopology",
    "TopologyEvents",
    "TopologySchedule",
    "EdgeChurn",
    "NodeJoinLeave",
    "ExpanderRewire",
    "ScriptedTopology",
    "TopologySpec",
    "as_topology_schedule",
    "apply_topology_events",
    "validate_topology_events",
]
