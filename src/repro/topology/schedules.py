"""Per-round topology schedules — balancing while the graph churns.

The paper analyzes deterministic balancing on a *static* graph; the
dynamic-network line of work (Gilbert–Meir–Paz, dynamic averaging on
arbitrary graphs) asks what survives when the fabric itself is rewired
under the process.  A :class:`TopologySchedule` is that adversary: at
the very beginning of round ``t`` — before fault epochs, before
workload injection, before any balancing — it declares how the graph
changes this round as a sparse :class:`TopologyEvents` batch::

    x_t  →  topology events  →  fault epochs  →  injection
         →  balancing over the NEW topology  →  x_{t+1}

Both engines honor one event batch identically: they mutate their
:class:`~repro.graphs.mutable.MutableBalancingGraph` in place (O(1)
per edge, incremental reverse-port repair) and hand the dirty node set
to ``Balancer.refresh_topology`` so per-round cost scales with the
number of mutated edges, not with ``n``.  The naive reference
simulator in ``tests/differential`` applies the same events to plain
python lists and rebuilds its graph from scratch every round; the
differential suite pins all paths bit-identical.

Within a round, events apply in a fixed order — **leaves, joins,
edge drops, edge adds** — and a leaving node's load is handed to its
live real neighbors (even split, remainder in port order; if none
remain the load stays parked on the inactive node, whose ports all
become self-bouncing padding).  Topology changes therefore conserve
tokens exactly.

Schedules register by name in :data:`TOPOLOGIES`
(``@register_topology``) so scenario JSON and the CLI can request them
declaratively via :class:`~repro.topology.spec.TopologySpec`.  Seeded
schedules take a ``seed`` parameter which batch replicas offset
(``seed + r``) exactly like load specs, injectors, and fault
schedules, so replica ``r`` sees the same churn history whether it
runs alone, looped, or inside a batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.schedules import _BernoulliGapStream
from repro.graphs.mutable import MutableBalancingGraph
from repro.registry import Registry

__all__ = [
    "TOPOLOGIES",
    "register_topology",
    "InvalidTopology",
    "TopologyEvents",
    "TopologySchedule",
    "EdgeChurn",
    "NodeJoinLeave",
    "ExpanderRewire",
    "ScriptedTopology",
    "validate_topology_events",
    "apply_topology_events",
]

#: Named topology schedules available to scenario specs and the CLI.
TOPOLOGIES: Registry = Registry("topology")

#: Decorator registering a topology schedule: ``@register_topology(name)``.
register_topology = TOPOLOGIES.register


class InvalidTopology(ValueError):
    """A topology schedule was mis-parameterized or emitted bad events."""


_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)
_EMPTY_NODES = np.empty(0, dtype=np.int64)


@dataclass
class TopologyEvents:
    """One round's topology changes, in sparse form.

    ``edge_drops`` / ``edge_adds`` are ``(k, 2)`` integer arrays of
    undirected ``(u, v)`` endpoint pairs; ``leaves`` is an array of
    departing node indices; ``joins`` is a tuple of ``(node,
    neighbors)`` pairs wiring each (re)joining node, in order.  The
    engines apply leaves, then joins, then drops, then adds —
    sequentially within each group — so any two faithful appliers
    produce the same port layout.

    ``trusted`` marks batches whose structural invariants hold by
    construction (the built-in schedules emit only edges/nodes they
    track as present/absent); engines then skip the per-round
    :func:`validate_topology_events` re-check.  The applier itself
    still hard-fails on semantically impossible operations.
    """

    edge_drops: np.ndarray = field(
        default_factory=lambda: _EMPTY_PAIRS
    )
    edge_adds: np.ndarray = field(default_factory=lambda: _EMPTY_PAIRS)
    leaves: np.ndarray = field(default_factory=lambda: _EMPTY_NODES)
    joins: tuple = ()
    trusted: bool = False

    def is_empty(self) -> bool:
        return (
            self.edge_drops.size == 0
            and self.edge_adds.size == 0
            and self.leaves.size == 0
            and not self.joins
        )


class TopologySchedule:
    """Base class for per-round topology-event generators.

    Lifecycle mirrors :class:`~repro.faults.schedules.FaultSchedule`:
    the engine calls :meth:`start` once with the *initial* graph and
    loads (snapshotting the canonical edge universe and resetting RNG
    streams so one instance can be reused), then :meth:`round_events`
    exactly once per round, before everything else in that round.

    Determinism contract: schedules track their own view of what they
    changed (which edges are down, which nodes are away), so the same
    construction parameters and the same sequence of ``round_events``
    calls produce the identical event history regardless of which
    engine applies it — this is what makes the differential harness's
    bit-identity claims meaningful under churn.
    """

    #: Human-readable name used in reports.
    name: str = "topology"

    def start(self, graph, loads: np.ndarray) -> None:
        """Snapshot the initial topology and reset per-run state."""
        self._snapshot(graph)

    def round_events(self, t: int, loads: np.ndarray):
        """Events for round ``t`` (or ``None`` for a quiet round)."""
        raise NotImplementedError

    def summary(self) -> dict:
        """End-of-run scalar facts (merged into run summaries)."""
        return {}

    # -- shared initial-graph snapshot ----------------------------------

    def _snapshot(self, graph) -> None:
        """Record the canonical edges and neighbor lists at round 1."""
        if graph is None:
            raise InvalidTopology(
                f"topology schedule {self.name!r} needs a graph"
            )
        adjacency = graph.adjacency
        n, d = adjacency.shape
        true_degrees = getattr(graph, "true_degrees", None)
        if true_degrees is None:
            real = np.ones((n, d), dtype=bool)
        else:
            real = np.arange(d)[None, :] < true_degrees[:, None]
        canonical = real & (np.arange(n)[:, None] < adjacency)
        us, ps = np.nonzero(canonical)
        self._edges = np.stack(
            [us.astype(np.int64), adjacency[us, ps]], axis=1
        )
        self._num_nodes = n
        self._neighbor_lists = [
            [int(v) for v in adjacency[u][real[u]]] for u in range(n)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


@register_topology("edge_churn")
class EdgeChurn(TopologySchedule):
    """Edges of the initial graph fail and rejoin, round by round.

    ``mode="random"``: every undirected edge currently up is
    independently severed with probability ``rate`` each round (one
    seeded coin per edge); a severed edge rejoins after ``downtime``
    rounds.  ``mode="cut"``: the adversary severs every edge crossing
    the node bisection ``[0, n/2) | [n/2, n)`` at the start of each
    ``period``, restoring them ``down`` rounds later — the
    partition-and-heal stress pattern.  ``until`` stops *new* failures
    after round ``until`` (already-severed edges still rejoin on
    schedule), which is how the E18 driver measures recovery time.

    Only edges of the initial topology ever exist, so re-adds can
    never exceed any node's port capacity.
    """

    name = "edge_churn"

    def __init__(
        self,
        rate: float = 0.05,
        downtime: int = 5,
        mode: str = "random",
        period: int = 8,
        down: int = 4,
        until: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidTopology(f"rate must lie in [0, 1], got {rate}")
        if downtime < 1:
            raise InvalidTopology(
                f"downtime must be >= 1, got {downtime}"
            )
        if mode not in ("random", "cut"):
            raise InvalidTopology(
                f"unknown mode {mode!r}; known: random, cut"
            )
        if period < 1:
            raise InvalidTopology(f"period must be >= 1, got {period}")
        if not 0 <= down <= period:
            raise InvalidTopology(
                f"down must lie in [0, period], got {down}"
            )
        if until is not None and until < 0:
            raise InvalidTopology(f"until must be >= 0, got {until}")
        self.rate = float(rate)
        self.downtime = int(downtime)
        self.mode = mode
        self.period = int(period)
        self.down = int(down)
        self.until = until
        self.seed = int(seed)
        self._severed = 0
        self._churn_rounds = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._snapshot(graph)
        self._rng = np.random.default_rng(self.seed)
        num_edges = self._edges.shape[0]
        self._coins = _BernoulliGapStream(
            self._rng, self.rate, num_edges
        )
        # _up_at[e]: first round edge e is (back) up; 0 == never down.
        self._up_at = np.zeros(num_edges, dtype=np.int64)
        self._severed = 0
        self._churn_rounds = 0
        if self.mode == "cut":
            half = self._num_nodes // 2
            self._cut_edges = np.flatnonzero(
                (self._edges[:, 0] < half) != (self._edges[:, 1] < half)
            )

    def round_events(self, t: int, loads: np.ndarray):
        rejoining = np.flatnonzero(self._up_at == t)
        active = self.until is None or t <= self.until
        if not active:
            severed = _EMPTY_NODES
        elif self.mode == "cut":
            if (t - 1) % self.period == 0 and self.down > 0:
                up = self._up_at[self._cut_edges] < t
                severed = self._cut_edges[up]
                self._up_at[severed] = t + self.down
            else:
                severed = _EMPTY_NODES
        else:
            hits = self._coins.take(self._edges.shape[0])
            # Edges still down — or rejoining this very round — are
            # not up to fail; skipping them keeps the trial count per
            # round fixed (determinism) without double-dropping.
            severed = hits[self._up_at[hits] < t]
            self._up_at[severed] = t + self.downtime
        if severed.size == 0 and rejoining.size == 0:
            return None
        self._severed += int(severed.size)
        self._churn_rounds += 1
        return TopologyEvents(
            edge_drops=self._edges[severed],
            edge_adds=self._edges[rejoining],
            trusted=True,
        )

    def summary(self) -> dict:
        return {
            "edges_severed": self._severed,
            "churn_rounds": self._churn_rounds,
        }


@register_topology("node_join_leave")
class NodeJoinLeave(TopologySchedule):
    """Nodes leave the network and rejoin, wired back to survivors.

    Every round ``t <= until``, each present node independently leaves
    with probability ``rate`` (one seeded coin per node); its load is
    handed to its live neighbors by the engine (even split, remainder
    in port order — or parked on the node if no neighbor survives).
    After ``rejoin_after`` rounds the node rejoins, reconnecting to
    those of its *original* neighbors that are currently present — so
    the fabric self-heals toward the initial topology as churn stops.
    Only original edges ever exist, so rejoining never exceeds any
    node's port capacity.
    """

    name = "node_join_leave"

    def __init__(
        self,
        rate: float = 0.02,
        rejoin_after: int = 5,
        until: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidTopology(f"rate must lie in [0, 1], got {rate}")
        if rejoin_after < 1:
            raise InvalidTopology(
                f"rejoin_after must be >= 1, got {rejoin_after}"
            )
        if until is not None and until < 0:
            raise InvalidTopology(f"until must be >= 0, got {until}")
        self.rate = float(rate)
        self.rejoin_after = int(rejoin_after)
        self.until = until
        self.seed = int(seed)
        self._departures = 0
        self._rejoins = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._snapshot(graph)
        self._rng = np.random.default_rng(self.seed)
        n = self._num_nodes
        self._coins = _BernoulliGapStream(self._rng, self.rate, n)
        # _back_at[u]: first round node u is (back) present; 0 == never away.
        self._back_at = np.zeros(n, dtype=np.int64)
        self._present = np.ones(n, dtype=bool)
        self._departures = 0
        self._rejoins = 0

    def round_events(self, t: int, loads: np.ndarray):
        n = self._num_nodes
        leaving = _EMPTY_NODES
        if (self.until is None or t <= self.until) and self.rate > 0.0:
            hits = self._coins.take(n)
            # Nodes already away — or rejoining this very round — stay
            # out of this round's departure pool.
            leaving = hits[self._back_at[hits] < t]
        if leaving.size:
            self._back_at[leaving] = t + self.rejoin_after
            self._present[leaving] = False
            self._departures += int(leaving.size)
        rejoining = np.flatnonzero(self._back_at == t)
        joins = []
        for u in rejoining:
            u = int(u)
            neighbors = tuple(
                v
                for v in self._neighbor_lists[u]
                if self._present[v]
            )
            self._present[u] = True
            joins.append((u, neighbors))
        self._rejoins += len(joins)
        if leaving.size == 0 and not joins:
            return None
        return TopologyEvents(
            leaves=leaving, joins=tuple(joins), trusted=True
        )

    def summary(self) -> dict:
        return {
            "node_departures": self._departures,
            "node_rejoins": self._rejoins,
        }


@register_topology("expander_rewire")
class ExpanderRewire(TopologySchedule):
    """Degree-preserving double edge swaps, ``swaps`` attempts a round.

    Each attempt draws two distinct current edges ``(u, v)``, ``(x,
    y)`` and an orientation coin, and — when all four endpoints are
    distinct and neither replacement edge exists — rewires them to
    ``(u, x), (v, y)`` (or ``(u, y), (v, x)``).  Every node keeps its
    exact degree, so port capacity is untouched while the global
    wiring random-walks through the configuration model: the fabric
    the process balanced a moment ago no longer exists, but its degree
    sequence does.  Failed attempts consume their draws (fixed RNG
    consumption per round keeps replicas deterministic).  ``until``
    freezes the wiring after round ``until``.
    """

    name = "expander_rewire"

    def __init__(
        self,
        swaps: int = 1,
        until: int | None = None,
        seed: int = 0,
    ) -> None:
        if swaps < 0:
            raise InvalidTopology(f"swaps must be >= 0, got {swaps}")
        if until is not None and until < 0:
            raise InvalidTopology(f"until must be >= 0, got {until}")
        self.swaps = int(swaps)
        self.until = until
        self.seed = int(seed)
        self._applied = 0
        self._attempted = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._snapshot(graph)
        self._rng = np.random.default_rng(self.seed)
        self._edge_list = [
            (int(u), int(v)) for u, v in self._edges
        ]
        self._edge_set = set(self._edge_list)
        self._applied = 0
        self._attempted = 0

    def round_events(self, t: int, loads: np.ndarray):
        if self.until is not None and t > self.until:
            return None
        if self.swaps == 0 or len(self._edge_list) < 2:
            return None
        # Pending drops/adds cancel instead of stacking: if a later
        # swap re-adds an edge dropped earlier this round (or drops an
        # edge added earlier), the pair nets out, so the emitted batch
        # is always applicable as drops-then-adds.  Dicts keep
        # insertion order for deterministic event arrays.
        pending_drops: dict[tuple, None] = {}
        pending_adds: dict[tuple, None] = {}
        # One batched draw per round (not two calls per swap): fixed
        # RNG consumption per round is what replica determinism needs,
        # and the batch keeps the per-round overhead of an
        # always-active schedule down at benchmark sizes.
        draws = self._rng.integers(
            0, len(self._edge_list), size=(self.swaps, 2)
        ).tolist()
        flips = self._rng.integers(0, 2, size=self.swaps).tolist()
        for (i, j), flip in zip(draws, flips):
            self._attempted += 1
            if i == j:
                continue
            u, v = self._edge_list[i]
            x, y = self._edge_list[j]
            if flip:
                x, y = y, x
            if len({u, v, x, y}) < 4:
                continue
            first = (min(u, x), max(u, x))
            second = (min(v, y), max(v, y))
            if first in self._edge_set or second in self._edge_set:
                continue
            old_i = self._edge_list[i]
            old_j = self._edge_list[j]
            self._edge_set.discard(old_i)
            self._edge_set.discard(old_j)
            self._edge_set.add(first)
            self._edge_set.add(second)
            self._edge_list[i] = first
            self._edge_list[j] = second
            for edge in (old_i, old_j):
                if edge in pending_adds:
                    del pending_adds[edge]
                else:
                    pending_drops[edge] = None
            for edge in (first, second):
                if edge in pending_drops:
                    del pending_drops[edge]
                else:
                    pending_adds[edge] = None
            self._applied += 1
        if not pending_drops and not pending_adds:
            return None
        return TopologyEvents(
            edge_drops=(
                np.array(list(pending_drops), dtype=np.int64)
                if pending_drops
                else _EMPTY_PAIRS
            ),
            edge_adds=(
                np.array(list(pending_adds), dtype=np.int64)
                if pending_adds
                else _EMPTY_PAIRS
            ),
            trusted=True,
        )

    def summary(self) -> dict:
        return {
            "swaps_applied": self._applied,
            "swaps_attempted": self._attempted,
        }


@register_topology("scripted")
class ScriptedTopology(TopologySchedule):
    """An explicit event list — the fully reproducible schedule.

    ``events`` entries are, per round::

        ["drop",  round, u, v]
        ["add",   round, u, v]
        ["leave", round, u]
        ["join",  round, u, [neighbors...]]

    Events of one round apply in the engine's fixed order (leaves,
    joins, drops, adds), preserving list order within each group.
    Scripted streams round-trip through scenario JSON and are the
    natural target for hypothesis-generated churn in the differential
    harness.  Semantically impossible operations (dropping an absent
    edge, overflowing a port capacity) are hard errors at apply time.
    """

    name = "scripted"

    def __init__(self, events: list) -> None:
        parsed = []
        for event in events:
            if not event or event[0] not in (
                "drop",
                "add",
                "leave",
                "join",
            ):
                raise InvalidTopology(
                    f"scripted topology events start with one of "
                    f"drop/add/leave/join, got {event!r}"
                )
            op = event[0]
            expected = 3 if op == "leave" else 4
            if len(event) != expected:
                raise InvalidTopology(
                    f"malformed scripted {op} event: {event!r}"
                )
            t = int(event[1])
            if t < 1:
                raise InvalidTopology(
                    f"scripted event round must be >= 1, got {t}"
                )
            if op == "leave":
                parsed.append((op, t, int(event[2])))
            elif op == "join":
                parsed.append(
                    (op, t, int(event[2]),
                     tuple(int(v) for v in event[3]))
                )
            else:
                parsed.append(
                    (op, t, int(event[2]), int(event[3]))
                )
        self.events = parsed
        self._applied = 0

    def start(self, graph, loads: np.ndarray) -> None:
        self._snapshot(graph)
        self._by_round: dict[int, list[tuple]] = {}
        for event in self.events:
            self._by_round.setdefault(event[1], []).append(event)
        self._applied = 0

    def round_events(self, t: int, loads: np.ndarray):
        batch = self._by_round.get(t)
        if not batch:
            return None
        drops, adds, leaves, joins = [], [], [], []
        for event in batch:
            op = event[0]
            if op == "drop":
                drops.append((event[2], event[3]))
            elif op == "add":
                adds.append((event[2], event[3]))
            elif op == "leave":
                leaves.append(event[2])
            else:
                joins.append((event[2], event[3]))
        self._applied += len(batch)
        return TopologyEvents(
            edge_drops=(
                np.array(drops, dtype=np.int64)
                if drops
                else _EMPTY_PAIRS
            ),
            edge_adds=(
                np.array(adds, dtype=np.int64)
                if adds
                else _EMPTY_PAIRS
            ),
            leaves=np.array(leaves, dtype=np.int64),
            joins=tuple(joins),
        )

    def summary(self) -> dict:
        return {"topology_events_applied": self._applied}


# ----------------------------------------------------------------------
# Engine-side helpers (shared by the dense, structured, and batch paths)
# ----------------------------------------------------------------------


def validate_topology_events(events: TopologyEvents, graph) -> None:
    """Structural validation of one round's event batch.

    Checks shapes, index ranges, and intra-batch duplicates; semantic
    consistency against the live graph (edge present/absent, node
    active/inactive, port capacity) is enforced unconditionally by
    :func:`apply_topology_events` itself.
    """
    n = graph.num_nodes
    for label, pairs in (
        ("edge_drops", events.edge_drops),
        ("edge_adds", events.edge_adds),
    ):
        pairs = np.asarray(pairs)
        if pairs.size == 0:
            continue
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise InvalidTopology(
                f"{label} must have shape (k, 2), got {pairs.shape}"
            )
        if pairs.min() < 0 or pairs.max() >= n:
            raise InvalidTopology(
                f"{label} endpoints must lie in [0, {n})"
            )
        if np.any(pairs[:, 0] == pairs[:, 1]):
            raise InvalidTopology(f"{label} contains a self-edge")
        keys = np.sort(
            np.minimum(pairs[:, 0], pairs[:, 1]) * n
            + np.maximum(pairs[:, 0], pairs[:, 1])
        )
        if np.any(keys[1:] == keys[:-1]):
            raise InvalidTopology(f"{label} contains duplicate edges")
    leaves = np.asarray(events.leaves)
    if leaves.size:
        if leaves.min() < 0 or leaves.max() >= n:
            raise InvalidTopology(
                f"leave nodes must lie in [0, {n})"
            )
        if np.unique(leaves).size != leaves.size:
            raise InvalidTopology("leaves contains duplicate nodes")
    seen = set()
    for node, neighbors in events.joins:
        if not 0 <= int(node) < n:
            raise InvalidTopology(
                f"join node {node} must lie in [0, {n})"
            )
        if int(node) in seen:
            raise InvalidTopology(
                f"node {node} joins twice in one round"
            )
        seen.add(int(node))
        for v in neighbors:
            if not 0 <= int(v) < n:
                raise InvalidTopology(
                    f"join neighbor {v} must lie in [0, {n})"
                )


def apply_topology_events(
    graph: MutableBalancingGraph,
    events: TopologyEvents,
    loads: np.ndarray,
) -> None:
    """Mutate ``graph`` (and hand off load) per one event batch.

    The single authoritative application order — leaves, joins, edge
    drops, edge adds, sequentially within each group.  A leaving
    node's load is split evenly over its current live neighbors with
    the remainder dealt in port order; with no neighbors the load
    stays parked on the node (its ports all become padding, so the
    tokens bounce in place).  Token-conserving by construction.

    ``loads`` is modified in place; the graph's dirty-node set
    accumulates for the caller to feed ``Balancer.refresh_topology``.
    """
    for u in events.leaves.tolist():
        targets = graph.neighbors(u)
        amount = int(loads[u])
        if targets and amount:
            share, extra = divmod(amount, len(targets))
            for i, v in enumerate(targets):
                loads[v] += share + (1 if i < extra else 0)
            loads[u] = 0
        graph.deactivate_node(u)
    for node, neighbors in events.joins:
        graph.activate_node(int(node), neighbors)
    # tolist() up front: iterating a numpy array yields boxed scalar
    # rows, and unboxing per edge costs more than the mutation itself
    # on a busy churn round.
    for u, v in events.edge_drops.tolist():
        graph.drop_edge(u, v)
    for u, v in events.edge_adds.tolist():
        graph.add_edge(u, v)
