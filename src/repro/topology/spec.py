"""Declarative topology-schedule specifications.

:class:`TopologySpec` is the topology counterpart of
:class:`~repro.dynamics.spec.DynamicsSpec` and
:class:`~repro.faults.spec.FaultSpec`: a registered topology schedule
by name plus construction parameters, round-tripping through JSON
(scenario files, ``repro-lb simulate --topology``) and building fresh
:class:`~repro.topology.schedules.TopologySchedule` instances per
replica.  If the params include a ``seed``, replica ``r`` is built with
``seed + r`` so replicas see independent — and batch-size-independent —
churn histories, exactly like seeded load specs, injectors, and fault
schedules.  The shared machinery lives in
:class:`repro.specs.RegistrySpec`.
"""

from __future__ import annotations

from repro.specs import RegistrySpec, coerce_spec
from repro.topology.schedules import TOPOLOGIES, TopologySchedule


class TopologySpec(RegistrySpec):
    """A registered topology schedule by name plus construction params."""

    registry = TOPOLOGIES
    instance_type = TopologySchedule
    kind = "topology"


def as_topology_schedule(
    topology, replica: int = 0
) -> TopologySchedule | None:
    """Coerce ``topology`` into a fresh-enough :class:`TopologySchedule`.

    ``None`` passes through (static fabric); a :class:`TopologySpec`
    builds a fresh instance for ``replica``; a ready
    :class:`TopologySchedule` instance passes through as-is (the
    caller owns its state).
    """
    return coerce_spec(topology, TopologySpec, replica)
