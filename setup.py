"""Setup shim.

Kept so that ``pip install -e . --no-use-pep517`` works on machines
without the ``wheel`` package (offline environments); all real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
