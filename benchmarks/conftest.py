"""Benchmark-suite configuration.

Each ``bench_*.py`` module regenerates one experiment from the paper
(see DESIGN.md's experiment index): it prints the reproduction table
once per session and benchmarks the core computation with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Keep benchmark output ordered by experiment id."""
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def print_result():
    """Print an ExperimentResult table once per session per id."""
    printed: set[str] = set()

    def _print(result):
        if result.experiment_id not in printed:
            printed.add(result.experiment_id)
            print()
            print(result.to_text())
        return result

    return _print
