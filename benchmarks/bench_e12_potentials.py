"""E12 — Lemmas 3.5/3.7: potential monotonicity, and its cost."""

import pytest

from repro.experiments.theorem33 import (
    Theorem33Config,
    run_potential_monotonicity,
)


@pytest.fixture(scope="module")
def result(print_result):
    return print_result(
        run_potential_monotonicity(
            Theorem33Config(n=128, degree=6, tokens_per_node=64),
            rounds=300,
        )
    )


def test_all_potentials_monotone(result):
    for row in result.rows:
        assert row["phi_monotone"]
        assert row["phi_prime_monotone"]


def test_benchmark_potential_tracking(benchmark):
    small = Theorem33Config(n=48, degree=4, tokens_per_node=16)
    result = benchmark(run_potential_monotonicity, small, 100)
    assert result.rows
