"""E3 — Theorem 2.3(ii) on cycles: d·√n upper bound vs Ω(n) worst case."""

import pytest

from repro.experiments.theorem23 import Theorem23Config, run_cycle_sweep


CONFIG = Theorem23Config(
    cycle_sizes=(17, 25, 33, 49, 65),
    tokens_per_node=64,
)


@pytest.fixture(scope="module")
def sweep(print_result):
    return print_result(run_cycle_sweep(CONFIG))


def test_fair_balancers_below_sqrt_n_bound(sweep):
    for row in sweep.rows:
        for name in CONFIG.algorithms:
            assert row[name] <= row["bound_ii(d*sqrt n)"]


def test_worst_case_scales_linearly(sweep):
    fits = sweep.metadata["fits"]
    assert fits["worst_case_d0"]["slope"] > 0.9
    assert fits["rotor_router"]["slope"] < 0.6


def test_benchmark_cycle_run(benchmark):
    small = Theorem23Config(cycle_sizes=(9, 17), tokens_per_node=32)
    result = benchmark(run_cycle_sweep, small)
    assert result.rows
