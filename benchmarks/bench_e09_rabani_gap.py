"""E9 — separation: cumulatively fair vs [17]'s arbitrary rounding.

The same instance measured under the fixed-priority adversarial member
of the round-fair class and under the paper's cumulatively fair
algorithms.  Theorem 4.1's steady-state instance gives the permanent
separation; here we also print the transient gap on an expander.
"""

import pytest

from repro.algorithms.registry import make
from repro.analysis.convergence import measure_after_t
from repro.core.loads import point_mass
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap


def run_gap_experiment(n=128, degree=8, seed=1) -> ExperimentResult:
    graph = families.random_regular(n, degree, seed)
    gap = eigenvalue_gap(graph)
    rows = []
    with timed() as clock:
        for name in (
            "rotor_router",
            "send_floor",
            "send_rounded",
            "arbitrary_rounding_fixed",
            "arbitrary_rounding_random",
        ):
            report = measure_after_t(
                graph,
                make(name, seed=seed),
                point_mass(n, 64 * n),
                gap=gap,
            )
            rows.append(
                {
                    "algorithm": name,
                    "class": (
                        "cumulatively fair"
                        if name in ("rotor_router", "send_floor", "send_rounded")
                        else "[17] round-fair only"
                    ),
                    "disc_after_T": report.plateau_discrepancy,
                }
            )
    return ExperimentResult(
        experiment_id="E9",
        title="Separation: cumulatively fair vs arbitrary rounding "
        "([17] class) on one expander",
        rows=rows,
        notes=[
            "the adversarial fixed-priority member should be the worst "
            "deterministic row"
        ],
        elapsed_seconds=clock.elapsed,
    )


@pytest.fixture(scope="module")
def result(print_result):
    return print_result(run_gap_experiment())


def test_adversary_is_worst_deterministic(result):
    by_name = {row["algorithm"]: row["disc_after_T"] for row in result.rows}
    assert by_name["arbitrary_rounding_fixed"] >= by_name["rotor_router"]
    assert by_name["arbitrary_rounding_fixed"] >= by_name["send_rounded"]


def test_benchmark_gap_experiment(benchmark):
    result = benchmark(run_gap_experiment, 64, 6, 2)
    assert result.rows
