"""Infrastructure benchmark: spectral-gap computation cost by size."""

import pytest

from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap, spectral_profile


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_eigenvalue_gap_cost(benchmark, n):
    graph = families.random_regular(n, 8, seed=7)
    gap = benchmark(eigenvalue_gap, graph)
    assert 0 < gap < 1


def test_spectral_profile_cost(benchmark):
    graph = families.torus(8, 2)
    profile = benchmark(spectral_profile, graph)
    assert profile.n == 64
