"""E1 — regenerate Table 1 (discrepancy after O(T), flags, time to O(d)).

Prints the full reproduction table and benchmarks one representative
post-``T`` measurement per algorithm class.
"""

import pytest

from repro.algorithms.registry import make
from repro.analysis.convergence import measure_after_t
from repro.core.loads import point_mass
from repro.experiments.table1 import Table1Config, run_table1
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap


@pytest.fixture(scope="module")
def table1(print_result):
    return print_result(
        run_table1(Table1Config(n=128, degree=8, tokens_per_node=64))
    )


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(128, 8, seed=1)


@pytest.fixture(scope="module")
def gap(graph):
    return eigenvalue_gap(graph)


@pytest.mark.parametrize(
    "algorithm",
    [
        "send_floor",
        "send_rounded",
        "rotor_router",
        "rotor_router_star",
        "arbitrary_rounding_fixed",
        "continuous_mimicking",
    ],
)
def test_discrepancy_after_t(benchmark, table1, graph, gap, algorithm):
    rows = {row["algorithm"]: row for row in table1.rows}
    assert rows[algorithm]["disc_after_T"] <= 10 * rows[algorithm][
        "predicted"
    ]

    def measure():
        return measure_after_t(
            graph,
            make(algorithm, seed=1),
            point_mass(128, 128 * 64),
            gap=gap,
        )

    report = benchmark(measure)
    assert report.final_discrepancy <= report.initial_discrepancy
