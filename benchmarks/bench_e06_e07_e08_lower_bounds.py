"""E6/E7/E8 — the three Section 4 lower bounds, executed on the engine."""

import pytest

from repro.experiments.lower_bounds import (
    LowerBoundConfig,
    run_rotor_alternating,
    run_stateless,
    run_steady_state,
)


CONFIG = LowerBoundConfig(
    run_rounds=100,
    cycle_n=32,
    torus_side=6,
    stateless_n=48,
    stateless_degree=12,
    odd_cycle_n=33,
)


@pytest.fixture(scope="module")
def steady(print_result):
    return print_result(run_steady_state(CONFIG))


@pytest.fixture(scope="module")
def stateless(print_result):
    return print_result(run_stateless(CONFIG))


@pytest.fixture(scope="module")
def alternating(print_result):
    return print_result(run_rotor_alternating(CONFIG))


def test_e6_rows(steady):
    for row in steady.rows:
        assert row["loads_invariant"]
        assert row["discrepancy"] >= row["predicted d*(diam-1)"]


def test_e7_rows(stateless):
    for row in stateless.rows:
        assert row["fixed_point"]


def test_e8_rows(alternating):
    for row in alternating.rows:
        assert row["alternates(period2)"]
        assert row["discrepancy"] >= row["predicted d*phi"]


def test_benchmark_steady_state(benchmark):
    result = benchmark(
        run_steady_state, LowerBoundConfig(run_rounds=50, cycle_n=24)
    )
    assert result.rows


def test_benchmark_rotor_alternating(benchmark):
    result = benchmark(
        run_rotor_alternating, LowerBoundConfig(odd_cycle_n=21)
    )
    assert result.rows
