"""E4 — Theorem 2.3(iii): the d° = 1 regime (only claim iii applies)."""

import pytest

from repro.experiments.theorem23 import (
    Theorem23Config,
    run_minimal_selfloop_sweep,
)


CONFIG = Theorem23Config(
    expander_sizes=(64, 128, 256),
    expander_degree=6,
    tokens_per_node=64,
)


@pytest.fixture(scope="module")
def sweep(print_result):
    return print_result(run_minimal_selfloop_sweep(CONFIG))


def test_within_bound_iii(sweep):
    for row in sweep.rows:
        for name in CONFIG.algorithms:
            assert row[name] <= row["bound_iii"]


def test_benchmark_minimal_selfloops(benchmark):
    small = Theorem23Config(
        expander_sizes=(64,), expander_degree=6, tokens_per_node=32
    )
    result = benchmark(run_minimal_selfloop_sweep, small)
    assert result.rows
