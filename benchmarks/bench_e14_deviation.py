"""E14 — deviation from the continuous process (proof-level check)."""

import pytest

from repro.experiments.deviation import DeviationConfig, run_deviation


@pytest.fixture(scope="module")
def result(print_result):
    return print_result(
        run_deviation(DeviationConfig(n=128, degree=6, rounds=300))
    )


def test_fair_balancers_within_constant_scales(result):
    for row in result.rows:
        if row["algorithm"] in (
            "rotor_router",
            "send_floor",
            "send_rounded",
            "rotor_router_star",
        ):
            assert row["max/scale"] <= 4.0


def test_adversary_deviates_most(result):
    by_name = {row["algorithm"]: row["max/scale"] for row in result.rows}
    fair = [
        by_name["rotor_router"],
        by_name["send_floor"],
        by_name["send_rounded"],
    ]
    assert by_name["arbitrary_rounding_fixed"] >= max(fair)


def test_benchmark_deviation(benchmark):
    result = benchmark(
        run_deviation,
        DeviationConfig(n=48, degree=4, rounds=80, tokens_per_node=16),
    )
    assert result.rows
