"""E5 — Theorem 3.3: good s-balancers reach O(d); speed vs s."""

import pytest

from repro.experiments.theorem33 import (
    Theorem33Config,
    run_good_balancers,
)


CONFIG = Theorem33Config(n=128, degree=6, tokens_per_node=64)


@pytest.fixture(scope="module")
def result(print_result):
    return print_result(run_good_balancers(CONFIG))


def test_every_case_reaches_bound(result):
    for row in result.rows:
        assert row["reached_bound"]


def test_time_not_increasing_in_s_for_star(result):
    star_rows = [
        row
        for row in result.rows
        if row["algorithm"].startswith("rotor_router_star")
    ]
    times = [row["time_to_target"] for row in star_rows]
    assert all(t is not None for t in times)
    # Allow small noise: s=max should not be slower than s=1 by > 25%.
    assert times[-1] <= times[0] * 1.25 + 2


def test_benchmark_good_balancer_run(benchmark):
    small = Theorem33Config(
        n=64, degree=6, tokens_per_node=32, s_values=(1, 4)
    )
    result = benchmark(run_good_balancers, small)
    assert result.rows
