"""E13 — engine throughput: rounds/second per algorithm.

The harness's own scalability; this is pytest-benchmark's home turf, so
every algorithm's 100-round simulation on a 1024-node expander is a
separate benchmark case.  The batched cases compare the vectorized
``(replicas, n)`` BatchRunner against the Python-loop-over-``Simulator``
baseline on identical scenarios (32 replicas, n=256): the batched path
must win by at least 2x while producing bit-identical load vectors.
"""

import numpy as np
import pytest

from repro.algorithms.registry import all_names, make
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)


N = 1024
ROUNDS = 100

BATCH_N = 256
BATCH_DEGREE = 8
BATCH_REPLICAS = 32
BATCH_ROUNDS = 100


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(N, 8, seed=3)


@pytest.mark.parametrize("algorithm", all_names())
def test_throughput(benchmark, graph, algorithm):
    def run_once():
        simulator = Simulator(
            graph,
            make(algorithm, seed=3),
            point_mass(N, 64 * N),
            record_history=False,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N


@pytest.fixture(scope="module")
def batch_graph():
    return families.random_regular(BATCH_N, BATCH_DEGREE, seed=3)


def _batch_scenario(algorithm: str) -> Scenario:
    return Scenario(
        graph=GraphSpec(
            "random_regular",
            {"n": BATCH_N, "degree": BATCH_DEGREE, "seed": 3},
        ),
        algorithm=AlgorithmSpec(algorithm),
        loads=LoadSpec(
            "uniform_random", {"total_tokens": 64 * BATCH_N, "seed": 1}
        ),
        stop=StopRule.fixed(BATCH_ROUNDS),
        replicas=BATCH_REPLICAS,
    )


@pytest.mark.parametrize("algorithm", ["send_floor", "send_rounded"])
@pytest.mark.parametrize("executor", ["loop", "batch"])
def test_replica_throughput(benchmark, batch_graph, algorithm, executor):
    """Batched (replicas, n) execution vs the looped Simulator baseline."""
    scenario = _batch_scenario(algorithm)

    def run_once():
        return scenario.run(executor=executor, graph=batch_graph)

    result = benchmark(run_once)
    assert all(
        r.final_loads.sum() == 64 * BATCH_N for r in result.results
    )


@pytest.mark.parametrize("algorithm", ["send_floor", "send_rounded"])
def test_batched_matches_looped(batch_graph, algorithm):
    """Replica-for-replica parity of the two executors (same seeds)."""
    scenario = _batch_scenario(algorithm)
    looped = scenario.run(executor="loop", graph=batch_graph)
    batched = scenario.run(executor="batch", graph=batch_graph)
    for left, right in zip(looped.results, batched.results):
        np.testing.assert_array_equal(left.final_loads, right.final_loads)
        assert left.discrepancy_history == right.discrepancy_history


def test_throughput_with_monitors(benchmark, graph):
    """Full monitor suite attached: the fairness-verification overhead."""
    from repro.core.fairness import (
        CumulativeFairnessMonitor,
        FairnessMonitor,
    )
    from repro.core.flows import FlowTracker

    def run_once():
        simulator = Simulator(
            graph,
            make("rotor_router"),
            point_mass(N, 64 * N),
            monitors=(
                FairnessMonitor(s=1),
                CumulativeFairnessMonitor(),
                FlowTracker(),
            ),
            record_history=False,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N
