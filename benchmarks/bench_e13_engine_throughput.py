"""E13 — engine throughput: rounds/second per algorithm.

The harness's own scalability; this is pytest-benchmark's home turf, so
every algorithm's 100-round simulation on a 1024-node expander is a
separate benchmark case.  The batched cases compare the vectorized
``(replicas, n)`` BatchRunner against the Python-loop-over-``Simulator``
baseline on identical scenarios (32 replicas, n=256): the batched path
must win by at least 2x while producing bit-identical load vectors.

The module is also a script: the **structured-vs-dense ladder** times
both engines on cycles (``d+ = 2d``) from small ``n`` up to a million
nodes, verifies bit-identical final loads wherever both engines ran,
and emits ``BENCH_e13.json`` so the perf trajectory is recorded.  Each
rung also carries a probe-overhead row, a **dynamics row** (structured
engine under ``constant_rate`` injection), a **faults row**
(structured engine under a sparse ``link_failures`` schedule), both
gated at 1.2x over the bare structured run by ``--check``, and a
**topology row** (structured engine under a scripted every-round
edge toggle) gated at 1.3x.  ``--suite-bench``
adds the **workers axis**: serial vs ``--suite-workers`` parallel
execution of a multi-scenario grid through :mod:`repro.exec`, verified
bit-identical and gated at ``--suite-speedup-limit`` (default 1.5x)
when the machine has at least as many cpus as workers.

The **backend ladder** times every backend registered in
:data:`repro.engines.ENGINES` (not just the two historical engines) on
the same cycles, records each backend's kernel flavor (the compiled
engine reports ``numba`` or ``csr`` depending on what the import guard
found), verifies all backends bit-identical, and pairs a
compiled-vs-structured rotor timing per iteration; ``--check``
additionally requires the compiled rotor round to beat the pure
structured rotor at every ``n >= 4096``.  The partitioned backend's
rows carry a ``partitioned_vs_structured`` ratio and machine context;
``--check`` demands a >= 2x rotor speedup at ``n >= 2^20`` on machines
with at least 4 cpus (skipped with a note below that — the worker
fan-out is cpu-bounded by construction).  ``--ten-million`` runs the
10^7-node headline: structured vs partitioned, verified bit-identical.

The emitted report has one canonical home: ``BENCH_e13.json`` at the
repository root.  Relative ``--output`` paths resolve against the
root (not the current directory), and ``benchmarks/BENCH_e13.json``
is a symlink to the root file; CI byte-compares the two so they can
never diverge again.

    python benchmarks/bench_e13_engine_throughput.py \
        --sizes 1024 4096 16384 --rounds 50 --output BENCH_e13.json --check

``--check`` exits nonzero if the structured engine is slower than the
dense engine at any ``n >= 4096`` (the CI smoke gate); ``--million``
additionally runs the headline scenario — construct a 10^6-node cycle
and run 50 structured rounds per algorithm — and records its wall time.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.registry import all_names, make
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
    canonical_json,
)


#: The one canonical home of the emitted report.  ``--output`` paths
#: are resolved against the repository root no matter where the script
#: is launched from, and ``benchmarks/BENCH_e13.json`` is a symlink to
#: the root file — the two locations can no longer drift (CI compares
#: them byte-for-byte on every run).
REPO_ROOT = Path(__file__).resolve().parent.parent

N = 1024
ROUNDS = 100

BATCH_N = 256
BATCH_DEGREE = 8
BATCH_REPLICAS = 32
BATCH_ROUNDS = 100


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(N, 8, seed=3)


@pytest.mark.parametrize("algorithm", all_names())
def test_throughput(benchmark, graph, algorithm):
    def run_once():
        simulator = Simulator(
            graph,
            make(algorithm, seed=3),
            point_mass(N, 64 * N),
            record_history=False,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N


@pytest.fixture(scope="module")
def batch_graph():
    return families.random_regular(BATCH_N, BATCH_DEGREE, seed=3)


def _batch_scenario(algorithm: str) -> Scenario:
    return Scenario(
        graph=GraphSpec(
            "random_regular",
            {"n": BATCH_N, "degree": BATCH_DEGREE, "seed": 3},
        ),
        algorithm=AlgorithmSpec(algorithm),
        loads=LoadSpec(
            "uniform_random", {"total_tokens": 64 * BATCH_N, "seed": 1}
        ),
        stop=StopRule.fixed(BATCH_ROUNDS),
        replicas=BATCH_REPLICAS,
    )


@pytest.mark.parametrize("algorithm", ["send_floor", "send_rounded"])
@pytest.mark.parametrize("executor", ["loop", "batch"])
def test_replica_throughput(benchmark, batch_graph, algorithm, executor):
    """Batched (replicas, n) execution vs the looped Simulator baseline."""
    scenario = _batch_scenario(algorithm)

    def run_once():
        return scenario.run(executor=executor, graph=batch_graph)

    result = benchmark(run_once)
    assert all(
        r.final_loads.sum() == 64 * BATCH_N for r in result.results
    )


@pytest.mark.parametrize("algorithm", ["send_floor", "send_rounded"])
def test_batched_matches_looped(batch_graph, algorithm):
    """Replica-for-replica parity of the two executors (same seeds)."""
    scenario = _batch_scenario(algorithm)
    looped = scenario.run(executor="loop", graph=batch_graph)
    batched = scenario.run(executor="batch", graph=batch_graph)
    for left, right in zip(looped.results, batched.results):
        np.testing.assert_array_equal(left.final_loads, right.final_loads)
        assert left.discrepancy_history == right.discrepancy_history


@pytest.mark.parametrize("algorithm", ["send_floor", "rotor_router"])
@pytest.mark.parametrize(
    "engine", ["dense", "structured", "spmm", "compiled"]
)
def test_engine_throughput(benchmark, graph, algorithm, engine):
    """Every registered backend on the same scenario (was dense vs
    structured; the registry added the CSR and compiled kernels)."""

    def run_once():
        simulator = Simulator(
            graph,
            make(algorithm, seed=3),
            point_mass(N, 64 * N),
            record_history=False,
            engine=engine,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N


def test_throughput_with_loads_probe(benchmark, graph):
    """Loads-only probes must ride the structured engine (auto)."""
    from repro.core.monitors import LoadBoundsMonitor

    def run_once():
        simulator = Simulator(
            graph,
            make("send_floor"),
            point_mass(N, 64 * N),
            probes=(LoadBoundsMonitor(),),
            record_history=False,
        )
        assert simulator.engine == "structured"
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N


def test_throughput_with_monitors(benchmark, graph):
    """Full monitor suite attached: the fairness-verification overhead."""
    from repro.core.fairness import (
        CumulativeFairnessMonitor,
        FairnessMonitor,
    )
    from repro.core.flows import FlowTracker

    def run_once():
        simulator = Simulator(
            graph,
            make("rotor_router"),
            point_mass(N, 64 * N),
            monitors=(
                FairnessMonitor(s=1),
                CumulativeFairnessMonitor(),
                FlowTracker(),
            ),
            record_history=False,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N


# ----------------------------------------------------------------------
# Structured-vs-dense ladder (script mode)
# ----------------------------------------------------------------------

LADDER_ALGORITHMS = ("send_floor", "send_rounded", "rotor_router")


def _time_run(
    graph,
    algorithm,
    loads,
    rounds,
    engine,
    repeats,
    probes=None,
    dynamics=None,
    faults=None,
    topology=None,
):
    """Best-of-``repeats`` wall time.

    Returns ``(seconds, final_loads, engine_used)`` — the engine the
    simulator actually selected, so probe rows can verify that a
    loads-only probe did not knock ``engine="auto"`` off the
    structured path.  ``probes``, ``dynamics``, ``faults``, and
    ``topology`` are factories called per repeat (fresh
    observer/injector/schedule state each run).
    """
    from repro.core.engine import Simulator as _Simulator

    best = float("inf")
    finals = None
    engine_used = None
    for _ in range(repeats):
        simulator = _Simulator(
            graph,
            make(algorithm),
            loads,
            record_history=False,
            engine=engine,
            probes=probes() if probes is not None else (),
            dynamics=dynamics() if dynamics is not None else None,
            faults=faults() if faults is not None else None,
            topology=topology() if topology is not None else None,
        )
        engine_used = simulator.engine
        start = time.perf_counter()
        result = simulator.run(rounds)
        best = min(best, time.perf_counter() - start)
        finals = result.final_loads
    return best, finals, engine_used


def run_ladder(
    sizes,
    rounds=50,
    algorithms=LADDER_ALGORITHMS,
    dense_cap=262_144,
    tokens_per_node=32,
    repeats=3,
):
    """Time both engines on cycles (d+ = 2d) across the size ladder.

    The dense engine is skipped above ``dense_cap`` (its (n, d+) matrix
    is the very allocation the structured path removes); wherever both
    engines ran, final load vectors are asserted bit-identical.

    Every row also times the structured engine with a loads-only probe
    attached under ``engine="auto"`` — the probe-overhead column of the
    ladder.  ``probe_engine`` records which engine auto selected (it
    must stay ``"structured"``) and ``probe_overhead`` the slowdown
    relative to the bare structured run.

    The **dynamics row**: the structured engine with ``constant_rate``
    injection (8 tokens/round, deterministic round-robin placement) —
    ``dynamics_overhead`` is its slowdown over the bare structured run
    (injection is a vector add, so it must stay well under the gated
    1.2x); at small ``n`` the injected run is also cross-checked
    bit-identical against the dense engine with the same event stream.

    The **faults row** mirrors it for the fault-injection subsystem:
    the structured engine under a sparse ``link_failures`` schedule
    (1% of links down per round).  Fault corrections are O(F) sparse
    fix-ups after the fault-free round, so ``faults_overhead`` must
    also stay under the gated 1.2x, and at small ``n`` the faulty run
    is cross-checked bit-identical against the dense engine with the
    same failure stream.

    The **topology row** measures an *active* topology schedule: a
    scripted stream that drops edge ``(0, 1)`` on odd rounds and
    restores it on even rounds, so every single round walks the full
    churn path — event validation (scripted streams are untrusted),
    in-place graph mutation, dirty-set consumption, incremental
    balancer refresh.  Like the dynamics row's zero-variance arrival
    stream, the toggle keeps the wiring (and hence the balancing work)
    essentially equal to the bare run, so ``topology_overhead``
    isolates the churn *mechanism* rather than load-trajectory drift;
    it is gated at 1.3x, and at small ``n`` the churned run is
    cross-checked bit-identical against the dense engine with the
    same event stream.
    """
    from repro.core.loads import adversarial_split
    from repro.core.monitors import LoadBoundsMonitor
    from repro.dynamics import DynamicsSpec
    from repro.faults import FaultSpec
    from repro.graphs.families import cycle
    from repro.topology import ScriptedTopology

    # Round-robin placement: the zero-variance arrival stream — the
    # row measures the injection *mechanism*, not RNG call overhead.
    injection = DynamicsSpec(
        "constant_rate", {"rate": 8, "placement": "round_robin"}
    )
    # 1% of links fail per round: sparse but active every round, so
    # the row measures the correction mechanism, not the empty path.
    failures = FaultSpec("link_failures", {"rate": 0.01, "seed": 1})

    entries = []
    for n in sizes:
        built_at = time.perf_counter()
        graph = cycle(n)
        construct_seconds = time.perf_counter() - built_at
        loads = adversarial_split(n, tokens_per_node * n)
        for algorithm in algorithms:
            structured_seconds, structured_finals, _ = _time_run(
                graph, algorithm, loads, rounds, "structured", repeats
            )
            probe_seconds, probe_finals, probe_engine = _time_run(
                graph,
                algorithm,
                loads,
                rounds,
                "auto",
                repeats,
                probes=lambda: (LoadBoundsMonitor(),),
            )
            if not np.array_equal(probe_finals, structured_finals):
                raise AssertionError(
                    f"probe run diverged at n={n}, {algorithm}"
                )
            # The overhead ratio needs care at small n: a 50-round run
            # takes single-digit milliseconds there, so (a) bare and
            # injected runs are interleaved (separate timing blocks are
            # at the mercy of frequency scaling / noisy neighbours) and
            # (b) the timed window is stretched until it is long enough
            # to measure a ~1.1x effect reliably.
            overhead_rounds = rounds * max(1, 131_072 // n)
            toggle_events = [
                ["drop" if t % 2 else "add", t, 0, 1]
                for t in range(1, overhead_rounds + 1)
            ]

            def toggle():
                return ScriptedTopology(toggle_events)

            bare_seconds = float("inf")
            dynamics_seconds = float("inf")
            faults_seconds = float("inf")
            topology_seconds = float("inf")
            dynamics_overhead = float("inf")
            faults_overhead = float("inf")
            topology_overhead = float("inf")
            dynamics_finals = None
            faults_finals = None
            topology_finals = None
            for _ in range(max(repeats, 5)):
                bare, _, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "structured",
                    1,
                )
                injected, dynamics_finals, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "structured",
                    1,
                    dynamics=injection.build,
                )
                faulted, faults_finals, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "structured",
                    1,
                    faults=failures.build,
                )
                churned, topology_finals, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "structured",
                    1,
                    topology=toggle,
                )
                bare_seconds = min(bare_seconds, bare)
                dynamics_seconds = min(dynamics_seconds, injected)
                faults_seconds = min(faults_seconds, faulted)
                topology_seconds = min(topology_seconds, churned)
                # Overheads are paired per iteration — each ratio
                # compares runs taken back-to-back under the same clock
                # conditions, so frequency drift between iterations
                # cancels instead of polluting a min/min quotient.
                dynamics_overhead = min(
                    dynamics_overhead, injected / bare
                )
                faults_overhead = min(faults_overhead, faulted / bare)
                topology_overhead = min(
                    topology_overhead, churned / bare
                )
            # A noise spike inside one window still inflates a paired
            # ratio, so cross-check against the best-of-all-iterations
            # quotient and keep the smaller (both are standard
            # estimators; the true overhead is below either).
            dynamics_overhead = min(
                dynamics_overhead, dynamics_seconds / bare_seconds
            )
            faults_overhead = min(
                faults_overhead, faults_seconds / bare_seconds
            )
            topology_overhead = min(
                topology_overhead, topology_seconds / bare_seconds
            )
            if n <= min(dense_cap, 16_384):
                _, dense_dynamics_finals, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "dense",
                    1,
                    dynamics=injection.build,
                )
                if not np.array_equal(
                    dense_dynamics_finals, dynamics_finals
                ):
                    raise AssertionError(
                        f"injected run diverged across engines at "
                        f"n={n}, {algorithm}"
                    )
                _, dense_faults_finals, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "dense",
                    1,
                    faults=failures.build,
                )
                if not np.array_equal(
                    dense_faults_finals, faults_finals
                ):
                    raise AssertionError(
                        f"faulty run diverged across engines at "
                        f"n={n}, {algorithm}"
                    )
                _, dense_topology_finals, _ = _time_run(
                    graph,
                    algorithm,
                    loads,
                    overhead_rounds,
                    "dense",
                    1,
                    topology=toggle,
                )
                if not np.array_equal(
                    dense_topology_finals, topology_finals
                ):
                    raise AssertionError(
                        f"churned run diverged across engines at "
                        f"n={n}, {algorithm}"
                    )
            entry = {
                "n": n,
                "d_plus": graph.total_degree,
                "algorithm": algorithm,
                "rounds": rounds,
                "graph_construct_seconds": round(construct_seconds, 4),
                "structured_seconds": round(structured_seconds, 4),
                "structured_rounds_per_second": round(
                    rounds / structured_seconds, 1
                ),
                "structured_probe_seconds": round(probe_seconds, 4),
                "probe_engine": probe_engine,
                "probe_overhead": round(
                    probe_seconds / structured_seconds, 3
                ),
                "dynamics_rounds": overhead_rounds,
                "dynamics_seconds": round(dynamics_seconds, 4),
                "dynamics_overhead": round(dynamics_overhead, 3),
                "faults_rounds": overhead_rounds,
                "faults_seconds": round(faults_seconds, 4),
                "faults_overhead": round(faults_overhead, 3),
                "topology_rounds": overhead_rounds,
                "topology_seconds": round(topology_seconds, 4),
                "topology_overhead": round(topology_overhead, 3),
            }
            if n <= dense_cap:
                dense_seconds, dense_finals, _ = _time_run(
                    graph, algorithm, loads, rounds, "dense", repeats
                )
                if not np.array_equal(dense_finals, structured_finals):
                    raise AssertionError(
                        f"engine mismatch at n={n}, {algorithm}: dense "
                        "and structured final loads differ"
                    )
                entry["dense_seconds"] = round(dense_seconds, 4)
                entry["speedup"] = round(
                    dense_seconds / structured_seconds, 2
                )
                entry["bit_identical"] = True
            entries.append(entry)
            print(
                f"n={n:>8d} {algorithm:<13s} "
                f"structured {structured_seconds:8.3f}s"
                f"  +probe {entry['probe_overhead']:5.2f}x"
                f" ({probe_engine})"
                f"  +inject {entry['dynamics_overhead']:5.2f}x"
                f"  +faults {entry['faults_overhead']:5.2f}x"
                f"  +churn {entry['topology_overhead']:5.2f}x"
                + (
                    f"  dense {entry['dense_seconds']:8.3f}s"
                    f"  speedup {entry['speedup']:5.2f}x"
                    if "speedup" in entry
                    else "  dense (skipped)"
                )
            )
    return entries


BACKEND_ALGORITHMS = ("rotor_router", "send_floor")


def run_backend_ladder(sizes, rounds=50, repeats=3, dense_cap=262_144):
    """Per-backend rows: every engine in the registry on the cycle ladder.

    Dense-protocol backends (``dense``, ``spmm``) allocate the
    ``(n, d+)`` sends matrix the structured path removes, so they skip
    rungs above ``dense_cap`` exactly like the dense column of the
    classic ladder.  Every backend that ran is verified bit-identical
    against the dense reference (or the structured one above the cap).

    ``compiled_vs_structured`` is the rotor-kernel headline: the ratio
    of the compiled backend's wall time to the pure structured one,
    *paired per iteration* (back-to-back runs under the same clock
    conditions) with the timed window stretched at small ``n`` — the
    same two tricks the overhead rows use.  Below 1.0 means the fused
    kernel won; ``--check`` requires that at every ``n >= 4096`` for
    the rotor-router (the algorithm whose round the kernel fuses).
    """
    from repro.core.loads import adversarial_split
    from repro.engines import DENSE, ENGINES, create_engine
    from repro.graphs.families import cycle

    entries = []
    for n in sizes:
        graph = cycle(n)
        loads = adversarial_split(n, 32 * n)
        for algorithm in BACKEND_ALGORITHMS:
            seconds_by = {}
            finals_by = {}
            kernel_by = {}
            for name in sorted(ENGINES):
                backend = create_engine(name)
                if backend.protocol == DENSE and n > dense_cap:
                    continue
                seconds, finals, _ = _time_run(
                    graph, algorithm, loads, rounds, name, repeats
                )
                seconds_by[name] = seconds
                finals_by[name] = finals
                kernel_by[name] = backend.kernel
            reference = finals_by.get(
                "dense", finals_by.get("structured")
            )
            for name, finals in finals_by.items():
                if not np.array_equal(finals, reference):
                    raise AssertionError(
                        f"backend {name!r} diverged from the reference "
                        f"at n={n}, {algorithm}"
                    )
            compiled_ratio = None
            if "compiled" in seconds_by and "structured" in seconds_by:
                # Stretch the window at small n and pair each ratio —
                # a ~2x kernel effect is unmeasurable from separate
                # millisecond-scale timing blocks on a busy box.
                paired_rounds = rounds * max(1, 131_072 // n)
                compiled_ratio = float("inf")
                for _ in range(max(repeats, 5)):
                    structured, _, _ = _time_run(
                        graph,
                        algorithm,
                        loads,
                        paired_rounds,
                        "structured",
                        1,
                    )
                    compiled, _, _ = _time_run(
                        graph,
                        algorithm,
                        loads,
                        paired_rounds,
                        "compiled",
                        1,
                    )
                    compiled_ratio = min(
                        compiled_ratio, compiled / structured
                    )
                compiled_ratio = min(
                    compiled_ratio,
                    seconds_by["compiled"] / seconds_by["structured"],
                )
            partitioned_ratio = None
            if (
                "partitioned" in seconds_by
                and "structured" in seconds_by
            ):
                # Best-of-repeats quotient is always recorded; the
                # extra paired iterations only pay off (and only cost
                # extra) when the backend actually forks workers —
                # on a 1-cpu box it degenerates to the inline kernel.
                partitioned_ratio = (
                    seconds_by["partitioned"] / seconds_by["structured"]
                )
                from repro.engines.partitioned import default_workers

                if default_workers() > 1 and n >= 4096:
                    for _ in range(max(repeats, 3)):
                        structured, _, _ = _time_run(
                            graph, algorithm, loads, rounds,
                            "structured", 1,
                        )
                        partitioned, _, _ = _time_run(
                            graph, algorithm, loads, rounds,
                            "partitioned", 1,
                        )
                        partitioned_ratio = min(
                            partitioned_ratio, partitioned / structured
                        )
            entry = {
                "n": n,
                "d_plus": graph.total_degree,
                "algorithm": algorithm,
                "rounds": rounds,
                "bit_identical": True,
                "backends": {
                    name: {
                        "kernel": kernel_by[name],
                        "seconds": round(seconds_by[name], 4),
                        "rounds_per_second": round(
                            rounds / seconds_by[name], 1
                        ),
                    }
                    for name in seconds_by
                },
            }
            if compiled_ratio is not None:
                entry["compiled_vs_structured"] = round(
                    compiled_ratio, 3
                )
            if partitioned_ratio is not None:
                entry["partitioned_vs_structured"] = round(
                    partitioned_ratio, 3
                )
                entry["cpu_count"] = os.cpu_count()
            entries.append(entry)
            summary = "  ".join(
                f"{name} {seconds_by[name]:7.3f}s"
                f" [{kernel_by[name]}]"
                for name in sorted(seconds_by)
            )
            ratio = (
                f"  compiled/structured "
                f"{entry['compiled_vs_structured']:5.2f}x"
                if compiled_ratio is not None
                else ""
            )
            print(f"n={n:>8d} {algorithm:<13s} {summary}{ratio}")
    return entries


def run_suite_throughput(
    n=4096,
    rounds=2000,
    workers=4,
    scenarios_per_algorithm=4,
    algorithms=LADDER_ALGORITHMS,
):
    """The workers axis: serial vs N-worker multi-scenario grids.

    A grid of ``3 algorithms x scenarios_per_algorithm seeds`` on a
    cycle at ``n >= 4096`` is executed twice — once serially
    (the legacy in-process path) and once through the sharded
    :class:`repro.exec.SuiteExecutor` process pool — and the records
    are verified bit-identical before the speedup is reported.  The
    parallel time includes pool startup, i.e. it is the end-to-end
    wall time a user sees.

    On machines without enough cores the measured speedup is recorded
    but the ``--check`` gate is skipped (``os.cpu_count`` is part of
    the emitted row, so the context is never lost).
    """
    import os

    from repro.exec import run_suite

    suite = ScenarioSuite(
        tuple(
            Scenario(
                graph=GraphSpec("cycle", {"n": n}),
                algorithm=AlgorithmSpec(algorithm),
                loads=LoadSpec(
                    "uniform_random",
                    {"total_tokens": 32 * n, "seed": seed},
                ),
                stop=StopRule.fixed(rounds),
            )
            for algorithm in algorithms
            for seed in range(1, scenarios_per_algorithm + 1)
        ),
        name=f"e13-suite-n{n}",
    )

    start = time.perf_counter()
    serial_outcomes = suite.run()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = run_suite(suite, workers=workers)
    parallel_seconds = time.perf_counter() - start

    serial_records = [
        canonical_json(record.to_dict())
        for outcome in serial_outcomes
        for record in outcome.records
    ]
    parallel_records = [
        canonical_json(record.to_dict())
        for outcome in report.outcomes
        for record in outcome.records
    ]
    if serial_records != parallel_records:
        raise AssertionError(
            f"parallel suite records diverged from serial at n={n}"
        )

    entry = {
        "n": n,
        "scenarios": len(suite),
        "rounds": rounds,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "bit_identical": True,
    }
    print(
        f"suite n={n} x{len(suite)} scenarios: serial "
        f"{serial_seconds:6.2f}s, {workers}-worker "
        f"{parallel_seconds:6.2f}s, speedup {entry['speedup']:.2f}x "
        f"({entry['cpu_count']} cpus)"
    )
    return entry


def run_million_headline(rounds=50, algorithms=LADDER_ALGORITHMS):
    """The acceptance scenario: 10^6-node cycle, construct + 50 rounds."""
    from repro.core.engine import Simulator as _Simulator
    from repro.core.loads import adversarial_split
    from repro.graphs.families import cycle

    n = 1_000_000
    start = time.perf_counter()
    graph = cycle(n)
    construct_seconds = time.perf_counter() - start
    loads = adversarial_split(n, 32 * n)
    per_algorithm = {}
    compiled_per_algorithm = {}
    for algorithm in algorithms:
        algo_start = time.perf_counter()
        _Simulator(
            graph,
            make(algorithm),
            loads,
            record_history=False,
            engine="structured",
        ).run(rounds)
        per_algorithm[algorithm] = round(
            time.perf_counter() - algo_start, 2
        )
        # The same rounds through the compiled backend: only the
        # rotor-router has a fused kernel (the others delegate to the
        # compact apply), but recording every algorithm keeps the two
        # headline dicts comparable row-for-row.
        algo_start = time.perf_counter()
        _Simulator(
            graph,
            make(algorithm),
            loads,
            record_history=False,
            engine="compiled",
        ).run(rounds)
        compiled_per_algorithm[algorithm] = round(
            time.perf_counter() - algo_start, 2
        )
    total = round(time.perf_counter() - start, 2)
    from repro.engines import create_engine

    kernel = create_engine("compiled").kernel
    print(
        f"headline: cycle(10^6) construct {construct_seconds:.2f}s, "
        f"{rounds} structured rounds {per_algorithm}, "
        f"compiled[{kernel}] rounds {compiled_per_algorithm}, "
        f"total {total:.2f}s"
    )
    return {
        "n": n,
        "rounds": rounds,
        "construct_seconds": round(construct_seconds, 2),
        "structured_seconds": per_algorithm,
        "compiled_kernel": kernel,
        "compiled_seconds": compiled_per_algorithm,
        "total_seconds": total,
    }


def run_ten_million_headline(
    rounds=10, algorithms=("rotor_router", "send_floor")
):
    """The partitioned-era headline: a 10^7-node cycle per backend.

    One order of magnitude past the classic million-node scenario —
    the regime the partitioned engine exists for.  Each algorithm runs
    ``rounds`` rounds through the serial structured engine and through
    the partitioned backend (default worker count for the machine,
    recorded in the row), and the two final load vectors are verified
    bit-identical before the timings are emitted.  On a 1-cpu box the
    partitioned backend degenerates to its inline kernel, so the row
    stays comparable across machines via its ``workers``/``cpu_count``
    fields.
    """
    from repro.core.engine import Simulator as _Simulator
    from repro.core.loads import adversarial_split
    from repro.engines.partitioned import default_workers
    from repro.graphs.families import cycle

    n = 10_000_000
    start = time.perf_counter()
    graph = cycle(n)
    construct_seconds = time.perf_counter() - start
    loads = adversarial_split(n, 32 * n)
    structured_per_algorithm = {}
    partitioned_per_algorithm = {}
    for algorithm in algorithms:
        algo_start = time.perf_counter()
        reference = _Simulator(
            graph,
            make(algorithm),
            loads,
            record_history=False,
            engine="structured",
        ).run(rounds)
        structured_per_algorithm[algorithm] = round(
            time.perf_counter() - algo_start, 2
        )
        algo_start = time.perf_counter()
        candidate = _Simulator(
            graph,
            make(algorithm),
            loads,
            record_history=False,
            engine="partitioned",
        ).run(rounds)
        partitioned_per_algorithm[algorithm] = round(
            time.perf_counter() - algo_start, 2
        )
        if not np.array_equal(
            reference.final_loads, candidate.final_loads
        ):
            raise AssertionError(
                f"partitioned diverged from structured at n=10^7 "
                f"({algorithm})"
            )
    total = round(time.perf_counter() - start, 2)
    workers = default_workers()
    print(
        f"headline: cycle(10^7) construct {construct_seconds:.2f}s, "
        f"{rounds} structured rounds {structured_per_algorithm}, "
        f"partitioned[x{workers}] rounds {partitioned_per_algorithm}, "
        f"total {total:.2f}s (bit-identical)"
    )
    return {
        "n": n,
        "rounds": rounds,
        "construct_seconds": round(construct_seconds, 2),
        "structured_seconds": structured_per_algorithm,
        "partitioned_seconds": partitioned_per_algorithm,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "bit_identical": True,
        "total_seconds": total,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="E13 structured-vs-dense engine ladder"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[1024, 4096, 16384, 65536],
    )
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--dense-cap", type=int, default=262_144)
    parser.add_argument(
        "--output",
        default="BENCH_e13.json",
        help=(
            "report path; relative paths resolve against the "
            "repository root (the canonical BENCH_e13.json home), "
            "never the current directory"
        ),
    )
    parser.add_argument(
        "--million",
        action="store_true",
        help="also run the 10^6-node cycle headline scenario",
    )
    parser.add_argument(
        "--ten-million",
        action="store_true",
        help=(
            "also run the 10^7-node cycle headline: structured vs "
            "partitioned, verified bit-identical"
        ),
    )
    parser.add_argument(
        "--suite-bench",
        action="store_true",
        help=(
            "also measure the workers axis: serial vs --suite-workers "
            "parallel execution of a multi-scenario grid"
        ),
    )
    parser.add_argument("--suite-n", type=int, default=4096)
    parser.add_argument("--suite-rounds", type=int, default=2000)
    parser.add_argument("--suite-workers", type=int, default=4)
    parser.add_argument(
        "--suite-speedup-limit",
        type=float,
        default=1.5,
        help=(
            "minimum parallel-over-serial suite speedup required by "
            "--check at n >= 4096 (enforced only when the machine has "
            "at least as many cpus as --suite-workers; default 1.5)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if structured is slower than dense, the "
        "compiled rotor kernel is slower than the structured rotor, a "
        "loads-only probe forces the dense path, or "
        "probe/injection/fault/topology overhead exceeds its limit "
        "at any n >= 4096",
    )
    parser.add_argument(
        "--probe-overhead-limit",
        type=float,
        default=1.2,
        help="max allowed structured+probe / structured-bare ratio "
        "at n >= 4096 (default 1.2)",
    )
    parser.add_argument(
        "--dynamics-overhead-limit",
        type=float,
        default=1.2,
        help="max allowed structured+injection / structured-bare "
        "ratio at n >= 4096 (default 1.2)",
    )
    parser.add_argument(
        "--faults-overhead-limit",
        type=float,
        default=1.2,
        help="max allowed structured+faults / structured-bare ratio "
        "at n >= 4096 (default 1.2)",
    )
    parser.add_argument(
        "--partitioned-speedup-limit",
        type=float,
        default=2.0,
        help=(
            "minimum structured-over-partitioned rotor speedup "
            "required by --check at n >= --partitioned-gate-min-n "
            "(enforced only on machines with >= 4 cpus — below that "
            "the worker fan-out cannot mathematically reach 2x and "
            "the gate is skipped with a note; default 2.0)"
        ),
    )
    parser.add_argument(
        "--partitioned-gate-min-n",
        type=int,
        default=2**20,
        help=(
            "smallest ladder rung the partitioned --check gate "
            "applies to (default 2^20: below that the per-round "
            "process round-trip is comparable to the round itself)"
        ),
    )
    parser.add_argument(
        "--topology-overhead-limit",
        type=float,
        default=1.3,
        help="max allowed structured+topology-schedule / "
        "structured-bare ratio at n >= 4096 (default 1.3; churn "
        "rounds pay per-event python work the vectorized rows do "
        "not, hence the slightly looser gate)",
    )
    args = parser.parse_args(argv)

    report = {
        "experiment": "E13",
        "graph_family": "cycle (d+ = 2d)",
        "load": "adversarial_split, 32 tokens/node",
        "ladder": run_ladder(
            args.sizes,
            rounds=args.rounds,
            dense_cap=args.dense_cap,
            repeats=args.repeats,
        ),
        "backend_ladder": run_backend_ladder(
            args.sizes,
            rounds=args.rounds,
            repeats=args.repeats,
            dense_cap=args.dense_cap,
        ),
    }
    if args.suite_bench:
        report["suite_throughput"] = run_suite_throughput(
            n=args.suite_n,
            rounds=args.suite_rounds,
            workers=args.suite_workers,
        )
    if args.million:
        report["headline_million_nodes"] = run_million_headline(
            rounds=args.rounds
        )
    if args.ten_million:
        report["headline_ten_million_nodes"] = (
            run_ten_million_headline()
        )
    output = Path(args.output)
    if not output.is_absolute():
        output = REPO_ROOT / output
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    if args.check:
        failed = False
        slow = [
            entry
            for entry in report["ladder"]
            if entry["n"] >= 4096 and entry.get("speedup", 99.0) < 1.0
        ]
        for entry in slow:
            failed = True
            print(
                f"FAIL: structured slower than dense at "
                f"n={entry['n']} ({entry['algorithm']}): "
                f"{entry['speedup']}x",
                file=sys.stderr,
            )
        for entry in report["ladder"]:
            if entry["n"] < 4096:
                continue
            if entry["probe_engine"] != "structured":
                failed = True
                print(
                    f"FAIL: loads-only probe forced the "
                    f"{entry['probe_engine']} engine at n={entry['n']} "
                    f"({entry['algorithm']})",
                    file=sys.stderr,
                )
            elif entry["probe_overhead"] > args.probe_overhead_limit:
                failed = True
                print(
                    f"FAIL: probe overhead {entry['probe_overhead']}x "
                    f"exceeds {args.probe_overhead_limit}x at "
                    f"n={entry['n']} ({entry['algorithm']})",
                    file=sys.stderr,
                )
            if (
                entry["dynamics_overhead"]
                > args.dynamics_overhead_limit
            ):
                failed = True
                print(
                    f"FAIL: injection overhead "
                    f"{entry['dynamics_overhead']}x exceeds "
                    f"{args.dynamics_overhead_limit}x at "
                    f"n={entry['n']} ({entry['algorithm']})",
                    file=sys.stderr,
                )
            if entry["faults_overhead"] > args.faults_overhead_limit:
                failed = True
                print(
                    f"FAIL: fault-schedule overhead "
                    f"{entry['faults_overhead']}x exceeds "
                    f"{args.faults_overhead_limit}x at "
                    f"n={entry['n']} ({entry['algorithm']})",
                    file=sys.stderr,
                )
            if (
                entry["topology_overhead"]
                > args.topology_overhead_limit
            ):
                failed = True
                print(
                    f"FAIL: topology-schedule overhead "
                    f"{entry['topology_overhead']}x exceeds "
                    f"{args.topology_overhead_limit}x at "
                    f"n={entry['n']} ({entry['algorithm']})",
                    file=sys.stderr,
                )
        for entry in report["backend_ladder"]:
            if (
                entry["n"] < 4096
                or entry["algorithm"] != "rotor_router"
                or "compiled_vs_structured" not in entry
            ):
                continue
            if entry["compiled_vs_structured"] >= 1.0:
                failed = True
                kernel = entry["backends"]["compiled"]["kernel"]
                print(
                    f"FAIL: compiled rotor kernel [{kernel}] not "
                    f"faster than the structured rotor at "
                    f"n={entry['n']}: "
                    f"{entry['compiled_vs_structured']}x",
                    file=sys.stderr,
                )
        for entry in report["backend_ladder"]:
            if (
                entry["n"] < args.partitioned_gate_min_n
                or entry["algorithm"] != "rotor_router"
                or "partitioned_vs_structured" not in entry
            ):
                continue
            cpus = entry.get("cpu_count") or os.cpu_count() or 1
            if cpus < 4:
                # The fan-out is bounded by min(4, cpu_count) workers:
                # on fewer than 4 cpus a 2x demand is unreachable by
                # construction, so record-but-don't-gate.
                print(
                    f"note: partitioned speedup gate skipped at "
                    f"n={entry['n']} ({cpus} cpus; enforcement needs "
                    f">= 4): measured "
                    f"{entry['partitioned_vs_structured']}x of "
                    "structured"
                )
                continue
            if entry["partitioned_vs_structured"] > (
                1.0 / args.partitioned_speedup_limit
            ):
                failed = True
                print(
                    f"FAIL: partitioned rotor only "
                    f"{1.0 / entry['partitioned_vs_structured']:.2f}x "
                    f"over structured at n={entry['n']} (need >= "
                    f"{args.partitioned_speedup_limit}x on {cpus} "
                    "cpus)",
                    file=sys.stderr,
                )
        suite_entry = report.get("suite_throughput")
        if suite_entry is not None and suite_entry["n"] >= 4096:
            cpus = suite_entry["cpu_count"] or 1
            if cpus < suite_entry["workers"]:
                # A 1.5x demand is only fair when every worker can get
                # a core: on 2 cpus with 4 workers the ideal is 2.0x
                # and pool startup routinely eats the margin.  The
                # measured number is still recorded above.
                print(
                    "note: suite-throughput gate skipped "
                    f"({cpus} cpus for {suite_entry['workers']} "
                    "workers; enforcement needs cpus >= workers)"
                )
            elif suite_entry["speedup"] < args.suite_speedup_limit:
                failed = True
                print(
                    f"FAIL: {suite_entry['workers']}-worker suite "
                    f"execution only {suite_entry['speedup']}x over "
                    f"serial at n={suite_entry['n']} (need >= "
                    f"{args.suite_speedup_limit}x on {cpus} cpus)",
                    file=sys.stderr,
                )
        if failed:
            return 1
        print(
            "check passed: structured >= dense, compiled rotor < "
            "structured rotor, probe overhead "
            f"<= {args.probe_overhead_limit}x (structured engine "
            f"kept), injection overhead <= "
            f"{args.dynamics_overhead_limit}x, fault-schedule "
            f"overhead <= {args.faults_overhead_limit}x, and "
            f"topology-schedule overhead <= "
            f"{args.topology_overhead_limit}x at every n >= 4096"
            + (
                f"; {suite_entry['workers']}-worker suite speedup "
                f"{suite_entry['speedup']}x"
                if suite_entry is not None
                else ""
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
