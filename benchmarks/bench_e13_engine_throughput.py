"""E13 — engine throughput: rounds/second per algorithm.

The harness's own scalability; this is pytest-benchmark's home turf, so
every algorithm's 100-round simulation on a 1024-node expander is a
separate benchmark case.
"""

import pytest

from repro.algorithms.registry import all_names, make
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.graphs import families


N = 1024
ROUNDS = 100


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(N, 8, seed=3)


@pytest.mark.parametrize("algorithm", all_names())
def test_throughput(benchmark, graph, algorithm):
    def run_once():
        simulator = Simulator(
            graph,
            make(algorithm, seed=3),
            point_mass(N, 64 * N),
            record_history=False,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N


def test_throughput_with_monitors(benchmark, graph):
    """Full monitor suite attached: the fairness-verification overhead."""
    from repro.core.fairness import (
        CumulativeFairnessMonitor,
        FairnessMonitor,
    )
    from repro.core.flows import FlowTracker

    def run_once():
        simulator = Simulator(
            graph,
            make("rotor_router"),
            point_mass(N, 64 * N),
            monitors=(
                FairnessMonitor(s=1),
                CumulativeFairnessMonitor(),
                FlowTracker(),
            ),
            record_history=False,
        )
        return simulator.run(ROUNDS)

    result = benchmark(run_once)
    assert result.final_loads.sum() == 64 * N
