"""E2/E9 — Theorem 2.3(i) on expanders + separation from [17]'s class."""

import pytest

from repro.experiments.theorem23 import (
    Theorem23Config,
    run_expander_sweep,
)


CONFIG = Theorem23Config(
    expander_sizes=(64, 128, 256),
    expander_degree=6,
    tokens_per_node=64,
)


@pytest.fixture(scope="module")
def sweep(print_result):
    return print_result(run_expander_sweep(CONFIG))


def test_fair_balancers_within_bound_i(sweep):
    for row in sweep.rows:
        for name in CONFIG.algorithms:
            assert row[name] <= row["bound_i"]


def test_adversary_worse_than_rotor_router(sweep):
    for row in sweep.rows:
        assert row["adversary"] >= row["rotor_router"]


def test_benchmark_expander_sweep(benchmark):
    small = Theorem23Config(
        expander_sizes=(64,), expander_degree=6, tokens_per_node=32
    )
    result = benchmark(run_expander_sweep, small)
    assert result.rows
