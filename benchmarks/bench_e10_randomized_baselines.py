"""E10 — randomized baselines ([5], [18]) vs the deterministic schemes.

Multi-seed measurement of the two randomized rows of Table 1, including
negative-load event counting for the edge-rounding scheme.
"""

import pytest

from repro.algorithms.registry import make
from repro.analysis.convergence import measure_after_t
from repro.core.loads import point_mass
from repro.experiments.base import ExperimentResult, timed
from repro.graphs import families
from repro.graphs.spectral import eigenvalue_gap


def run_randomized_experiment(
    n=128, degree=8, seeds=(1, 2, 3)
) -> ExperimentResult:
    import numpy as np

    graph = families.random_regular(n, degree, seed=1)
    gap = eigenvalue_gap(graph)
    # Two workloads: a heavy burst (negative loads cannot occur — empty
    # nodes send nothing) and a lean near-uniform one, where randomized
    # edge rounding's demand routinely exceeds a node's couple of
    # tokens — Table 1's NL = ✗ in action.
    workloads = {
        "burst": lambda: point_mass(n, 64 * n),
        "lean": lambda: np.ones(n, dtype=np.int64) * 2,
    }
    rows = []
    with timed() as clock:
        for name in (
            "randomized_extra_tokens",
            "randomized_edge_rounding",
            "rotor_router",
        ):
            for workload_name, build in workloads.items():
                discs, min_loads = [], []
                for seed in seeds:
                    report = measure_after_t(
                        graph,
                        make(name, seed=seed),
                        build(),
                        gap=gap,
                    )
                    discs.append(report.plateau_discrepancy)
                    min_loads.append(report.min_load_ever)
                rows.append(
                    {
                        "algorithm": name,
                        "workload": workload_name,
                        "disc_min": min(discs),
                        "disc_max": max(discs),
                        "min_load_ever": min(min_loads),
                        "went_negative": min(min_loads) < 0,
                    }
                )
    return ExperimentResult(
        experiment_id="E10",
        title="Randomized baselines over several seeds "
        "(negative-load accounting)",
        rows=rows,
        notes=[
            "only randomized_edge_rounding may go negative (Table 1's "
            "NL column); it does so on the lean workload"
        ],
        elapsed_seconds=clock.elapsed,
    )


@pytest.fixture(scope="module")
def result(print_result):
    return print_result(run_randomized_experiment())


def test_only_edge_rounding_may_go_negative(result):
    for row in result.rows:
        if row["algorithm"] != "randomized_edge_rounding":
            assert not row["went_negative"]


def test_edge_rounding_goes_negative_on_lean_workload(result):
    lean = [
        row
        for row in result.rows
        if row["algorithm"] == "randomized_edge_rounding"
        and row["workload"] == "lean"
    ]
    assert lean and lean[0]["went_negative"]


def test_all_balance(result):
    for row in result.rows:
        assert row["disc_max"] <= 60


def test_benchmark_randomized(benchmark):
    result = benchmark(run_randomized_experiment, 64, 6, (1,))
    assert result.rows
