"""E11 — ablation: how many self-loops does the rotor-router need?"""

import pytest

from repro.experiments.ablations import (
    AblationConfig,
    run_selfloop_ablation,
)


@pytest.fixture(scope="module")
def result(print_result):
    return print_result(
        run_selfloop_ablation(
            AblationConfig(n=128, degree=6, tokens_per_node=64, cycle_n=33)
        )
    )


def test_worst_case_only_at_zero_loops(result):
    for row in result.rows:
        if row["d_self"] == 0:
            assert row["worst_case_stuck"] is not None
            assert row["worst_case_stuck"] > row["disc_after_T"]
        else:
            assert row["worst_case_stuck"] is None


def test_benign_runs_balance_at_all_loop_counts(result):
    for row in result.rows:
        assert row["disc_after_T"] <= 4 * row["d"] + 4


def test_benchmark_ablation(benchmark):
    result = benchmark(
        run_selfloop_ablation,
        AblationConfig(n=48, degree=4, tokens_per_node=16, cycle_n=9),
    )
    assert result.rows
