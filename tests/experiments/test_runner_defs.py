"""The single experiment-definition table: fast/full stay in sync."""

import pytest

from repro.experiments.runner import (
    EXPERIMENT_DEFS,
    EXPERIMENTS,
    FULL_EXPERIMENTS,
    FULL_OVERRIDDEN,
    run_all,
)


class TestDefinitionTable:
    def test_fast_and_full_keys_identical(self):
        # The historical wart: FULL_EXPERIMENTS re-declared the dict
        # with shadowed lambdas, so keys could drift.  Both views now
        # derive from EXPERIMENT_DEFS and must stay key-identical.
        assert set(EXPERIMENTS) == set(EXPERIMENT_DEFS)
        assert set(FULL_EXPERIMENTS) == set(EXPERIMENT_DEFS)

    def test_both_configurations_construct(self):
        # Every fast and full kwargs set must actually build its config
        # object — a typo'd override fails here, not mid-battery.
        for experiment_id, definition in EXPERIMENT_DEFS.items():
            if definition.config is None:
                continue
            for full in (False, True):
                config = definition.config(**definition.kwargs(full))
                assert config is not None, (experiment_id, full)

    def test_full_overridden_is_consistent(self):
        for experiment_id in FULL_OVERRIDDEN:
            definition = EXPERIMENT_DEFS[experiment_id]
            assert definition.full is not None
        for experiment_id, definition in EXPERIMENT_DEFS.items():
            if experiment_id not in FULL_OVERRIDDEN:
                assert definition.full is None

    def test_full_mode_reuses_fast_when_not_overridden(self):
        definition = EXPERIMENT_DEFS["E7"]
        assert definition.kwargs(True) == definition.kwargs(False)

    def test_unknown_experiment_still_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(only=("E999",))

    def test_full_overrides_are_supersets_in_spirit(self):
        # Spot-check the sizes actually grow where an override exists.
        e1 = EXPERIMENT_DEFS["E1"]
        assert e1.config(**e1.kwargs(True)).n > e1.config(
            **e1.kwargs(False)
        ).n
