"""Tests for the ``repro-lb simulate`` subcommand."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(
            [
                "simulate",
                "rotor_router",
                "--family",
                "cycle",
                "--n",
                "16",
                "--rounds",
                "200",
                "--tokens-per-node",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycle(n=16)" in out
        assert "discrepancy 128 ->" in out

    def test_default_rounds_from_horizon(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "complete",
                "--n",
                "12",
                "--tokens-per-node",
                "4",
            ]
        )
        assert code == 0
        assert "rounds:" in capsys.readouterr().out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "traj.csv"
        code = main(
            [
                "simulate",
                "rotor_router_star",
                "--family",
                "torus",
                "--n",
                "16",
                "--rounds",
                "50",
                "--csv",
                str(path),
            ]
        )
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "round,discrepancy"
        assert len(lines) == 52  # header + 51 boundary values

    def test_self_loops_flag(self, capsys):
        code = main(
            [
                "simulate",
                "rotor_router",
                "--family",
                "cycle",
                "--n",
                "12",
                "--self-loops",
                "4",
                "--rounds",
                "20",
            ]
        )
        assert code == 0
        assert "d+=6" in capsys.readouterr().out

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "quantum_annealer", "--n", "8"])
