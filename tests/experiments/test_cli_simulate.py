"""Tests for the ``repro-lb simulate`` subcommand."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(
            [
                "simulate",
                "rotor_router",
                "--family",
                "cycle",
                "--n",
                "16",
                "--rounds",
                "200",
                "--tokens-per-node",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycle(n=16)" in out
        assert "discrepancy 128 ->" in out

    def test_default_rounds_from_horizon(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "complete",
                "--n",
                "12",
                "--tokens-per-node",
                "4",
            ]
        )
        assert code == 0
        assert "rounds:" in capsys.readouterr().out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "traj.csv"
        code = main(
            [
                "simulate",
                "rotor_router_star",
                "--family",
                "torus",
                "--n",
                "16",
                "--rounds",
                "50",
                "--csv",
                str(path),
            ]
        )
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "round,discrepancy"
        assert len(lines) == 52  # header + 51 boundary values

    def test_self_loops_flag(self, capsys):
        code = main(
            [
                "simulate",
                "rotor_router",
                "--family",
                "cycle",
                "--n",
                "12",
                "--self-loops",
                "4",
                "--rounds",
                "20",
            ]
        )
        assert code == 0
        assert "d+=6" in capsys.readouterr().out

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "quantum_annealer", "--n", "8"])


class TestScenarioCommand:
    def _write_suite(self, tmp_path):
        import json

        from repro.scenarios import (
            AlgorithmSpec,
            GraphSpec,
            LoadSpec,
            Scenario,
            ScenarioSuite,
            StopRule,
        )

        suite = ScenarioSuite.cartesian(
            graphs=GraphSpec("cycle", {"n": 12}),
            algorithms=[
                AlgorithmSpec("send_floor"),
                AlgorithmSpec("rotor_router"),
            ],
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(30),
            replicas=2,
            name="cli-sweep",
        )
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite.to_dict()))
        return path

    def test_suite_file_runs(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = self._write_suite(tmp_path)
        assert main(["scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "send_floor @ cycle" in out
        assert "rotor_router @ cycle" in out

    def test_workers_cache_resume_acceptance(
        self, tmp_path, capsys, monkeypatch
    ):
        """The PR's acceptance path, end to end through the CLI.

        ``--workers 4`` must produce byte-identical RunRecords to the
        serial run, a second invocation must complete from cache with
        zero scenario executions, and ``--resume`` on a partially
        populated cache must recompute only the missing shards.
        """
        monkeypatch.chdir(tmp_path)
        path = self._write_suite(tmp_path)
        base = [
            "scenario", str(path), "--cache-dir", str(tmp_path / "c"),
        ]
        assert main(
            ["scenario", str(path), "--no-cache",
             "--records-jsonl", str(tmp_path / "serial.jsonl")]
        ) == 0
        capsys.readouterr()
        assert main(
            base + ["--workers", "4",
                    "--records-jsonl", str(tmp_path / "parallel.jsonl")]
        ) == 0
        assert "2 shards: 2 computed, 0 cached (workers=4)" in (
            capsys.readouterr().out
        )
        assert (tmp_path / "parallel.jsonl").read_bytes() == (
            tmp_path / "serial.jsonl"
        ).read_bytes()

        # Second invocation: zero scenario executions.
        assert main(
            base + ["--workers", "4",
                    "--records-jsonl", str(tmp_path / "cached.jsonl")]
        ) == 0
        assert "2 shards: 0 computed, 2 cached" in (
            capsys.readouterr().out
        )
        assert (tmp_path / "cached.jsonl").read_bytes() == (
            tmp_path / "serial.jsonl"
        ).read_bytes()

        # Interrupted run: drop one shard's entry, resume recomputes
        # only that shard.
        from repro.exec import ResultCache

        cache = ResultCache(tmp_path / "c")
        victim = cache.keys()[0]
        cache.path_for(victim).unlink()
        assert main(base + ["--resume"]) == 0
        assert "2 shards: 1 computed, 1 cached" in (
            capsys.readouterr().out
        )

    def test_resume_requires_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = self._write_suite(tmp_path)
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["scenario", str(path), "--no-cache", "--resume"])

    def test_single_scenario_file_and_json_output(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        import json

        from repro.scenarios import (
            AlgorithmSpec,
            GraphSpec,
            LoadSpec,
            Scenario,
            StopRule,
        )

        scenario = Scenario(
            graph=GraphSpec("complete", {"n": 8}),
            algorithm=AlgorithmSpec("send_rounded"),
            loads=LoadSpec("point_mass", {"tokens": 80}),
            stop=StopRule.fixed(20),
        )
        spec_path = tmp_path / "one.json"
        spec_path.write_text(json.dumps(scenario.to_dict()))
        out_path = tmp_path / "rows.json"
        code = main(
            ["scenario", str(spec_path), "--json", str(out_path)]
        )
        assert code == 0
        rows = json.loads(out_path.read_text())
        assert len(rows) == 1
        assert rows[0]["final_discrepancy"] <= 80

    def test_replicas_flag(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "cycle",
                "--n",
                "12",
                "--rounds",
                "40",
                "--replicas",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replicas:   3 (batch executor)" in out


class TestSimulateProbes:
    def test_probe_by_name(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "cycle",
                "--n",
                "12",
                "--rounds",
                "20",
                "--probe",
                "load_bounds",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "min_load: 0" in out

    def test_probe_with_json_params(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "cycle",
                "--n",
                "12",
                "--rounds",
                "20",
                "--probe",
                'potentials:{"c_values": [4], "s": 1}',
            ]
        )
        assert code == 0
        assert "potentials_monotone" in capsys.readouterr().out

    def test_probe_with_replicas_stays_batched(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "cycle",
                "--n",
                "12",
                "--rounds",
                "20",
                "--replicas",
                "3",
                "--probe",
                "load_bounds",
            ]
        )
        assert code == 0
        assert "(batch executor)" in capsys.readouterr().out

    def test_trace_csv(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "cycle",
                "--n",
                "12",
                "--rounds",
                "10",
                "--probe",
                "discrepancy",
                "--trace-csv",
                str(path),
            ]
        )
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert header.startswith("round,")
        assert "discrepancy" in header

    def test_list_probes(self, capsys):
        code = main(["simulate", "--list-probes"])
        assert code == 0
        out = capsys.readouterr().out
        assert "load_bounds" in out
        assert "flows" in out

    def test_missing_algorithm_errors(self):
        with pytest.raises(SystemExit, match="algorithm"):
            main(["simulate"])


class TestSimulateDynamics:
    def test_inject_by_name_with_params(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "cycle",
                "--n",
                "12",
                "--rounds",
                "30",
                "--inject",
                'constant_rate:{"rate": 4, "seed": 2}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamics:   constant_rate" in out
        assert "tokens_injected: 120" in out

    def test_inject_composes_with_probes_and_replicas(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "torus",
                "--n",
                "16",
                "--rounds",
                "20",
                "--replicas",
                "3",
                "--probe",
                "load_bounds",
                "--inject",
                'random_churn:{"rate": 8, "seed": 1}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(batch executor)" in out
        assert "tokens_departed" in out
        assert "min_load" in out

    def test_list_injectors(self, capsys):
        code = main(["simulate", "--list-injectors"])
        assert code == 0
        out = capsys.readouterr().out
        for name in (
            "constant_rate",
            "batch_arrivals",
            "adversarial_peak",
            "random_churn",
            "scripted",
        ):
            assert name in out

    def test_scenario_file_with_dynamics(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        import json

        from repro.scenarios import (
            AlgorithmSpec,
            DynamicsSpec,
            GraphSpec,
            LoadSpec,
            Scenario,
            StopRule,
        )

        scenario = Scenario(
            graph=GraphSpec("cycle", {"n": 12}),
            algorithm=AlgorithmSpec("send_floor"),
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(25),
            replicas=2,
            dynamics=DynamicsSpec(
                "batch_arrivals",
                {"tokens": 10, "period": 5, "seed": 1},
            ),
        )
        path = tmp_path / "dynamic.json"
        path.write_text(json.dumps(scenario.to_dict()))
        out_path = tmp_path / "rows.json"
        assert (
            main(["scenario", str(path), "--json", str(out_path)]) == 0
        )
        rows = json.loads(out_path.read_text())
        assert len(rows) == 2
        assert all(row["tokens_injected"] == 50 for row in rows)
        assert "batch_arrivals" in capsys.readouterr().out


class TestSimulateDatacenter:
    def test_list_families(self, capsys):
        code = main(["simulate", "--list-families"])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered graph families:" in out
        for name in ("cycle", "torus", "fat_tree", "leaf_spine"):
            assert name in out

    def test_fat_tree_with_traffic_and_tier_probe(self, capsys):
        code = main(
            [
                "simulate",
                "send_floor",
                "--family",
                "fat_tree",
                "--n",
                "16",
                "--rounds",
                "40",
                "--probe",
                "tier_loads",
                "--inject",
                'poisson_arrivals:{"rate": 0.5, "seed": 3}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fat_tree(k=4)" in out
        assert "dynamics:   poisson_arrivals" in out
        assert "p99_load" in out
        assert "tier_host_mean_load" in out

    def test_leaf_spine_with_hotspot_traffic(self, capsys):
        code = main(
            [
                "simulate",
                "rotor_router",
                "--family",
                "leaf_spine",
                "--n",
                "12",
                "--rounds",
                "30",
                "--inject",
                'hotspot_shift:{"rate": 6, "shift_every": 5, "seed": 1}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "leaf_spine(" in out
        assert "tokens_injected: 180" in out
