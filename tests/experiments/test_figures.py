"""Tests for the figure-series generator (F1)."""

import pytest

from repro.experiments.figures import TrajectoryConfig, run_trajectories


@pytest.fixture(scope="module")
def result():
    return run_trajectories(
        TrajectoryConfig(
            n=32,
            degree=4,
            tokens_per_node=16,
            algorithms=("rotor_router", "send_floor"),
            checkpoints=5,
        )
    )


class TestSeries:
    def test_series_aligned(self, result):
        series = result.metadata["series"]
        lengths = {len(values) for values in series.values()}
        assert len(lengths) == 1

    def test_series_start_at_k(self, result):
        series = result.metadata["series"]
        for values in series.values():
            assert values[0] == 32 * 16

    def test_rows_are_checkpoints(self, result):
        rounds = [row["round"] for row in result.rows]
        assert rounds[0] == 0
        assert rounds[-1] == result.metadata["rounds"]
        assert rounds == sorted(rounds)

    def test_discrepancy_decreases_overall(self, result):
        for name in ("rotor_router", "send_floor"):
            first = result.rows[0][name]
            last = result.rows[-1][name]
            assert last < first

    def test_csv_export(self, tmp_path):
        path = tmp_path / "series.csv"
        run_trajectories(
            TrajectoryConfig(
                n=16,
                degree=4,
                tokens_per_node=8,
                algorithms=("rotor_router",),
            ),
            csv_path=path,
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "round,rotor_router"
        assert len(lines) >= 3

    def test_runner_includes_f1(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "F1" in EXPERIMENTS
