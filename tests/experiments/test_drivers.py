"""Smoke + shape tests for every experiment driver (tiny configs).

These are the reproduction's acceptance tests: each driver must run and
its rows must satisfy the qualitative predictions recorded in DESIGN.md
(loads invariant, fixed points, period-2, monotone potentials, bounds
respected).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import (  # noqa: E402
    AblationConfig,
    LowerBoundConfig,
    Table1Config,
    Theorem23Config,
    Theorem33Config,
    run_cycle_sweep,
    run_engine_throughput,
    run_expander_sweep,
    run_good_balancers,
    run_minimal_selfloop_sweep,
    run_potential_monotonicity,
    run_rotor_alternating,
    run_selfloop_ablation,
    run_stateless,
    run_steady_state,
    run_table1,
)


TINY_23 = Theorem23Config(
    expander_sizes=(32, 64),
    expander_degree=4,
    cycle_sizes=(9, 17),
    tokens_per_node=16,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(
            Table1Config(n=32, degree=4, tokens_per_node=16)
        )

    def test_all_algorithms_present(self, result):
        from repro.algorithms.registry import all_names

        assert {row["algorithm"] for row in result.rows} == set(
            all_names()
        )

    def test_everyone_balances_below_prediction_scale(self, result):
        for row in result.rows:
            assert row["disc_after_T"] <= 10 * row["predicted"]

    def test_deterministic_flags_match_registry(self, result):
        from repro.algorithms.registry import make

        for row in result.rows:
            expected = make(row["algorithm"]).properties.deterministic
            assert row["D"] == expected

    def test_paper_algorithms_never_negative(self, result):
        for row in result.rows:
            if row["algorithm"] in (
                "send_floor",
                "send_rounded",
                "rotor_router",
                "rotor_router_star",
            ):
                assert row["NL"] is True

    def test_renders(self, result):
        assert "disc_after_T" in result.to_text()
        assert result.to_markdown().startswith("### E1")
        assert '"experiment_id": "E1"' in result.to_json()


class TestTheorem23:
    def test_expander_rows_bounded(self):
        result = run_expander_sweep(TINY_23)
        for row in result.rows:
            for name in TINY_23.algorithms:
                assert row[name] <= row["bound_i"]

    def test_cycle_rows_bounded_and_worst_case_linear(self):
        result = run_cycle_sweep(TINY_23)
        for row in result.rows:
            for name in TINY_23.algorithms:
                assert row[name] <= row["bound_ii(d*sqrt n)"]
            assert row["worst_case_d0"] >= row["n"]
        fits = result.metadata["fits"]
        assert fits["worst_case_d0"]["slope"] > 0.8

    def test_minimal_selfloops_bounded(self):
        result = run_minimal_selfloop_sweep(TINY_23)
        for row in result.rows:
            for name in TINY_23.algorithms:
                assert row[name] <= row["bound_iii"]


class TestTheorem33:
    def test_all_rows_reach_bound(self):
        config = Theorem33Config(
            n=32, degree=4, tokens_per_node=16, s_values=(1, 2, 4)
        )
        result = run_good_balancers(config)
        assert result.rows
        for row in result.rows:
            assert row["reached_bound"]

    def test_potentials_monotone(self):
        config = Theorem33Config(n=32, degree=4, tokens_per_node=16)
        result = run_potential_monotonicity(config, rounds=120)
        for row in result.rows:
            assert row["phi_monotone"]
            assert row["phi_prime_monotone"]


class TestLowerBounds:
    CONFIG = LowerBoundConfig(
        run_rounds=30,
        cycle_n=12,
        torus_side=4,
        stateless_n=32,
        stateless_degree=8,
        odd_cycle_n=11,
    )

    def test_steady_state_rows(self):
        result = run_steady_state(self.CONFIG)
        for row in result.rows:
            assert row["loads_invariant"]
            assert row["discrepancy"] >= row["predicted d*(diam-1)"]
            assert row["flow_spread(<=1)"] <= 1

    def test_stateless_rows(self):
        result = run_stateless(self.CONFIG)
        for row in result.rows:
            assert row["fixed_point"]

    def test_rotor_alternating_rows(self):
        result = run_rotor_alternating(self.CONFIG)
        for row in result.rows:
            assert row["alternates(period2)"]
            assert row["detected_period"] == 2
            assert row["discrepancy"] >= row["predicted d*phi"]


class TestAblations:
    def test_selfloop_ablation_shape(self):
        result = run_selfloop_ablation(
            AblationConfig(n=32, degree=4, tokens_per_node=16, cycle_n=9)
        )
        families = {row["family"] for row in result.rows}
        assert families == {"expander", "odd_cycle"}
        zero_rows = [row for row in result.rows if row["d_self"] == 0]
        assert all(
            row["worst_case_stuck"] is not None for row in zero_rows
        )

    def test_throughput_rows(self):
        result = run_engine_throughput(n=64, degree=4, rounds=20)
        assert len(result.rows) >= 5
        for row in result.rows:
            assert row["rounds_per_sec"] > 0


class TestDynamicSteadyState:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import (
            DynamicSteadyStateConfig,
            run_dynamic_steady_state,
        )

        return run_dynamic_steady_state(
            DynamicSteadyStateConfig(
                n=16,
                rounds=80,
                tail_window=20,
                rates=(0, 4, 16),
                replicas=2,
            )
        )

    def test_covers_four_families_and_all_rates(self, result):
        families = {row["family"] for row in result.rows}
        assert families == {
            "cycle",
            "torus",
            "hypercube",
            "random_regular",
        }
        assert {row["rate"] for row in result.rows} == {0, 4, 16}

    def test_static_baseline_injects_nothing(self, result):
        for row in result.rows:
            if row["rate"] == 0:
                assert row["injector"] == "static"
                assert row["tokens_injected_mean"] == 0
            else:
                assert row["tokens_injected_mean"] == row["rate"] * 80

    def test_steady_state_grows_with_adversarial_rate(self, result):
        for family in ("cycle", "torus"):
            rows = {
                row["rate"]: row["steady_state"]
                for row in result.rows
                if row["family"] == family
                and row["algorithm"] == "send_floor"
                and row["injector"] in ("static", "adversarial_peak")
            }
            assert rows[16] > rows[4] > rows[0]

    def test_adversary_no_easier_than_random_arrivals(self, result):
        for row in result.rows:
            if row["injector"] != "adversarial_peak" or row["rate"] < 16:
                continue
            twin = next(
                r
                for r in result.rows
                if r["family"] == row["family"]
                and r["algorithm"] == row["algorithm"]
                and r["injector"] == "constant_rate"
                and r["rate"] == row["rate"]
            )
            assert row["steady_state"] >= twin["steady_state"]


class TestDatacenterServing:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import (
            DatacenterServingConfig,
            run_datacenter_serving,
        )

        return run_datacenter_serving(
            DatacenterServingConfig(
                fat_tree_k=4,
                leaves=4,
                spines=2,
                hosts_per_leaf=3,
                rounds=80,
                tail_window=20,
                offered_loads=(1.0, 8.0),
                traffic_models=(
                    "poisson_arrivals",
                    "pareto_flows",
                    "hotspot_shift",
                ),
                algorithms=("send_floor",),
                replicas=2,
            )
        )

    def test_grid_is_complete(self, result):
        assert {row["fabric"] for row in result.rows} == {
            "fat_tree",
            "leaf_spine",
        }
        assert {row["traffic"] for row in result.rows} == {
            "poisson_arrivals",
            "pareto_flows",
            "hotspot_shift",
        }
        assert len(result.rows) == 2 * 3 * 2  # fabrics x models x loads

    def test_percentiles_are_ordered(self, result):
        for row in result.rows:
            assert 0 <= row["p99_load"] <= row["peak_load"]

    def test_injection_grows_with_offered_load(self, result):
        for fabric in ("fat_tree", "leaf_spine"):
            for model in ("poisson_arrivals", "hotspot_shift"):
                injected = {
                    row["offered"]: row["tokens_injected_mean"]
                    for row in result.rows
                    if row["fabric"] == fabric
                    and row["traffic"] == model
                }
                assert injected[8.0] > injected[1.0] > 0

    def test_loads_only_grid_rides_the_batch_executor(self, result):
        assert all(row["executor"] == "batch" for row in result.rows)

    def test_renders(self, result):
        assert "steady_state" in result.to_text()
        assert '"experiment_id": "E16"' in result.to_json()
