"""Smoke + shape tests for every experiment driver (tiny configs).

These are the reproduction's acceptance tests: each driver must run and
its rows must satisfy the qualitative predictions recorded in DESIGN.md
(loads invariant, fixed points, period-2, monotone potentials, bounds
respected).
"""

import pytest

from repro.experiments import (
    AblationConfig,
    LowerBoundConfig,
    Table1Config,
    Theorem23Config,
    Theorem33Config,
    run_cycle_sweep,
    run_engine_throughput,
    run_expander_sweep,
    run_good_balancers,
    run_minimal_selfloop_sweep,
    run_potential_monotonicity,
    run_rotor_alternating,
    run_selfloop_ablation,
    run_stateless,
    run_steady_state,
    run_table1,
)


TINY_23 = Theorem23Config(
    expander_sizes=(32, 64),
    expander_degree=4,
    cycle_sizes=(9, 17),
    tokens_per_node=16,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(
            Table1Config(n=32, degree=4, tokens_per_node=16)
        )

    def test_all_algorithms_present(self, result):
        from repro.algorithms.registry import all_names

        assert {row["algorithm"] for row in result.rows} == set(
            all_names()
        )

    def test_everyone_balances_below_prediction_scale(self, result):
        for row in result.rows:
            assert row["disc_after_T"] <= 10 * row["predicted"]

    def test_deterministic_flags_match_registry(self, result):
        from repro.algorithms.registry import make

        for row in result.rows:
            expected = make(row["algorithm"]).properties.deterministic
            assert row["D"] == expected

    def test_paper_algorithms_never_negative(self, result):
        for row in result.rows:
            if row["algorithm"] in (
                "send_floor",
                "send_rounded",
                "rotor_router",
                "rotor_router_star",
            ):
                assert row["NL"] is True

    def test_renders(self, result):
        assert "disc_after_T" in result.to_text()
        assert result.to_markdown().startswith("### E1")
        assert '"experiment_id": "E1"' in result.to_json()


class TestTheorem23:
    def test_expander_rows_bounded(self):
        result = run_expander_sweep(TINY_23)
        for row in result.rows:
            for name in TINY_23.algorithms:
                assert row[name] <= row["bound_i"]

    def test_cycle_rows_bounded_and_worst_case_linear(self):
        result = run_cycle_sweep(TINY_23)
        for row in result.rows:
            for name in TINY_23.algorithms:
                assert row[name] <= row["bound_ii(d*sqrt n)"]
            assert row["worst_case_d0"] >= row["n"]
        fits = result.metadata["fits"]
        assert fits["worst_case_d0"]["slope"] > 0.8

    def test_minimal_selfloops_bounded(self):
        result = run_minimal_selfloop_sweep(TINY_23)
        for row in result.rows:
            for name in TINY_23.algorithms:
                assert row[name] <= row["bound_iii"]


class TestTheorem33:
    def test_all_rows_reach_bound(self):
        config = Theorem33Config(
            n=32, degree=4, tokens_per_node=16, s_values=(1, 2, 4)
        )
        result = run_good_balancers(config)
        assert result.rows
        for row in result.rows:
            assert row["reached_bound"]

    def test_potentials_monotone(self):
        config = Theorem33Config(n=32, degree=4, tokens_per_node=16)
        result = run_potential_monotonicity(config, rounds=120)
        for row in result.rows:
            assert row["phi_monotone"]
            assert row["phi_prime_monotone"]


class TestLowerBounds:
    CONFIG = LowerBoundConfig(
        run_rounds=30,
        cycle_n=12,
        torus_side=4,
        stateless_n=32,
        stateless_degree=8,
        odd_cycle_n=11,
    )

    def test_steady_state_rows(self):
        result = run_steady_state(self.CONFIG)
        for row in result.rows:
            assert row["loads_invariant"]
            assert row["discrepancy"] >= row["predicted d*(diam-1)"]
            assert row["flow_spread(<=1)"] <= 1

    def test_stateless_rows(self):
        result = run_stateless(self.CONFIG)
        for row in result.rows:
            assert row["fixed_point"]

    def test_rotor_alternating_rows(self):
        result = run_rotor_alternating(self.CONFIG)
        for row in result.rows:
            assert row["alternates(period2)"]
            assert row["detected_period"] == 2
            assert row["discrepancy"] >= row["predicted d*phi"]


class TestAblations:
    def test_selfloop_ablation_shape(self):
        result = run_selfloop_ablation(
            AblationConfig(n=32, degree=4, tokens_per_node=16, cycle_n=9)
        )
        families = {row["family"] for row in result.rows}
        assert families == {"expander", "odd_cycle"}
        zero_rows = [row for row in result.rows if row["d_self"] == 0]
        assert all(
            row["worst_case_stuck"] is not None for row in zero_rows
        )

    def test_throughput_rows(self):
        result = run_engine_throughput(n=64, degree=4, rounds=20)
        assert len(result.rows) >= 5
        for row in result.rows:
            assert row["rounds_per_sec"] > 0
