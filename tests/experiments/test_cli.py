"""Tests for the CLI and the experiment runner."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENTS, run_all


class TestRunner:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(only=("E999",))

    def test_selected_subset(self):
        results = run_all(only=("E7",))
        assert len(results) == 1
        assert results[0].experiment_id == "E7"

    def test_registry_ids_well_formed(self):
        # E* = paper artifacts, F* = figure-equivalents.
        assert all(eid[0] in "EF" for eid in EXPERIMENTS)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E7", "--markdown"])
        assert args.command == "run"
        assert args.experiments == ["E7"]
        assert args.markdown

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out

    def test_run_single(self, capsys):
        assert main(["run", "E7"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.2" in out

    def test_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "E7", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload[0]["experiment_id"] == "E7"

    def test_run_markdown(self, capsys):
        assert main(["run", "E7", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| algorithm" in out
