"""Parity: parallel == serial == cached replay, bit-identical.

These are the executor's acceptance tests.  "Bit-identical" is checked
on the canonical JSON of every :class:`~repro.core.trace.RunRecord`
(replica index, rounds, engine summary, probe scalars, and every trace
column), across worker counts, replica-axis splitting, cached replay,
and both engines (send_floor rides the structured engine,
arbitrary_rounding_fixed is dense-only), with probes and dynamics
attached throughout.
"""

import pytest

from repro.exec import (
    ResultCache,
    SuiteExecutionError,
    SuiteExecutor,
    run_suite,
)
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)

from tests.exec.factories import canonical_records, make_suite


class TestWorkerParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fixed_rounds_parity(self, suite, serial_records, workers):
        report = run_suite(suite, workers=workers)
        assert canonical_records(report.outcomes) == serial_records
        assert report.computed == len(report.shards)
        assert report.cached == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_until_parity(self, workers):
        suite = make_suite(
            dynamics=None,
            stop=StopRule.discrepancy(
                target=4, max_rounds=60, check_every=2
            ),
            name="exec-parity-until",
        )
        serial = canonical_records(suite.run())
        report = run_suite(suite, workers=workers)
        assert canonical_records(report.outcomes) == serial

    def test_replica_split_parity(self, suite, serial_records):
        report = run_suite(suite, max_replicas_per_shard=1)
        assert len(report.shards) == sum(s.replicas for s in suite)
        assert canonical_records(report.outcomes) == serial_records

    def test_replica_split_parallel_parity(self, suite, serial_records):
        report = run_suite(
            suite, workers=2, max_replicas_per_shard=1
        )
        assert canonical_records(report.outcomes) == serial_records

    def test_executor_labels_match_serial(self, suite):
        # Multi-replica loads-only scenarios resolve to the batch
        # executor on both paths.
        serial = [outcome.executor for outcome in suite.run()]
        report = run_suite(suite, workers=2)
        assert [o.executor for o in report.outcomes] == serial

    def test_replica_summaries_match_serial(self, suite):
        serial = [
            outcome.replica_summary(replica)
            for outcome in suite.run()
            for replica in range(len(outcome))
        ]
        report = run_suite(suite, workers=2)
        parallel = [
            outcome.replica_summary(replica)
            for outcome in report.outcomes
            for replica in range(len(outcome))
        ]
        assert parallel == serial


class TestCachedReplayParity:
    def test_cached_replay_is_bit_identical(
        self, suite, serial_records, tmp_path
    ):
        cache = ResultCache(tmp_path)
        first = run_suite(suite, cache=cache)
        assert canonical_records(first.outcomes) == serial_records

        replay = run_suite(suite, cache=cache)
        assert replay.computed == 0, "second run must execute nothing"
        assert replay.cached == len(replay.shards)
        assert canonical_records(replay.outcomes) == serial_records

    def test_parallel_run_then_serial_replay(
        self, suite, serial_records, tmp_path
    ):
        # Worker count does not shape the shard plan, so entries
        # written by a 4-worker run serve a serial rerun (and vice
        # versa).
        cache = ResultCache(tmp_path)
        run_suite(suite, workers=4, cache=cache)
        replay = run_suite(suite, workers=1, cache=cache)
        assert replay.computed == 0
        assert canonical_records(replay.outcomes) == serial_records

    def test_replica_summaries_survive_replay(self, suite, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_suite(suite, cache=cache)
        replay = run_suite(suite, cache=cache)
        rows = lambda report: [  # noqa: E731
            outcome.replica_summary(replica)
            for outcome in report.outcomes
            for replica in range(len(outcome))
        ]
        assert rows(replay) == rows(first)
        assert [o.executor for o in replay.outcomes] == [
            o.executor for o in first.outcomes
        ]


class TestSuiteRunRouting:
    def test_suite_run_workers_kwarg(self, suite, serial_records):
        outcomes = suite.run(workers=2)
        assert canonical_records(outcomes) == serial_records

    def test_suite_run_cache_kwarg(self, suite, serial_records, tmp_path):
        outcomes = suite.run(cache=tmp_path / "cache")
        assert canonical_records(outcomes) == serial_records
        replay = suite.run(cache=tmp_path / "cache")
        assert canonical_records(replay) == serial_records

    def test_ambient_configure_routes_suite_run(
        self, suite, serial_records, tmp_path
    ):
        from repro.exec import configure, current

        cache_dir = tmp_path / "ambient"
        with configure(workers=2, cache=cache_dir):
            assert current().workers == 2
            outcomes = suite.run()  # no explicit executor arguments
        assert canonical_records(outcomes) == serial_records
        assert current().workers == 1, "context must unwind"
        cache = ResultCache(cache_dir)
        assert len(cache) > 0, "ambient cache must have been used"

    def test_configure_nesting_and_disable(self, tmp_path):
        from repro.exec import configure, current

        with configure(cache=tmp_path):
            with configure(workers=3):
                assert current().workers == 3
                assert current().cache is not None
            with configure(cache=False):
                assert current().cache is None
        assert current().cache is None

    def test_configure_is_thread_scoped(self):
        import threading

        from repro.exec import configure, current

        seen = {}

        def probe():
            seen["workers"] = current().workers

        with configure(workers=4):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert current().workers == 4
        # The other thread saw its own (default) configuration, not a
        # leak from this thread's active configure block.
        assert seen["workers"] == 1


class TestFailureCapture:
    def test_failing_shard_does_not_take_down_the_rest(self, tmp_path):
        good = make_suite()
        bad = Scenario(
            graph=GraphSpec("cycle", {"n": 12}),
            algorithm=AlgorithmSpec("no_such_algorithm"),
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(10),
        )
        suite = ScenarioSuite(tuple(good) + (bad,), name="with-failure")
        cache = ResultCache(tmp_path)
        with pytest.raises(SuiteExecutionError) as excinfo:
            run_suite(suite, cache=cache)
        error = excinfo.value
        assert len(error.failures) == 1
        assert "no_such_algorithm" in error.failures[0].error
        assert error.failures[0].traceback
        # Every healthy scenario completed and was cached.
        assert len(error.report.outcomes) == len(good)
        assert len(cache) == len(good)
        # Fixing nothing but re-running resumes from the cache and
        # fails only the broken shard again.
        with pytest.raises(SuiteExecutionError) as again:
            run_suite(suite, cache=cache)
        assert again.value.report.cached == len(good)
        assert again.value.report.computed == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_capture_in_both_modes(self, workers):
        bad = Scenario(
            graph=GraphSpec("cycle", {"n": 12}),
            algorithm=AlgorithmSpec("no_such_algorithm"),
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(10),
        )
        suite = ScenarioSuite((bad,), name="all-bad")
        with pytest.raises(SuiteExecutionError, match="1 of 1 shards"):
            run_suite(suite, workers=workers)


class TestNonSerializableScenarios:
    def test_prebuilt_graph_rejected_with_pointer(self):
        from repro.graphs import families

        scenario = Scenario(
            graph=families.cycle(12),
            algorithm=AlgorithmSpec("send_floor"),
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(10),
        )
        suite = ScenarioSuite((scenario,))
        with pytest.raises(ValueError, match="cannot be sharded"):
            SuiteExecutor(workers=2).run(suite)
        # ...but plain serial in-process execution still works.
        outcomes = suite.run()
        assert len(outcomes) == 1

    def test_serial_override_run_skips_serialization(self, tmp_path):
        # With a graph override the cache is bypassed, so a serial
        # executor must not demand serializability it will never use
        # (monitor factories are legal in-process but not cacheable).
        from repro.core.monitors import LoadBoundsMonitor

        spec = GraphSpec("cycle", {"n": 12})
        scenario = Scenario(
            graph=spec,
            algorithm=AlgorithmSpec("send_floor"),
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(10),
            monitors=(LoadBoundsMonitor,),
        )
        suite = ScenarioSuite((scenario,))
        from repro.exec import ResultCache

        report = SuiteExecutor(cache=ResultCache(tmp_path)).run(
            suite, graph=spec.build()
        )
        assert len(report.outcomes) == 1


class TestFailureMessageHonesty:
    def _bad_suite(self):
        return ScenarioSuite((
            Scenario(
                graph=GraphSpec("cycle", {"n": 12}),
                algorithm=AlgorithmSpec("no_such_algorithm"),
                loads=LoadSpec("point_mass", {"tokens": 120}),
                stop=StopRule.fixed(10),
            ),
        ))

    def test_without_cache_no_resume_promise(self):
        with pytest.raises(
            SuiteExecutionError, match="no cache configured"
        ):
            run_suite(self._bad_suite())

    def test_with_cache_promises_resume(self, tmp_path):
        with pytest.raises(
            SuiteExecutionError, match="re-run to resume"
        ):
            run_suite(self._bad_suite(), cache=tmp_path)
