"""ResultCache store behavior: round-trip, corruption, atomicity."""

import json

import pytest

from repro.core.trace import RunRecord, Trace
from repro.exec import ResultCache, as_cache
from repro.scenarios import canonical_json


def _records(k=2):
    records = []
    for replica in range(k):
        trace = Trace()
        trace.add_column("discrepancy", [0, 1, 2], [10, 6, 4])
        records.append(
            RunRecord(
                replica=replica,
                rounds_executed=2,
                stopped_early=False,
                summary={
                    "initial_discrepancy": 10,
                    "final_discrepancy": 4,
                },
                trace=trace,
            )
        )
    return records


KEY = "ab" + "0" * 62


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(KEY, _records(), meta={"executor": "batch"})
        entry = cache.get(KEY)
        assert entry is not None
        assert entry.meta["executor"] == "batch"
        assert [
            canonical_json(r.to_dict()) for r in entry.records
        ] == [canonical_json(r.to_dict()) for r in _records()]
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_keys_and_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = "cd" + "1" * 62
        cache.put(KEY, _records())
        cache.put(other, _records(1))
        assert cache.keys() == sorted([KEY, other])
        assert len(cache) == 2
        assert KEY in cache
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, _records())
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.jsonl"

    def test_as_cache_coercions(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert as_cache(None) is None
        assert as_cache(cache) is cache
        assert as_cache(str(tmp_path)).root == tmp_path
        with pytest.raises(TypeError, match="cannot interpret"):
            as_cache(42)


class TestCorruptionDetection:
    """Damaged entries must be recomputed, never trusted."""

    def _fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, _records(), meta={"executor": "batch"})
        return cache

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = self._fresh(tmp_path)
        path = cache.path_for(KEY)
        # Simulate a torn write: drop the last record line.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1

    def test_garbage_line_is_a_miss(self, tmp_path):
        cache = self._fresh(tmp_path)
        path = cache.path_for(KEY)
        content = path.read_text()
        path.write_text(content[: len(content) // 2])
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1

    def test_wrong_key_in_header_is_a_miss(self, tmp_path):
        cache = self._fresh(tmp_path)
        other = "ab" + "9" * 62
        cache.path_for(KEY).rename(cache.path_for(other))
        assert cache.get(other) is None
        assert cache.stats.corrupt == 1

    def test_wrong_format_tag_is_a_miss(self, tmp_path):
        cache = self._fresh(tmp_path)
        path = cache.path_for(KEY)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = "someone-elses-format/9"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]))
        assert cache.get(KEY) is None

    def test_malformed_record_payload_is_a_miss(self, tmp_path):
        cache = self._fresh(tmp_path)
        path = cache.path_for(KEY)
        lines = path.read_text().splitlines()
        lines[1] = json.dumps({"not": "a record"})
        path.write_text("\n".join(lines))
        assert cache.get(KEY) is None

    def test_empty_file_is_a_miss(self, tmp_path):
        cache = self._fresh(tmp_path)
        cache.path_for(KEY).write_text("")
        assert cache.get(KEY) is None

    def test_rewrite_after_corruption_recovers(self, tmp_path):
        cache = self._fresh(tmp_path)
        cache.path_for(KEY).write_text("garbage\n")
        assert cache.get(KEY) is None
        cache.put(KEY, _records(), meta={"executor": "batch"})
        assert cache.get(KEY) is not None
