"""Crash-resume: an interrupted suite completes with identical records.

The "crash" is injected by making shard execution die partway through
the plan — exactly what a SIGKILL / power loss during a long sweep
looks like to the cache, including the torn-write case (the entry
being written when the process died is unreadable and must be
recomputed, which the atomic temp-file rename prevents from ever
happening in the first place; the torn case is tested by corrupting a
file by hand in ``test_cache_safety``).
"""

import pytest

import repro.exec.runner as runner_module
from repro.exec import ResultCache, SuiteExecutionError, run_suite

from tests.exec.factories import canonical_records, make_suite


class _DieAfter:
    """Wraps Scenario.run so the Nth shard execution raises."""

    def __init__(self, allowed: int):
        self.allowed = allowed
        self.calls = 0

    def install(self, monkeypatch):
        from repro.scenarios.spec import Scenario

        original = Scenario.run
        wrapper = self

        def run(self, *args, **kwargs):
            wrapper.calls += 1
            if wrapper.calls > wrapper.allowed:
                raise KeyboardInterrupt("simulated crash mid-suite")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Scenario, "run", run)


class TestCrashResume:
    def test_resume_recomputes_only_missing_shards(
        self, suite, serial_records, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        total = len(suite)
        survive = 2

        crash = _DieAfter(survive)
        crash.install(monkeypatch)
        with pytest.raises(KeyboardInterrupt):
            run_suite(suite, cache=cache)
        monkeypatch.undo()

        # The crash left exactly the completed shards in the cache.
        assert len(cache) == survive

        resumed = run_suite(suite, cache=cache)
        assert resumed.cached == survive
        assert resumed.computed == total - survive
        assert canonical_records(resumed.outcomes) == serial_records

    def test_resume_after_captured_failures(
        self, suite, serial_records, tmp_path, monkeypatch
    ):
        # Same shape, but with per-shard failure *capture* (a shard
        # raising an ordinary error) instead of a hard crash: the
        # executor finishes the healthy shards, caches them, and the
        # rerun recomputes only the previously failing ones.
        cache = ResultCache(tmp_path)
        total = len(suite)

        class _FailLast(_DieAfter):
            def install(self, monkeypatch):
                from repro.scenarios.spec import Scenario

                original = Scenario.run
                wrapper = self

                def run(self, *args, **kwargs):
                    wrapper.calls += 1
                    if wrapper.calls > wrapper.allowed:
                        raise RuntimeError("transient shard failure")
                    return original(self, *args, **kwargs)

                monkeypatch.setattr(Scenario, "run", run)

        failer = _FailLast(total - 1)
        failer.install(monkeypatch)
        with pytest.raises(SuiteExecutionError) as excinfo:
            run_suite(suite, cache=cache)
        monkeypatch.undo()
        assert len(excinfo.value.failures) == 1
        assert len(cache) == total - 1

        resumed = run_suite(suite, cache=cache)
        assert resumed.cached == total - 1
        assert resumed.computed == 1
        assert canonical_records(resumed.outcomes) == serial_records

    def test_pool_crash_leaves_resumable_cache(self, tmp_path):
        # Kill the parent-side collection loop after the first pool
        # result lands: completed shards are cached the moment they
        # finish, so even a mid-collection crash resumes.
        suite = make_suite()
        serial = canonical_records(suite.run())
        cache = ResultCache(tmp_path)

        original_store = runner_module.SuiteExecutor._store
        calls = {"n": 0}

        def dying_store(self, *args, **kwargs):
            original_store(self, *args, **kwargs)
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt("simulated ^C during fan-out")

        runner_module.SuiteExecutor._store = dying_store
        try:
            with pytest.raises(KeyboardInterrupt):
                run_suite(suite, workers=2, cache=cache)
        finally:
            runner_module.SuiteExecutor._store = original_store

        assert len(cache) == 2
        resumed = run_suite(suite, workers=2, cache=cache)
        assert resumed.cached == 2
        assert resumed.computed == len(suite) - 2
        assert canonical_records(resumed.outcomes) == serial
