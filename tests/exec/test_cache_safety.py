"""No false cache hits: every result-determining axis moves the key."""

from dataclasses import replace

import numpy as np
import pytest

import repro.exec.sharding as sharding_module
from repro.exec import (
    ResultCache,
    SuiteExecutor,
    plan_shards,
    run_suite,
    shard_key,
    source_fingerprint,
)
from repro.scenarios import (
    AlgorithmSpec,
    DynamicsSpec,
    GraphSpec,
    LoadSpec,
    ProbeSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
    TopologySpec,
)

from tests.exec.factories import canonical_records, make_suite


def _base_scenario() -> Scenario:
    return Scenario(
        graph=GraphSpec("cycle", {"n": 12}),
        algorithm=AlgorithmSpec("send_floor", seed=1),
        loads=LoadSpec("point_mass", {"tokens": 120}),
        stop=StopRule.fixed(20),
        replicas=2,
        probes=(ProbeSpec("load_bounds"),),
    )


def _key(scenario: Scenario, executor: str = "auto") -> str:
    suite = ScenarioSuite((scenario,))
    return shard_key(scenario, plan_shards(suite)[0], executor)


class TestKeySensitivity:
    def test_identical_scenario_identical_key(self):
        assert _key(_base_scenario()) == _key(_base_scenario())

    def test_graph_params_change_key(self):
        changed = replace(
            _base_scenario(), graph=GraphSpec("cycle", {"n": 16})
        )
        assert _key(changed) != _key(_base_scenario())

    def test_load_params_change_key(self):
        changed = replace(
            _base_scenario(),
            loads=LoadSpec("point_mass", {"tokens": 121}),
        )
        assert _key(changed) != _key(_base_scenario())

    def test_algorithm_seed_changes_key(self):
        changed = replace(
            _base_scenario(),
            algorithm=AlgorithmSpec("send_floor", seed=2),
        )
        assert _key(changed) != _key(_base_scenario())

    def test_stop_rule_changes_key(self):
        changed = replace(_base_scenario(), stop=StopRule.fixed(21))
        assert _key(changed) != _key(_base_scenario())

    def test_probe_set_changes_key(self):
        changed = replace(
            _base_scenario(),
            probes=(
                ProbeSpec("load_bounds"),
                ProbeSpec("discrepancy"),
            ),
        )
        assert _key(changed) != _key(_base_scenario())
        params = replace(
            _base_scenario(),
            probes=(ProbeSpec("potentials", {"c_values": [4], "s": 1}),),
        )
        assert _key(params) != _key(_base_scenario())

    def test_dynamics_spec_changes_key(self):
        base = _base_scenario()
        injected = replace(
            base, dynamics=DynamicsSpec("constant_rate", {"rate": 2})
        )
        assert _key(injected) != _key(base)
        other_rate = replace(
            base, dynamics=DynamicsSpec("constant_rate", {"rate": 3})
        )
        assert _key(other_rate) != _key(injected)

    def test_topology_spec_changes_key(self):
        base = _base_scenario()
        churned = replace(
            base, topology=TopologySpec("edge_churn", {"rate": 0.1})
        )
        assert _key(churned) != _key(base)
        other_rate = replace(
            base, topology=TopologySpec("edge_churn", {"rate": 0.2})
        )
        assert _key(other_rate) != _key(churned)
        other_seed = replace(
            base,
            topology=TopologySpec("edge_churn", {"rate": 0.1, "seed": 9}),
        )
        assert _key(other_seed) != _key(churned)
        other_schedule = replace(
            base, topology=TopologySpec("expander_rewire", {"swaps": 1})
        )
        assert _key(other_schedule) != _key(churned)

    def test_executor_choice_changes_key(self):
        scenario = _base_scenario()
        assert _key(scenario, "loop") != _key(scenario, "batch")
        assert _key(scenario, "auto") != _key(scenario, "loop")

    def test_package_version_changes_key(self):
        scenario = _base_scenario()
        suite = ScenarioSuite((scenario,))
        shard = plan_shards(suite)[0]
        v1 = shard_key(scenario, shard, "auto", version="1.0.0")
        v2 = shard_key(scenario, shard, "auto", version="1.0.1")
        assert v1 != v2

    def test_replicas_change_key(self):
        changed = replace(_base_scenario(), replicas=3)
        suite = ScenarioSuite((changed,))
        assert (
            shard_key(changed, plan_shards(suite)[0], "auto")
            != _key(_base_scenario())
        )


class TestNonJsonParamsCannotBeCached:
    """Lossy hashing would be a false-hit factory; it must raise.

    str() of a large numpy array truncates to ``[0 1 ... 999]``, so a
    ``default=str`` hashing fallback would assign two different
    scenarios the same key.  Canonical hashing therefore refuses
    non-JSON values outright.
    """

    def _array_scenario(self) -> Scenario:
        return replace(
            _base_scenario(),
            loads=LoadSpec("point_mass", {"tokens": np.arange(2000)}),
        )

    def test_content_hash_refuses_numpy_params(self):
        from repro.scenarios import content_hash

        a = {"w": np.arange(2000)}
        b = {"w": np.concatenate([np.arange(1000), np.arange(1000)])}
        # str(a["w"]) == str(b["w"]) — the exact false-hit trap.
        with pytest.raises(TypeError):
            content_hash(a)
        with pytest.raises(TypeError):
            content_hash(b)

    def test_shard_key_refuses_numpy_params(self):
        scenario = self._array_scenario()
        suite = ScenarioSuite((scenario,))
        with pytest.raises(TypeError):
            shard_key(scenario, plan_shards(suite)[0], "auto")

    def test_executor_surfaces_a_clear_error(self, tmp_path):
        suite = ScenarioSuite((self._array_scenario(),))
        with pytest.raises(ValueError, match="cannot be cached"):
            SuiteExecutor(cache=ResultCache(tmp_path)).run(suite)


class TestSourceFingerprint:
    def test_key_depends_on_source_fingerprint(self):
        scenario = _base_scenario()
        suite = ScenarioSuite((scenario,))
        shard = plan_shards(suite)[0]
        a = shard_key(scenario, shard, "auto", source="aaa")
        b = shard_key(scenario, shard, "auto", source="bbb")
        assert a != b

    def test_fingerprint_tracks_source_contents(self, tmp_path):
        pkg_a = tmp_path / "a"
        pkg_b = tmp_path / "b"
        for pkg in (pkg_a, pkg_b):
            (pkg / "sub").mkdir(parents=True)
            (pkg / "mod.py").write_text("x = 1\n")
            (pkg / "sub" / "other.py").write_text("y = 2\n")
        assert source_fingerprint(pkg_a) == source_fingerprint(pkg_b)
        # ...until one source file changes (fresh root: the
        # fingerprint is cached per root for the process lifetime).
        pkg_c = tmp_path / "c"
        (pkg_c / "sub").mkdir(parents=True)
        (pkg_c / "mod.py").write_text("x = 1  # bugfix\n")
        (pkg_c / "sub" / "other.py").write_text("y = 2\n")
        assert source_fingerprint(pkg_c) != source_fingerprint(pkg_a)

    def test_source_edit_invalidates_cached_results(
        self, tmp_path, monkeypatch
    ):
        suite = make_suite()
        cache = ResultCache(tmp_path)
        first = run_suite(suite, cache=cache)
        assert first.computed == len(first.shards)
        # Simulate "the developer edited repro/ without bumping the
        # version": the fingerprint moves, so nothing hits.
        monkeypatch.setattr(
            sharding_module,
            "source_fingerprint",
            lambda root=None: "post-edit-fingerprint",
        )
        again = run_suite(suite, cache=cache)
        assert again.cached == 0
        assert again.computed == len(again.shards)


class TestGraphOverrideNeverPoisonsTheCache:
    def test_override_computed_shards_are_not_stored(self, tmp_path):
        spec = GraphSpec("cycle", {"n": 12})
        suite = ScenarioSuite(
            tuple(
                Scenario(
                    graph=spec,
                    algorithm=AlgorithmSpec(name, seed=1),
                    loads=LoadSpec("point_mass", {"tokens": 120}),
                    stop=StopRule.fixed(15),
                )
                for name in ("send_floor", "rotor_router")
            )
        )
        cache = ResultCache(tmp_path)
        report = SuiteExecutor(cache=cache).run(
            suite, graph=spec.build()
        )
        assert len(report.outcomes) == 2
        # The cache key can only attest spec-built graphs, so nothing
        # computed against the caller's object may be persisted...
        assert len(cache) == 0
        # ...and an override-free rerun computes (and then caches).
        clean = SuiteExecutor(cache=cache).run(suite)
        assert clean.cached == 0
        assert clean.computed == 2
        assert len(cache) == 2
        # The bypass is symmetric: a warm cache must not serve entries
        # to an override run either (a stored spec-built result says
        # nothing about the caller's graph object).
        override_again = SuiteExecutor(cache=cache).run(
            suite, graph=spec.build()
        )
        assert override_again.cached == 0
        assert override_again.computed == 2


class TestPerCallCacheOptOut:
    def test_suite_run_cache_false_under_ambient_cache(self, tmp_path):
        from repro.exec import configure

        suite = make_suite()
        with configure(cache=tmp_path):
            outcomes = suite.run(cache=False)
            assert len(outcomes) == len(suite)
        cache = ResultCache(tmp_path)
        assert len(cache) == 0, "cache=False must opt the call out"


class TestExecutorNeverTrustsDamage:
    def test_corrupted_entries_are_recomputed(self, tmp_path):
        suite = make_suite()
        cache = ResultCache(tmp_path)
        first = SuiteExecutor(cache=cache).run(suite)
        expected = canonical_records(first.outcomes)
        assert first.computed == len(first.shards)

        # Damage every stored entry in a different way.
        keys = cache.keys()
        paths = [cache.path_for(key) for key in keys]
        paths[0].write_text("")  # empty
        lines = paths[1].read_text().splitlines()
        paths[1].write_text("\n".join(lines[:-1]) + "\n")  # truncated
        content = paths[2].read_text()
        paths[2].write_text(content[:-40])  # torn json
        paths[3].write_text("not json at all\n")

        again = SuiteExecutor(cache=cache).run(suite)
        assert again.cached == 0
        assert again.computed == len(again.shards)
        assert canonical_records(again.outcomes) == expected
        assert cache.stats.corrupt == 4

        # And the rewritten entries serve the third run entirely.
        third = SuiteExecutor(cache=cache).run(suite)
        assert third.computed == 0
        assert canonical_records(third.outcomes) == expected


class TestCacheWriteFailureIsANoOp:
    """A failing disk degrades the cache to a miss, never the run."""

    def _records(self):
        suite = ScenarioSuite((_base_scenario(),))
        report = run_suite(suite)
        return report.outcomes[0].records

    def test_put_oserror_is_logged_not_raised(
        self, tmp_path, monkeypatch, caplog
    ):
        import repro.exec.cache as cache_module

        records = self._records()
        cache = ResultCache(tmp_path)

        def broken_write(rows, path):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module, "write_jsonl", broken_write)
        with caplog.at_level("WARNING", logger="repro.exec.cache"):
            assert cache.put("ab" * 32, records) is None
        assert cache.stats.write_errors == 1
        assert cache.stats.writes == 0
        assert "cache write failed" in caplog.text
        # The failed write left nothing behind — not even a temp file.
        assert list(tmp_path.rglob("*")) in ([], [tmp_path / "ab"])
        assert cache.get("ab" * 32) is None

    def test_executor_survives_a_read_only_cache(
        self, tmp_path, monkeypatch, serial_records
    ):
        import repro.exec.cache as cache_module

        suite = make_suite()
        cache = ResultCache(tmp_path / "cache")

        def broken_write(rows, path):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(cache_module, "write_jsonl", broken_write)
        report = SuiteExecutor(cache=cache).run(suite)
        assert canonical_records(report.outcomes) == serial_records
        assert report.computed == len(report.shards)
        assert cache.stats.write_errors == len(report.shards)

        # Once the disk heals, the next run recomputes and persists.
        monkeypatch.undo()
        again = SuiteExecutor(cache=cache).run(suite)
        assert again.cached == 0
        assert again.computed == len(again.shards)
        assert len(cache) == len(again.shards)
        third = SuiteExecutor(cache=cache).run(suite)
        assert third.computed == 0
        assert canonical_records(third.outcomes) == serial_records
