"""Shared fixtures for the suite-executor tests."""

from __future__ import annotations

import pytest

from tests.exec.factories import canonical_records, make_suite


@pytest.fixture()
def suite():
    return make_suite()


@pytest.fixture()
def serial_records(suite):
    return canonical_records(suite.run())
