"""Suite factories shared by the executor tests.

The reference suite deliberately crosses the axes that matter for
parity: a structured-engine algorithm (send_floor) and a dense-only
one (arbitrary_rounding_fixed), multiple graph families, multiple
replicas (so batch execution and replica-splitting engage), loads-only
probes, seeded dynamics, and both stop-rule shapes.
"""

from __future__ import annotations

from repro.scenarios import (
    AlgorithmSpec,
    DynamicsSpec,
    GraphSpec,
    LoadSpec,
    ProbeSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
    canonical_json,
)


def make_suite(
    *,
    algorithms=("send_floor", "arbitrary_rounding_fixed"),
    replicas=2,
    dynamics=DynamicsSpec("constant_rate", {"rate": 2, "seed": 7}),
    stop=StopRule.fixed(20),
    name="exec-parity",
) -> ScenarioSuite:
    graphs = (
        GraphSpec("cycle", {"n": 12}),
        GraphSpec("random_regular", {"n": 16, "degree": 4, "seed": 3}),
    )
    return ScenarioSuite(
        tuple(
            Scenario(
                graph=graph,
                algorithm=AlgorithmSpec(algorithm, seed=1),
                loads=LoadSpec(
                    "uniform_random", {"total_tokens": 480, "seed": 2}
                ),
                stop=stop,
                replicas=replicas,
                probes=(
                    ProbeSpec("load_bounds"),
                    ProbeSpec("discrepancy"),
                ),
                dynamics=dynamics,
            )
            for graph in graphs
            for algorithm in algorithms
        ),
        name=name,
    )


def canonical_records(outcomes) -> list[list[str]]:
    """Byte-stable per-scenario record serializations for comparison."""
    return [
        [canonical_json(record.to_dict()) for record in outcome.records]
        for outcome in outcomes
    ]
