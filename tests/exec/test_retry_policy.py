"""RetryPolicy semantics: classification, backoff, determinism, plumbing."""

import pytest

from repro.exec import (
    RETRYABLE_ERROR_TYPES,
    ExecConfig,
    RetryPolicy,
    as_retry_policy,
    configure,
    current,
)


class TestPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError, match="nonnegative"):
            RetryPolicy(backoff=-1.0)

    def test_retryable_is_coerced_to_frozenset(self):
        policy = RetryPolicy(retryable=["OSError"])
        assert policy.retryable == frozenset({"OSError"})


class TestClassification:
    def test_default_retryable_types(self):
        policy = RetryPolicy()
        for name in (
            "ShardTimeoutError",
            "WorkerCrashError",
            "OSError",
            "MemoryError",
        ):
            assert policy.is_retryable(name), name

    def test_poisoned_types_fail_fast(self):
        policy = RetryPolicy(max_attempts=5)
        for name in ("ValueError", "InvalidFault", "AssertionError",
                     "KeyError"):
            assert not policy.is_retryable(name), name
            assert not policy.should_retry(name, 1)

    def test_should_retry_respects_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("OSError", 1)
        assert policy.should_retry("OSError", 2)
        assert not policy.should_retry("OSError", 3)

    def test_custom_retryable_set(self):
        policy = RetryPolicy(retryable=frozenset({"KeyError"}))
        assert policy.should_retry("KeyError", 1)
        assert not policy.should_retry("OSError", 1)


class TestBackoff:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(backoff=0.5)
        assert policy.delay("key", 1) == policy.delay("key", 1)

    def test_delay_varies_with_key_and_attempt(self):
        policy = RetryPolicy(backoff=0.5, max_backoff=1000.0)
        delays = {
            policy.delay(key, attempt)
            for key in ("a", "b", "c")
            for attempt in (1, 2, 3)
        }
        assert len(delays) == 9, "jitter must decorrelate shards"

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(backoff=1.0, max_backoff=4.0)
        # base doubles 1, 2, 4 then caps; jitter multiplies [1, 1.5)
        assert 1.0 <= policy.delay("k", 1) < 1.5
        assert 2.0 <= policy.delay("k", 2) < 3.0
        assert 4.0 <= policy.delay("k", 3) < 6.0
        assert 4.0 <= policy.delay("k", 10) < 6.0

    def test_zero_backoff_means_immediate_retry(self):
        policy = RetryPolicy(backoff=0.0)
        assert policy.delay("k", 1) == 0.0


class TestCoercion:
    def test_none_passes_through(self):
        assert as_retry_policy(None) is None

    def test_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=2)
        assert as_retry_policy(policy) is policy

    def test_int_becomes_attempt_count(self):
        policy = as_retry_policy(4)
        assert policy.max_attempts == 4
        assert policy.retryable == RETRYABLE_ERROR_TYPES

    def test_bool_and_junk_are_rejected(self):
        with pytest.raises(TypeError):
            as_retry_policy(True)
        with pytest.raises(TypeError):
            as_retry_policy("thrice")


class TestAmbientConfig:
    def test_defaults_are_fault_intolerant(self):
        config = ExecConfig()
        assert config.retry is None
        assert config.timeout is None
        assert config.on_shard_failure == "raise"

    def test_configure_sets_and_restores(self):
        with configure(retry=3, timeout=2.5, on_shard_failure="partial"):
            config = current()
            assert config.retry.max_attempts == 3
            assert config.timeout == 2.5
            assert config.on_shard_failure == "partial"
            # False disables an inherited setting within a nested scope.
            with configure(retry=False, timeout=False):
                inner = current()
                assert inner.retry is None
                assert inner.timeout is None
                assert inner.on_shard_failure == "partial"
        after = current()
        assert after.retry is None
        assert after.timeout is None
        assert after.on_shard_failure == "raise"

    def test_configure_validates_inputs(self):
        with pytest.raises(ValueError, match="timeout"):
            with configure(timeout=-1.0):
                pass
        with pytest.raises(ValueError, match="on_shard_failure"):
            with configure(on_shard_failure="ignore"):
                pass
