"""Chaos tests: the executor under killed, hung, and flaky workers.

Each test injects a real process-level failure — a worker SIGKILL'd
mid-shard, a shard that sleeps past its deadline, a shard that fails
transiently — and asserts the contract from the module docstring of
:mod:`repro.exec.runner`: the rest of the plan completes, healthy
shards are cached, failures are classified and retried or reported,
and whatever does complete is byte-identical to a serial run.

Fault injection rides the fork start method: workers inherit the
parent's monkeypatched ``Scenario.run``, and cross-process attempt
counters live in files under ``tmp_path``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.exec import (
    PartialSuiteResult,
    ResultCache,
    RetryPolicy,
    SuiteExecutionError,
    SuiteExecutor,
    configure,
)
from repro.scenarios.spec import Scenario

from tests.exec.factories import canonical_records

# Tight backoff keeps the whole chaos suite fast; determinism does not
# depend on the delay values.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.01, max_backoff=0.05)

# The scenario targeted by every injected fault (one shard of four).
TARGET_ALGORITHM = "arbitrary_rounding_fixed"
TARGET_GRAPH_N = 16


def _is_target(scenario: Scenario) -> bool:
    return (
        scenario.algorithm.name == TARGET_ALGORITHM
        and scenario.graph.params.get("n") == TARGET_GRAPH_N
    )


@pytest.fixture()
def sabotage(monkeypatch, tmp_path):
    """Patch ``Scenario.run`` to misbehave on the target scenario.

    ``sabotage(kind, fail_times=...)`` installs the failure mode;
    the counter file makes "fail N times, then succeed" work across
    worker processes (each attempt runs in a fresh fork).
    """
    original = Scenario.run
    counter = tmp_path / "attempts"

    def install(kind: str, fail_times: int = 10**9):
        def chaotic(self, *args, **kwargs):
            if _is_target(self):
                seen = (
                    int(counter.read_text())
                    if counter.exists()
                    else 0
                )
                if seen < fail_times:
                    counter.write_text(str(seen + 1))
                    if kind == "sigkill":
                        os.kill(os.getpid(), signal.SIGKILL)
                    if kind == "hang":
                        time.sleep(60.0)
                    if kind == "transient":
                        raise OSError("simulated transient I/O error")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Scenario, "run", chaotic)
        return counter

    return install


class TestKilledWorker:
    def test_sigkilled_worker_is_reported_not_wedged(
        self, suite, sabotage
    ):
        sabotage("sigkill")
        executor = SuiteExecutor(workers=2)
        with pytest.raises(SuiteExecutionError) as excinfo:
            executor.run(suite)
        error = excinfo.value
        assert len(error.failures) == 1
        failure = error.failures[0]
        assert "WorkerCrashError" in failure.error
        assert failure.attempts == 1  # no retry policy configured
        # Every other shard completed despite the dead worker.
        assert len(error.report.outcomes) == len(suite) - 1

    def test_crash_is_retried_and_healthy_shards_cached(
        self, suite, sabotage, tmp_path, serial_records
    ):
        counter = sabotage("sigkill", fail_times=2)
        cache = ResultCache(tmp_path / "cache")
        report = SuiteExecutor(
            workers=2, cache=cache, retry=FAST_RETRY
        ).run(suite)
        # Died twice, succeeded on the third (fresh) worker.
        assert int(counter.read_text()) == 2
        assert report.failures == []
        assert canonical_records(report.outcomes) == serial_records
        assert len(cache) == len(report.shards)


class TestHangingShard:
    def test_hung_worker_is_killed_at_the_deadline(
        self, suite, sabotage
    ):
        sabotage("hang")
        start = time.monotonic()
        with pytest.raises(SuiteExecutionError) as excinfo:
            SuiteExecutor(workers=2, timeout=1.0).run(suite)
        elapsed = time.monotonic() - start
        failure = excinfo.value.failures[0]
        assert "ShardTimeoutError" in failure.error
        # The 60 s sleep must not be waited out: the worker was killed.
        assert elapsed < 30.0
        assert len(excinfo.value.report.outcomes) == len(suite) - 1

    def test_timeout_applies_even_with_one_worker(
        self, suite, sabotage
    ):
        sabotage("hang")
        with pytest.raises(SuiteExecutionError) as excinfo:
            SuiteExecutor(workers=1, timeout=1.0).run(suite)
        assert "ShardTimeoutError" in excinfo.value.failures[0].error


class TestTransientFailure:
    def test_fails_twice_succeeds_on_retry(
        self, suite, sabotage, tmp_path, serial_records
    ):
        counter = sabotage("transient", fail_times=2)
        report = SuiteExecutor(workers=2, retry=FAST_RETRY).run(suite)
        assert int(counter.read_text()) == 2
        assert report.failures == []
        # Retried results are byte-identical to an undisturbed serial
        # run: retries replay the same deterministic shard.
        assert canonical_records(report.outcomes) == serial_records

    def test_serial_path_retries_too(
        self, suite, sabotage, tmp_path, serial_records
    ):
        counter = sabotage("transient", fail_times=2)
        outcomes = suite.run(retry=FAST_RETRY)
        assert int(counter.read_text()) == 2
        assert canonical_records(outcomes) == serial_records

    def test_poisoned_shard_fails_fast(self, suite, sabotage, tmp_path):
        counter = sabotage("transient", fail_times=10**9)
        policy = RetryPolicy(
            max_attempts=5,
            backoff=0.01,
            retryable=frozenset({"ShardTimeoutError"}),  # OSError: poison
        )
        with pytest.raises(SuiteExecutionError) as excinfo:
            SuiteExecutor(workers=2, retry=policy).run(suite)
        assert excinfo.value.failures[0].attempts == 1
        assert int(counter.read_text()) == 1

    def test_retries_exhausted_reports_attempt_count(
        self, suite, sabotage
    ):
        sabotage("transient")
        with pytest.raises(SuiteExecutionError) as excinfo:
            SuiteExecutor(workers=2, retry=FAST_RETRY).run(suite)
        failure = excinfo.value.failures[0]
        assert failure.attempts == FAST_RETRY.max_attempts
        assert "OSError" in failure.error


class TestGracefulDegradation:
    def test_partial_mode_returns_survivors(self, suite, sabotage):
        sabotage("sigkill")
        outcomes = suite.run(workers=2, on_shard_failure="partial")
        assert isinstance(outcomes, PartialSuiteResult)
        assert not outcomes.complete
        assert len(outcomes) == len(suite) - 1
        assert len(outcomes.failures) == 1
        assert "failed" in outcomes.summary_line()

    def test_partial_then_resume_fills_only_the_holes(
        self, suite, sabotage, tmp_path, monkeypatch, serial_records
    ):
        sabotage("sigkill")
        cache = ResultCache(tmp_path / "cache")
        partial = suite.run(
            workers=2, cache=cache, on_shard_failure="partial"
        )
        assert len(partial) == len(suite) - 1
        assert len(cache) == len(suite) - 1
        # The chaos ends (monkeypatch undone); resume recomputes only
        # the one missing shard and the result matches serial exactly.
        monkeypatch.undo()
        report = SuiteExecutor(workers=2, cache=cache).run(suite)
        assert report.cached == len(suite) - 1
        assert report.computed == 1
        assert canonical_records(report.outcomes) == serial_records

    def test_error_message_carries_repro_details(
        self, suite, sabotage, tmp_path
    ):
        sabotage("sigkill")
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(SuiteExecutionError) as excinfo:
            SuiteExecutor(workers=2, cache=cache).run(suite)
        message = str(excinfo.value)
        failure = excinfo.value.failures[0]
        assert failure.content_hash[:12] in message
        start, stop = (
            failure.shard.replica_start,
            failure.shard.replica_stop,
        )
        assert f"replicas {start}:{stop}" in message
        assert "repro-lb scenario" in message
        assert "--resume" in message
        assert f"--cache-dir {cache.root}" in message


class TestChaosParity:
    def test_survivor_records_match_serial_byte_for_byte(
        self, suite, sabotage, serial_records
    ):
        """Chaos must never corrupt what *does* complete."""
        sabotage("sigkill")
        outcomes = suite.run(workers=2, on_shard_failure="partial")
        survivor_labels = {
            outcome.scenario.label() for outcome in outcomes
        }
        expected = [
            records
            for scenario, records in zip(suite, serial_records)
            if scenario.label() in survivor_labels
        ]
        assert canonical_records(outcomes) == expected

    def test_ambient_configure_drives_fault_tolerance(
        self, suite, sabotage, tmp_path, serial_records
    ):
        """Drivers inherit retries/timeouts without any plumbing."""
        sabotage("transient", fail_times=2)
        with configure(
            workers=2, retry=FAST_RETRY, timeout=120.0
        ):
            outcomes = suite.run()
        assert canonical_records(outcomes) == serial_records
