"""Shard planning: determinism, replica splitting, and key coverage."""

import pytest

from repro.exec import Shard, plan_shards, shard_key
from repro.exec.sharding import _package_version

from tests.exec.factories import make_suite


class TestPlanShards:
    def test_default_one_shard_per_scenario(self):
        suite = make_suite(replicas=3)
        shards = plan_shards(suite)
        assert len(shards) == len(suite)
        for index, shard in enumerate(shards):
            assert shard.scenario_index == index
            assert shard.replica_range == range(0, 3)

    def test_replica_axis_splitting(self):
        suite = make_suite(replicas=5)
        shards = plan_shards(suite, max_replicas_per_shard=2)
        per_scenario = [
            [s for s in shards if s.scenario_index == i]
            for i in range(len(suite))
        ]
        for chunks in per_scenario:
            assert [
                (c.replica_start, c.replica_stop) for c in chunks
            ] == [(0, 2), (2, 4), (4, 5)]
        # Ranges tile the replica axis exactly.
        assert sum(len(s) for s in shards) == 5 * len(suite)

    def test_plan_is_deterministic(self):
        suite = make_suite(replicas=4)
        assert plan_shards(suite, 3) == plan_shards(suite, 3)

    def test_plan_does_not_depend_on_workers(self):
        # Worker count is deliberately absent from the signature: the
        # plan (and therefore every cache key) is a pure function of
        # the suite, so serial and parallel runs share cache entries.
        suite = make_suite(replicas=4)
        assert plan_shards(suite) == plan_shards(suite)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError, match="max_replicas_per_shard"):
            plan_shards(make_suite(), max_replicas_per_shard=0)

    def test_invalid_shard_range(self):
        with pytest.raises(ValueError, match="invalid replica range"):
            Shard(0, 2, 2)


class TestShardKey:
    def test_key_is_stable(self):
        suite = make_suite()
        (scenario, *_rest) = tuple(suite)
        shard = plan_shards(suite)[0]
        assert shard_key(scenario, shard) == shard_key(scenario, shard)

    def test_key_depends_on_replica_range(self):
        suite = make_suite(replicas=4)
        scenario = tuple(suite)[0]
        a, b = Shard(0, 0, 2), Shard(0, 2, 4)
        assert shard_key(scenario, a) != shard_key(scenario, b)

    def test_key_uses_running_package_version(self, monkeypatch):
        import repro

        suite = make_suite()
        scenario = tuple(suite)[0]
        shard = plan_shards(suite)[0]
        before = shard_key(scenario, shard)
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        assert _package_version() == "999.0.0-test"
        assert shard_key(scenario, shard) != before

    def test_label_mentions_partial_ranges_only(self):
        suite = make_suite(replicas=4)
        scenario = tuple(suite)[0]
        assert "replicas" not in Shard(0, 0, 4).label(scenario)
        assert "[replicas 1:3]" in Shard(0, 1, 3).label(scenario)
