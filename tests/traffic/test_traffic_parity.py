"""Executor parity for the datacenter traffic generators.

Every repro.traffic injector, on both fabrics, must be bit-identical
across the serial runner, the 2-worker sharded runner, and a cached
replay — the same acceptance bar the core injectors pass in
``tests/exec/test_parallel_parity.py``.  Records are compared on their
canonical JSON, so replica indices, probe scalars (including the
tier_loads percentiles) and injection summaries are all pinned.
"""

import pytest

from repro.exec import ResultCache, run_suite
from repro.scenarios import (
    AlgorithmSpec,
    DynamicsSpec,
    GraphSpec,
    LoadSpec,
    ProbeSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)
from repro.traffic import TRAFFIC_INJECTORS

from tests.exec.factories import canonical_records

pytestmark = pytest.mark.slow

FABRICS = (
    GraphSpec("fat_tree", {"k": 4}),
    GraphSpec("leaf_spine", {"leaves": 4, "spines": 2, "hosts_per_leaf": 3}),
)

TRAFFIC_SPECS = {
    "poisson_arrivals": {"rate": 0.5, "seed": 3},
    "pareto_flows": {"rate": 1.0, "alpha": 1.4, "max_size": 50, "seed": 3},
    "diurnal": {"rate": 1.0, "period": 12, "amplitude": 0.8, "seed": 3},
    "hotspot_shift": {"rate": 12, "hotspots": 3, "shift_every": 8, "seed": 3},
    "correlated_burst": {
        "tokens": 10,
        "nodes": 4,
        "probability": 0.2,
        "seed": 3,
    },
}


def make_traffic_suite() -> ScenarioSuite:
    return ScenarioSuite(
        tuple(
            Scenario(
                graph=fabric,
                algorithm=AlgorithmSpec("send_floor", seed=1),
                loads=LoadSpec("balanced", {"per_node": 6}),
                stop=StopRule.fixed(30),
                replicas=2,
                probes=(
                    ProbeSpec("tier_loads", {"percentile": 99.0}),
                    ProbeSpec("discrepancy"),
                ),
                dynamics=DynamicsSpec(model, dict(params)),
            )
            for fabric in FABRICS
            for model, params in sorted(TRAFFIC_SPECS.items())
        ),
        name="traffic-parity",
    )


def test_every_traffic_injector_is_exercised():
    assert set(TRAFFIC_SPECS) == set(TRAFFIC_INJECTORS)


class TestTrafficExecutorParity:
    @pytest.fixture(scope="class")
    def suite(self):
        return make_traffic_suite()

    @pytest.fixture(scope="class")
    def serial_records(self, suite):
        return canonical_records(suite.run())

    def test_two_workers_bit_identical(self, suite, serial_records):
        report = run_suite(suite, workers=2)
        assert canonical_records(report.outcomes) == serial_records

    def test_replica_split_bit_identical(self, suite, serial_records):
        report = run_suite(suite, workers=2, max_replicas_per_shard=1)
        assert len(report.shards) == sum(s.replicas for s in suite)
        assert canonical_records(report.outcomes) == serial_records

    def test_cached_replay_bit_identical(
        self, suite, serial_records, tmp_path
    ):
        cache = ResultCache(tmp_path)
        first = run_suite(suite, cache=cache)
        assert canonical_records(first.outcomes) == serial_records
        replay = run_suite(suite, cache=cache)
        assert replay.computed == 0
        assert replay.cached == len(replay.shards)
        assert canonical_records(replay.outcomes) == serial_records

    def test_tier_summaries_survive_the_wire(self, suite):
        # tier_loads scalars come back through worker serialization
        # with the same keys and values as the in-process run.
        serial = [
            outcome.replica_summary(replica)
            for outcome in suite.run()
            for replica in range(len(outcome))
        ]
        report = run_suite(suite, workers=2)
        parallel = [
            outcome.replica_summary(replica)
            for outcome in report.outcomes
            for replica in range(len(outcome))
        ]
        assert parallel == serial
        assert any("tier_host_mean_load" in row for row in serial)
