"""Unit tests for the repro.traffic arrival generators.

Shape and determinism per generator; the seed/replica-offset and
batch-size discipline is pinned centrally in
``tests/scenarios/test_replica_offsets.py`` (which covers every
registered injector, these included) and the executor-level
bit-identity in ``tests/traffic/test_traffic_parity.py``.
"""

import numpy as np
import pytest

from repro.core.errors import InvalidInjection
from repro.dynamics import INJECTORS, DynamicsSpec
from repro.graphs.datacenter import leaf_spine
from repro.traffic import (
    TRAFFIC_INJECTORS,
    CorrelatedBurst,
    Diurnal,
    HotspotShift,
    ParetoFlows,
    PoissonArrivals,
    host_rates,
)

N = 20


def _stream(injector, rounds=12, n=N):
    loads = np.full(n, 50, dtype=np.int64)
    injector.start(None, loads)
    return np.stack(
        [injector.delta(t, loads).copy() for t in range(1, rounds + 1)]
    )


def test_all_traffic_injectors_registered():
    assert set(TRAFFIC_INJECTORS) <= set(INJECTORS.names())


@pytest.mark.parametrize("name", TRAFFIC_INJECTORS)
def test_json_round_trip_builds_identical_stream(name):
    params = {
        "poisson_arrivals": {"rate": 1.5, "seed": 4},
        "pareto_flows": {"rate": 2.0, "alpha": 1.3, "seed": 4},
        "diurnal": {"rate": 2.0, "period": 6, "seed": 4},
        "hotspot_shift": {"rate": 7, "hotspots": 2, "seed": 4},
        "correlated_burst": {"tokens": 5, "probability": 0.5, "seed": 4},
    }[name]
    import json

    spec = DynamicsSpec(name, params)
    round_tripped = DynamicsSpec.from_dict(
        json.loads(json.dumps(spec.to_dict()))
    )
    np.testing.assert_array_equal(
        _stream(spec.build()), _stream(round_tripped.build())
    )


@pytest.mark.parametrize("name", TRAFFIC_INJECTORS)
def test_start_resets_the_stream(name):
    injector = DynamicsSpec(
        name,
        {
            "poisson_arrivals": {"rate": 2.0, "seed": 9},
            "pareto_flows": {"rate": 1.5, "seed": 9},
            "diurnal": {"rate": 2.0, "seed": 9},
            "hotspot_shift": {"rate": 6, "shift_every": 3, "seed": 9},
            "correlated_burst": {"tokens": 4, "probability": 0.6, "seed": 9},
        }[name],
    ).build()
    first = _stream(injector)
    second = _stream(injector)  # same instance, fresh start()
    np.testing.assert_array_equal(first, second)


class TestPoissonArrivals:
    def test_per_node_rates_respect_zero_nodes(self):
        rates = [3.0] * 5 + [0.0] * (N - 5)
        deltas = _stream(PoissonArrivals(rates, seed=2), rounds=30)
        assert deltas[:, :5].sum() > 0
        assert deltas[:, 5:].sum() == 0

    def test_rate_vector_length_checked_at_start(self):
        injector = PoissonArrivals([1.0, 2.0], seed=0)
        with pytest.raises(InvalidInjection, match="nodes"):
            injector.start(None, np.zeros(5, dtype=np.int64))

    def test_negative_rate_rejected(self):
        with pytest.raises(InvalidInjection):
            PoissonArrivals(-1.0)
        with pytest.raises(InvalidInjection):
            PoissonArrivals([1.0, -2.0])

    def test_summary_counts_everything(self):
        injector = PoissonArrivals(2.5, seed=1)
        total = int(_stream(injector).sum())
        assert injector.summary() == {"tokens_arrived": total}


class TestParetoFlows:
    def test_sizes_within_bounds(self):
        injector = ParetoFlows(
            rate=5.0, alpha=1.1, min_size=2, max_size=9, seed=3
        )
        loads = np.full(N, 50, dtype=np.int64)
        injector.start(None, loads)
        for t in range(1, 40):
            delta = injector.delta(t, loads)
            assert (delta >= 0).all()
        summary = injector.summary()
        assert summary["flows_arrived"] > 0
        assert (
            2 * summary["flows_arrived"]
            <= summary["tokens_arrived"]
            <= 9 * summary["flows_arrived"]
        )

    def test_validation(self):
        with pytest.raises(InvalidInjection, match="rate"):
            ParetoFlows(rate=-1)
        with pytest.raises(InvalidInjection, match="alpha"):
            ParetoFlows(rate=1, alpha=0)
        with pytest.raises(InvalidInjection, match="min_size"):
            ParetoFlows(rate=1, min_size=5, max_size=2)


class TestDiurnal:
    def test_trough_of_full_swing_is_silent(self):
        # amplitude=1, period=4: round t=4 sits at sin(3*pi/2) = -1,
        # so the modulated rate is exactly 0.
        injector = Diurnal(rate=50.0, period=4, amplitude=1.0, seed=0)
        deltas = _stream(injector, rounds=8)
        assert deltas[3].sum() == 0  # t = 4
        assert deltas[7].sum() == 0  # t = 8
        assert deltas[0].sum() > 0  # t = 1 runs at the base rate

    def test_validation(self):
        with pytest.raises(InvalidInjection, match="period"):
            Diurnal(rate=1.0, period=0)
        with pytest.raises(InvalidInjection, match="amplitude"):
            Diurnal(rate=1.0, amplitude=1.5)


class TestHotspotShift:
    def test_concentrates_rate_on_hot_set(self):
        injector = HotspotShift(
            rate=10, hotspots=3, shift_every=4, seed=5
        )
        deltas = _stream(injector, rounds=12)
        for delta in deltas:
            assert delta.sum() == 10
            assert (delta > 0).sum() <= 3

    def test_hot_set_rotates_between_epochs(self):
        injector = HotspotShift(
            rate=6, hotspots=2, shift_every=2, seed=5
        )
        deltas = _stream(injector, rounds=20)
        supports = {
            tuple(np.nonzero(delta)[0]) for delta in deltas
        }
        assert len(supports) > 1

    def test_stream_is_independent_of_call_history(self):
        # Epoch randomness is keyed on (seed, epoch), so computing
        # round 9 cold equals computing it after rounds 1..8.
        loads = np.full(N, 50, dtype=np.int64)
        sequential = HotspotShift(rate=8, shift_every=3, seed=2)
        sequential.start(None, loads)
        expected = None
        for t in range(1, 10):
            expected = sequential.delta(t, loads).copy()
        cold = HotspotShift(rate=8, shift_every=3, seed=2)
        cold.start(None, loads)
        np.testing.assert_array_equal(cold.delta(9, loads), expected)

    def test_validation(self):
        with pytest.raises(InvalidInjection, match="hotspots"):
            HotspotShift(rate=1, hotspots=0)
        with pytest.raises(InvalidInjection, match="shift_every"):
            HotspotShift(rate=1, shift_every=0)


class TestCorrelatedBurst:
    def test_bursts_hit_distinct_nodes_simultaneously(self):
        injector = CorrelatedBurst(
            tokens=7, nodes=3, probability=0.5, seed=6
        )
        deltas = _stream(injector, rounds=40)
        burst_rounds = [d for d in deltas if d.sum()]
        assert burst_rounds
        for delta in burst_rounds:
            hit = delta[delta > 0]
            assert hit.shape[0] == 3
            assert (hit == 7).all()
        assert injector.summary()["bursts_fired"] == len(burst_rounds)

    def test_validation(self):
        with pytest.raises(InvalidInjection, match="probability"):
            CorrelatedBurst(tokens=1, probability=2.0)
        with pytest.raises(InvalidInjection, match="nodes"):
            CorrelatedBurst(tokens=1, nodes=0)


class TestHostRates:
    def test_builds_tier_concentrated_vector(self):
        graph = leaf_spine(3, 2, 2)
        rates = host_rates(graph, 1.75)
        assert rates == [1.75] * 6 + [0.0] * 5
        assert host_rates(graph, 2.0, tier="spine") == (
            [0.0] * 9 + [2.0] * 2
        )

    def test_requires_tiered_graph(self):
        from repro.graphs import families

        with pytest.raises(InvalidInjection, match="node_tiers"):
            host_rates(families.cycle(6), 1.0)

    def test_unknown_tier_rejected(self):
        with pytest.raises(InvalidInjection, match="unknown tier"):
            host_rates(leaf_spine(2, 2, 1), 1.0, tier="rack")
