"""Tests for the declarative scenario data model."""

import json

import numpy as np
import pytest

from repro.core.monitors import LoadBoundsMonitor
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)


def make_scenario(**overrides) -> Scenario:
    base = dict(
        graph=GraphSpec("cycle", {"n": 12}),
        algorithm=AlgorithmSpec("rotor_router", seed=3),
        loads=LoadSpec("point_mass", {"tokens": 240}),
        stop=StopRule.fixed(40),
        replicas=2,
        name="demo",
    )
    base.update(overrides)
    return Scenario(**base)


class TestRoundTrip:
    def test_scenario_json_round_trip(self):
        scenario = make_scenario()
        data = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(data) == scenario

    def test_suite_round_trip(self):
        suite = ScenarioSuite(
            (make_scenario(), make_scenario(name="other")), name="sweep"
        )
        data = json.loads(json.dumps(suite.to_dict()))
        restored = ScenarioSuite.from_dict(data)
        assert restored.name == "sweep"
        assert tuple(restored) == tuple(suite)

    @pytest.mark.parametrize(
        "stop",
        [
            StopRule.fixed(7),
            StopRule.discrepancy(4, 100, check_every=3),
            StopRule.converged(50, window=5),
        ],
    )
    def test_stop_rule_round_trip(self, stop):
        assert StopRule.from_dict(stop.to_dict()) == stop

    def test_prebuilt_graph_not_serializable(self):
        scenario = make_scenario(
            graph=GraphSpec("cycle", {"n": 12}).build()
        )
        with pytest.raises(ValueError, match="prebuilt graph"):
            scenario.to_dict()

    def test_monitors_not_serializable(self):
        scenario = make_scenario(monitors=(LoadBoundsMonitor,))
        with pytest.raises(ValueError, match="monitor"):
            scenario.to_dict()

    def test_dynamics_round_trip(self):
        from repro.scenarios import DynamicsSpec

        scenario = make_scenario(
            dynamics=DynamicsSpec(
                "random_churn", {"rate": 6, "seed": 3}
            )
        )
        data = json.loads(json.dumps(scenario.to_dict()))
        restored = Scenario.from_dict(data)
        assert restored == scenario
        assert restored.dynamics.params == {"rate": 6, "seed": 3}
        # ... and the restored scenario actually injects.
        outcome = restored.run()
        assert (
            "tokens_departed"
            in outcome.record(0).summary
        )

    def test_static_scenario_dict_has_no_dynamics_key(self):
        assert "dynamics" not in make_scenario().to_dict()

    def test_injector_instance_not_serializable(self):
        from repro.dynamics import AdversarialPeak

        scenario = make_scenario(
            replicas=1, dynamics=AdversarialPeak(rate=2)
        )
        with pytest.raises(ValueError, match="injector instances"):
            scenario.to_dict()

    def test_injector_instance_rejected_for_multi_replica(self):
        from repro.dynamics import AdversarialPeak

        with pytest.raises(ValueError, match="fresh injectors"):
            make_scenario(replicas=2, dynamics=AdversarialPeak(rate=2))

    def test_cartesian_carries_dynamics(self):
        from repro.scenarios import DynamicsSpec

        suite = ScenarioSuite.cartesian(
            graphs=GraphSpec("cycle", {"n": 12}),
            algorithms=AlgorithmSpec("send_floor"),
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(10),
            dynamics=DynamicsSpec("constant_rate", {"rate": 2}),
        )
        (scenario,) = tuple(suite)
        assert scenario.dynamics.name == "constant_rate"
        assert "constant_rate" in scenario.label()


class TestValidation:
    def test_unknown_stop_kind(self):
        with pytest.raises(ValueError, match="unknown stop kind"):
            StopRule(kind="never")

    def test_rounds_kind_needs_rounds(self):
        with pytest.raises(ValueError, match="rounds"):
            StopRule(kind="rounds")

    def test_target_kind_needs_budget(self):
        with pytest.raises(ValueError, match="max_rounds"):
            StopRule(kind="target_discrepancy", target=4)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            make_scenario(replicas=0)

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            make_scenario().run(executor="gpu")

    def test_monitors_reject_batch_executor(self):
        scenario = make_scenario(monitors=(LoadBoundsMonitor,))
        with pytest.raises(ValueError, match="looped"):
            scenario.run(executor="batch")

    def test_unknown_algorithm_surfaces_keyerror(self):
        scenario = make_scenario(
            algorithm=AlgorithmSpec("quantum_annealer")
        )
        with pytest.raises(KeyError, match="unknown balancer"):
            scenario.run()


class TestSpecs:
    def test_seeded_load_spec_offsets_per_replica(self):
        spec = LoadSpec("uniform_random", {"total_tokens": 500, "seed": 4})
        a0, a1 = spec.build(16, replica=0), spec.build(16, replica=1)
        assert not np.array_equal(a0, a1)
        np.testing.assert_array_equal(
            a1,
            LoadSpec("uniform_random", {"total_tokens": 500, "seed": 5}).build(16),
        )

    def test_deterministic_load_spec_identical_across_replicas(self):
        spec = LoadSpec("point_mass", {"tokens": 64})
        np.testing.assert_array_equal(
            spec.build(8, replica=0), spec.build(8, replica=3)
        )

    def test_algorithm_spec_offsets_seed(self, expander24):
        spec = AlgorithmSpec("randomized_edge_rounding", seed=10)
        a = spec.build(0).bind(expander24)
        b = spec.build(2).bind(expander24)
        loads = np.full(24, 43, dtype=np.int64)
        assert not np.array_equal(a.sends(loads, 1), b.sends(loads, 1))

    def test_specs_are_hashable_by_value(self):
        a = GraphSpec("circulant", {"n": 8, "offsets": [1, 2]})
        b = GraphSpec("circulant", {"offsets": [1, 2], "n": 8})
        assert hash(a) == hash(b) and a == b
        assert len({a, b}) == 1
        assert len({AlgorithmSpec("send_floor"), AlgorithmSpec("send_floor", seed=1)}) == 2
        assert len({LoadSpec("point_mass", {"tokens": 5})}) == 1

    def test_graph_spec_builds_named_family(self):
        graph = GraphSpec("torus", {"side": 3, "dimensions": 2}).build()
        assert graph.num_nodes == 9
        assert graph.degree == 4


class TestRunAndSuite:
    def test_run_with_monitors_collects_instances(self):
        scenario = make_scenario(monitors=(LoadBoundsMonitor,))
        outcome = scenario.run()
        assert outcome.executor == "loop"
        for replica in range(scenario.replicas):
            monitor = outcome.monitor(LoadBoundsMonitor, replica)
            assert monitor is not None
            assert monitor.min_ever >= 0

    def test_auto_executor_batches_multireplica(self):
        outcome = make_scenario().run()
        assert outcome.executor == "batch"
        assert len(outcome) == 2

    def test_auto_executor_loops_single_replica(self):
        outcome = make_scenario(replicas=1).run()
        assert outcome.executor == "loop"

    def test_replica_summary_reports_target(self):
        scenario = make_scenario(
            stop=StopRule.discrepancy(8, 400), replicas=1
        )
        summary = scenario.run().replica_summary()
        assert summary["target"] == 8
        assert summary["time_to_target"] is not None

    def test_cartesian_order_and_size(self):
        suite = ScenarioSuite.cartesian(
            graphs=[GraphSpec("cycle", {"n": 8}), GraphSpec("cycle", {"n": 12})],
            algorithms=[
                AlgorithmSpec("send_floor"),
                AlgorithmSpec("rotor_router"),
            ],
            loads=LoadSpec("point_mass", {"tokens": 100}),
            stop=StopRule.fixed(10),
        )
        assert len(suite) == 4
        combos = [
            (s.graph.params["n"], s.algorithm.name) for s in suite
        ]
        assert combos == [
            (8, "send_floor"),
            (8, "rotor_router"),
            (12, "send_floor"),
            (12, "rotor_router"),
        ]

    def test_suite_graph_override_rejected_for_multigraph_sweep(self):
        suite = ScenarioSuite.cartesian(
            graphs=[
                GraphSpec("cycle", {"n": 8}),
                GraphSpec("complete", {"n": 8}),
            ],
            algorithms=AlgorithmSpec("send_floor"),
            loads=LoadSpec("point_mass", {"tokens": 80}),
            stop=StopRule.fixed(5),
        )
        with pytest.raises(ValueError, match="multiple graphs"):
            suite.run(graph=GraphSpec("cycle", {"n": 8}).build())

    def test_suite_graph_override_allowed_for_shared_graph(self):
        spec = GraphSpec("cycle", {"n": 8})
        suite = ScenarioSuite.cartesian(
            graphs=spec,
            algorithms=[
                AlgorithmSpec("send_floor"),
                AlgorithmSpec("rotor_router"),
            ],
            loads=LoadSpec("point_mass", {"tokens": 80}),
            stop=StopRule.fixed(5),
        )
        outcomes = suite.run(graph=spec.build())
        assert len(outcomes) == 2

    def test_suite_builds_each_distinct_graph_once(self):
        suite = ScenarioSuite.cartesian(
            graphs=GraphSpec("cycle", {"n": 10}),
            algorithms=[
                AlgorithmSpec("send_floor"),
                AlgorithmSpec("rotor_router"),
                AlgorithmSpec("send_rounded"),
            ],
            loads=LoadSpec("point_mass", {"tokens": 100}),
            stop=StopRule.fixed(5),
        )
        outcomes = suite.run()
        first = outcomes[0].graph
        assert all(outcome.graph is first for outcome in outcomes)

    def test_suite_run_executes_everything(self):
        suite = ScenarioSuite.cartesian(
            graphs=GraphSpec("complete", {"n": 8}),
            algorithms=[
                AlgorithmSpec("send_floor"),
                AlgorithmSpec("send_rounded"),
            ],
            loads=LoadSpec("point_mass", {"tokens": 160}),
            stop=StopRule.fixed(30),
        )
        outcomes = suite.run()
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.replica(0).final_discrepancy <= 160
