"""Tests for the generic plugin registry and its three instantiations."""

import numpy as np
import pytest

from repro.registry import (
    DuplicateRegistrationError,
    Registry,
    UnknownEntryError,
)


class TestGenericRegistry:
    def test_named_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("square")
        def square(x):
            return x * x

        assert registry["square"] is square
        assert registry.create("square", x=3) == 9

    def test_bare_decorator_uses_function_name(self):
        registry = Registry("widget")

        @registry.register
        def cube(x):
            return x**3

        assert registry["cube"] is cube

    def test_duplicate_name_raises(self):
        registry = Registry("widget")
        registry.add("w", lambda: 1)
        with pytest.raises(DuplicateRegistrationError, match="widget 'w'"):
            registry.add("w", lambda: 2)

    def test_overwrite_allows_replacement(self):
        registry = Registry("widget")
        registry.add("w", lambda: 1)
        registry.add("w", lambda: 2, overwrite=True)
        assert registry.create("w") == 2

    def test_unknown_name_lists_known(self):
        registry = Registry("widget")
        registry.add("alpha", lambda: 1)
        with pytest.raises(UnknownEntryError, match="known: alpha"):
            registry["beta"]
        with pytest.raises(KeyError):  # also a KeyError for compat
            registry["beta"]

    def test_mapping_protocol(self):
        registry = Registry("widget")
        registry.add("b", lambda: 1)
        registry.add("a", lambda: 2)
        assert "a" in registry
        assert set(registry) == {"a", "b"}
        assert len(registry) == 2
        assert registry.names() == ["a", "b"]

    def test_get_keeps_plain_dict_semantics(self):
        registry = Registry("widget")
        factory = lambda: 1  # noqa: E731
        registry.add("a", factory)
        assert registry.get("a") is factory
        assert registry.get("missing") is None
        assert registry.get("missing", "fallback") == "fallback"

    def test_remove(self):
        registry = Registry("widget")
        registry.add("w", lambda: 1)
        registry.remove("w")
        assert "w" not in registry
        with pytest.raises(UnknownEntryError):
            registry.remove("w")

    def test_non_callable_rejected(self):
        registry = Registry("widget")
        with pytest.raises(TypeError):
            registry.add("w", 42)


class TestBalancerRegistryPlugin:
    def test_register_and_make_forwards_params(self, expander24):
        from repro.algorithms import SendFloor
        from repro.algorithms.registry import (
            BALANCERS,
            make,
            register_balancer,
        )

        @register_balancer("test_only_scheme")
        def _build(seed=0, **params):
            balancer = SendFloor()
            balancer.test_params = dict(params, seed=seed)
            return balancer

        try:
            balancer = make("test_only_scheme", seed=5, knob=7)
            assert balancer.test_params == {"seed": 5, "knob": 7}
        finally:
            BALANCERS.remove("test_only_scheme")
        assert "test_only_scheme" not in BALANCERS

    def test_duplicate_balancer_name_raises(self):
        from repro.algorithms.registry import register_balancer

        with pytest.raises(DuplicateRegistrationError):

            @register_balancer("send_floor")
            def _clash(seed=0):  # pragma: no cover - never called
                raise AssertionError

    def test_deterministic_factories_ignore_extra_seed_kwarg(self):
        from repro.algorithms.registry import make

        balancer = make("send_floor", seed=123)
        assert balancer.name == "send_floor"


class TestFamilyRegistryPlugin:
    def test_register_and_build(self):
        from repro.graphs import families

        @families.register_family("test_only_family")
        def _build(n, num_self_loops=None):
            return families.cycle(n, num_self_loops)

        try:
            graph = families.build("test_only_family", n=6)
            assert graph.num_nodes == 6
        finally:
            families.FAMILY_BUILDERS.remove("test_only_family")

    def test_duplicate_family_raises(self):
        from repro.graphs import families

        with pytest.raises(DuplicateRegistrationError):
            families.FAMILY_BUILDERS.add("cycle", lambda n: None)


class TestLoadSpecRegistryPlugin:
    def test_builtin_specs_registered(self):
        from repro.core.loads import LOAD_SPECS

        for name in (
            "point_mass",
            "uniform_random",
            "adversarial_split",
            "skewed",
            "bimodal",
        ):
            assert name in LOAD_SPECS

    def test_register_and_use_via_load_spec(self):
        from repro.core.loads import LOAD_SPECS, register_load_spec
        from repro.scenarios import LoadSpec

        @register_load_spec("test_only_load")
        def _build(n, value=1):
            return np.full(n, value, dtype=np.int64)

        try:
            loads = LoadSpec("test_only_load", {"value": 3}).build(5)
            np.testing.assert_array_equal(loads, np.full(5, 3))
        finally:
            LOAD_SPECS.remove("test_only_load")

    def test_adversarial_split_masses(self):
        from repro.core.loads import adversarial_split

        loads = adversarial_split(10, 101, fraction=0.5)
        assert loads.sum() == 101
        assert loads[0] == 51 and loads[5] == 50
        assert np.count_nonzero(loads) == 2

    def test_skewed_is_seeded_and_conserves(self):
        from repro.core.loads import skewed

        a = skewed(16, 1000, alpha=2.0, seed=3)
        b = skewed(16, 1000, alpha=2.0, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.sum() == 1000
        # Heavy head: the first node dominates the tail under alpha=2.
        assert a[0] > a[8:].sum()
