"""Regression: replica seed offsetting is batch-size independent.

Replica ``r`` of any scenario must see exactly the workload (initial
loads *and* injected events) it would see running alone with
``seed + r`` — no matter whether it executes looped, batched, or in a
batch of a different size.  A regression here silently decorrelates
"independent" replicas or makes results depend on how they were
grouped, so every seeded registered load spec and every seeded
injector is pinned down explicitly.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.loads import LOAD_SPECS
from repro.dynamics import INJECTORS, DynamicsSpec
from repro.faults import FAULTS, FaultSpec
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.topology import TOPOLOGIES, TopologySpec

N = 16

#: Valid params for every *registered* load spec (seeded and not);
#: a newly registered spec must be added here to stay covered.
LOAD_SPEC_PARAMS = {
    "point_mass": {"tokens": 160},
    "bimodal": {"high": 20},
    "uniform_random": {"total_tokens": 320, "seed": 5},
    "balanced": {"per_node": 10},
    "linear_gradient": {"step": 2},
    "random_spikes": {
        "num_spikes": 4,
        "spike_height": 25,
        "seed": 5,
    },
    "adversarial_split": {"tokens": 200},
    "skewed": {"total_tokens": 320, "alpha": 1.5, "seed": 5},
}

#: Valid params for every registered injector, mirroring the above.
#: The last five are the repro.traffic datacenter generators, pinned
#: to the same seed/replica-offset discipline as the core injectors.
INJECTOR_PARAMS = {
    "constant_rate": {"rate": 6, "seed": 5},
    "batch_arrivals": {"tokens": 20, "period": 3, "seed": 5},
    "adversarial_peak": {"rate": 4},
    "random_churn": {"rate": 10, "seed": 5},
    "scripted": {"events": [[2, 1, 9], [5, 0, 4]]},
    "poisson_arrivals": {"rate": 1.5, "seed": 5},
    "pareto_flows": {"rate": 2.0, "alpha": 1.4, "seed": 5},
    "diurnal": {"rate": 2.0, "period": 6, "amplitude": 0.9, "seed": 5},
    "hotspot_shift": {
        "rate": 8,
        "hotspots": 2,
        "shift_every": 4,
        "seed": 5,
    },
    "correlated_burst": {
        "tokens": 6,
        "nodes": 3,
        "probability": 0.4,
        "seed": 5,
    },
}


#: Valid params for every registered fault schedule, mirroring the
#: injector table: seeded schedules must offset per replica, and
#: replica ``r``'s fault history must not depend on batch size.
FAULT_PARAMS = {
    "link_failures": {"rate": 0.3, "seed": 5},
    "node_crashes": {"rate": 0.12, "downtime": 3, "seed": 5},
    "message_drop": {"rate": 0.2, "seed": 5},
}


#: Valid params for every registered topology schedule, same contract:
#: seeded schedules offset per replica, and replica ``r``'s event
#: history must not depend on how the batch was grouped.
TOPOLOGY_PARAMS = {
    "edge_churn": {"rate": 0.3, "downtime": 3, "seed": 5},
    "node_join_leave": {"rate": 0.15, "rejoin_after": 3, "seed": 5},
    "expander_rewire": {"swaps": 2, "seed": 5},
    "scripted": {
        "events": [["drop", 2, 0, 1], ["add", 5, 0, 1], ["leave", 8, 4]]
    },
}


def test_every_registered_load_spec_is_covered():
    assert set(LOAD_SPEC_PARAMS) == set(LOAD_SPECS.names())


def test_every_registered_injector_is_covered():
    assert set(INJECTOR_PARAMS) == set(INJECTORS.names())


@pytest.mark.parametrize("name", sorted(LOAD_SPEC_PARAMS))
def test_load_spec_replica_offset(name):
    """build(n, r) == an explicit seed+r build; seedless are constant."""
    params = LOAD_SPEC_PARAMS[name]
    spec = LoadSpec(name, params)
    for replica in (0, 1, 3):
        offset = spec.build(N, replica)
        if "seed" in params:
            explicit = LoadSpec(
                name, {**params, "seed": params["seed"] + replica}
            ).build(N)
        else:
            explicit = spec.build(N)
        np.testing.assert_array_equal(offset, explicit)


@pytest.mark.parametrize("name", sorted(INJECTOR_PARAMS))
def test_injector_replica_offset(name):
    """DynamicsSpec.build(r) emits the explicit seed+r stream."""
    params = INJECTOR_PARAMS[name]
    spec = DynamicsSpec(name, params)
    loads = np.full(N, 30, dtype=np.int64)
    for replica in (0, 2):
        offset = spec.build(replica)
        if "seed" in params:
            explicit = DynamicsSpec(
                name, {**params, "seed": params["seed"] + replica}
            ).build()
        else:
            explicit = spec.build()
        offset.start(None, loads)
        explicit.start(None, loads)
        current = loads.copy()
        for t in range(1, 12):
            a = offset.delta(t, current)
            b = explicit.delta(t, current)
            np.testing.assert_array_equal(a, b)
            current = current + a


@pytest.mark.parametrize("name", sorted(INJECTOR_PARAMS))
def test_injected_replica_independent_of_batch_size(name):
    """Replica r's trajectory is the same in a batch of 2, 4, or alone."""
    graph = families.cycle(N)
    loads = LoadSpec("uniform_random", {"total_tokens": 320, "seed": 5})
    dynamics = DynamicsSpec(name, INJECTOR_PARAMS[name])

    def scenario(replicas):
        return Scenario(
            graph=GraphSpec("cycle", {"n": N}),
            algorithm=AlgorithmSpec("send_floor"),
            loads=loads,
            stop=StopRule.fixed(20),
            replicas=replicas,
            dynamics=dynamics,
        )

    small = scenario(2).run(executor="batch")
    large = scenario(4).run(executor="batch")
    for replica in range(2):
        np.testing.assert_array_equal(
            small.replica(replica).final_loads,
            large.replica(replica).final_loads,
        )
    for replica in range(4):
        solo = Simulator(
            graph,
            make("send_floor"),
            loads.build(N, replica),
            dynamics=dynamics.build(replica),
        ).run(20)
        np.testing.assert_array_equal(
            large.replica(replica).final_loads, solo.final_loads
        )
        assert (
            large.replica(replica).discrepancy_history
            == solo.discrepancy_history
        )


def test_seeded_replicas_actually_differ():
    """The offset produces distinct streams (not a no-op)."""
    spec = DynamicsSpec("constant_rate", {"rate": 8, "seed": 1})
    loads = np.full(N, 10, dtype=np.int64)
    a, b = spec.build(0), spec.build(1)
    a.start(None, loads)
    b.start(None, loads)
    deltas_a = np.stack([a.delta(t, loads).copy() for t in range(1, 6)])
    deltas_b = np.stack([b.delta(t, loads).copy() for t in range(1, 6)])
    assert not np.array_equal(deltas_a, deltas_b)


def test_every_registered_fault_schedule_is_covered():
    assert set(FAULT_PARAMS) == set(FAULTS.names())


def _fault_history(schedule, graph, loads, rounds=12):
    """The (dead, dropped, delta) sequence a schedule emits."""
    schedule.start(graph, loads)
    history = []
    for t in range(1, rounds):
        faults = schedule.round_state(t, loads)
        history.append(
            None
            if faults is None
            else (
                faults.dead.tolist(),
                faults.dropped.tolist(),
                None
                if faults.load_delta is None
                else faults.load_delta.tolist(),
            )
        )
    return history


@pytest.mark.parametrize("name", sorted(FAULT_PARAMS))
def test_fault_schedule_replica_offset(name):
    """FaultSpec.build(r) emits the explicit seed+r fault history."""
    params = FAULT_PARAMS[name]
    spec = FaultSpec(name, params)
    graph = families.cycle(N)
    loads = np.full(N, 30, dtype=np.int64)
    for replica in (0, 2):
        offset = spec.build(replica)
        explicit = FaultSpec(
            name, {**params, "seed": params["seed"] + replica}
        ).build()
        assert _fault_history(offset, graph, loads) == _fault_history(
            explicit, graph, loads
        )


@pytest.mark.parametrize("name", sorted(FAULT_PARAMS))
def test_fault_replica_independent_of_batch_size(name):
    """Replica r's faulty trajectory is the same in any batch size."""
    graph = families.cycle(N)
    loads = LoadSpec("uniform_random", {"total_tokens": 320, "seed": 5})
    faults = FaultSpec(name, FAULT_PARAMS[name])

    def scenario(replicas):
        return Scenario(
            graph=GraphSpec("cycle", {"n": N}),
            algorithm=AlgorithmSpec("send_floor"),
            loads=loads,
            stop=StopRule.fixed(20),
            replicas=replicas,
            faults=faults,
        )

    small = scenario(2).run(executor="batch")
    large = scenario(4).run(executor="batch")
    for replica in range(2):
        np.testing.assert_array_equal(
            small.replica(replica).final_loads,
            large.replica(replica).final_loads,
        )
    for replica in range(4):
        solo = Simulator(
            graph,
            make("send_floor"),
            loads.build(N, replica),
            faults=faults.build(replica),
        ).run(20)
        np.testing.assert_array_equal(
            large.replica(replica).final_loads, solo.final_loads
        )
        assert (
            large.replica(replica).discrepancy_history
            == solo.discrepancy_history
        )


def test_seeded_fault_replicas_actually_differ():
    """The fault-seed offset produces distinct histories (not a no-op)."""
    graph = families.cycle(N)
    loads = np.full(N, 30, dtype=np.int64)
    spec = FaultSpec("link_failures", {"rate": 0.3, "seed": 1})
    assert _fault_history(spec.build(0), graph, loads) != _fault_history(
        spec.build(1), graph, loads
    )


def test_every_registered_topology_schedule_is_covered():
    assert set(TOPOLOGY_PARAMS) == set(TOPOLOGIES.names())


def _topology_history(schedule, graph, loads, rounds=12):
    """The event stream a schedule emits (schedules self-track state)."""
    schedule.start(graph, loads)
    history = []
    for t in range(1, rounds):
        events = schedule.round_events(t, loads)
        history.append(
            None
            if events is None
            else (
                events.edge_drops.tolist(),
                events.edge_adds.tolist(),
                events.leaves.tolist(),
                tuple((n, tuple(vs)) for n, vs in events.joins),
            )
        )
    return history


@pytest.mark.parametrize("name", sorted(TOPOLOGY_PARAMS))
def test_topology_schedule_replica_offset(name):
    """TopologySpec.build(r) emits the explicit seed+r event stream."""
    params = TOPOLOGY_PARAMS[name]
    spec = TopologySpec(name, params)
    graph = families.cycle(N)
    loads = np.full(N, 30, dtype=np.int64)
    for replica in (0, 2):
        offset = spec.build(replica)
        if "seed" in params:
            explicit = TopologySpec(
                name, {**params, "seed": params["seed"] + replica}
            ).build()
        else:
            explicit = spec.build()
        assert _topology_history(
            offset, graph, loads
        ) == _topology_history(explicit, graph, loads)


@pytest.mark.parametrize("name", sorted(TOPOLOGY_PARAMS))
def test_topology_replica_independent_of_batch_size(name):
    """Replica r's churned trajectory is the same in any batch size."""
    graph = families.cycle(N)
    loads = LoadSpec("uniform_random", {"total_tokens": 320, "seed": 5})
    topology = TopologySpec(name, TOPOLOGY_PARAMS[name])

    def scenario(replicas):
        return Scenario(
            graph=GraphSpec("cycle", {"n": N}),
            algorithm=AlgorithmSpec("send_floor"),
            loads=loads,
            stop=StopRule.fixed(20),
            replicas=replicas,
            topology=topology,
        )

    small = scenario(2).run(executor="batch")
    large = scenario(4).run(executor="batch")
    for replica in range(2):
        np.testing.assert_array_equal(
            small.replica(replica).final_loads,
            large.replica(replica).final_loads,
        )
    for replica in range(4):
        solo = Simulator(
            graph,
            make("send_floor"),
            loads.build(N, replica),
            topology=topology.build(replica),
        ).run(20)
        np.testing.assert_array_equal(
            large.replica(replica).final_loads, solo.final_loads
        )
        assert (
            large.replica(replica).discrepancy_history
            == solo.discrepancy_history
        )


def test_seeded_topology_replicas_actually_differ():
    """The topology-seed offset produces distinct event streams."""
    graph = families.cycle(N)
    loads = np.full(N, 30, dtype=np.int64)
    spec = TopologySpec("edge_churn", {"rate": 0.3, "seed": 1})
    assert _topology_history(
        spec.build(0), graph, loads
    ) != _topology_history(spec.build(1), graph, loads)
