"""Scenario-level probe behavior: serialization, executor choice."""

import json

import numpy as np
import pytest

from repro.core.flows import FlowTracker
from repro.core.monitors import LoadBoundsMonitor, PeriodDetector
from repro.core.probes import ProbeSpec
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)


def make_scenario(**overrides):
    defaults = dict(
        graph=GraphSpec("cycle", {"n": 12}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec("point_mass", {"tokens": 120}),
        stop=StopRule.fixed(20),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestSerialization:
    def test_probe_specs_round_trip(self):
        scenario = make_scenario(
            probes=(
                ProbeSpec("load_bounds"),
                ProbeSpec("potentials", {"c_values": [2], "s": 1}),
            ),
            replicas=3,
        )
        data = json.loads(json.dumps(scenario.to_dict()))
        rebuilt = Scenario.from_dict(data)
        assert rebuilt.probes == scenario.probes
        assert rebuilt.replicas == 3

    def test_probe_factories_not_serializable(self):
        scenario = make_scenario(probes=(LoadBoundsMonitor,))
        with pytest.raises(ValueError, match="ProbeSpec"):
            scenario.to_dict()

    def test_probe_instances_rejected_for_multi_replica(self):
        with pytest.raises(ValueError, match="fresh probes"):
            make_scenario(probes=(LoadBoundsMonitor(),), replicas=2)

    def test_duck_typed_instance_rejected_for_multi_replica(self):
        # regression: a legacy duck-typed observer instance would be
        # silently shared (and its state corrupted) across replicas
        class OldSchool:
            def start(self, graph, balancer, loads):
                pass

            def observe(self, t, loads_before, sends, loads_after):
                pass

        with pytest.raises(ValueError, match="fresh probes"):
            make_scenario(probes=(OldSchool(),), replicas=2)


class TestExecutorSelection:
    def test_loads_probes_keep_batch_executor(self):
        scenario = make_scenario(
            probes=(ProbeSpec("load_bounds"),), replicas=4
        )
        outcome = scenario.run()
        assert outcome.executor == "batch"
        for replica in range(4):
            bounds = outcome.monitor(LoadBoundsMonitor, replica)
            assert bounds is not None
            assert bounds.min_ever == 0
            assert bounds.max_ever == 120

    def test_sends_probes_fall_back_to_loop(self):
        scenario = make_scenario(
            probes=(ProbeSpec("flows"),), replicas=2
        )
        outcome = scenario.run()
        assert outcome.executor == "loop"
        assert outcome.monitor(FlowTracker, 1) is not None

    def test_sends_probes_reject_forced_batch(self):
        scenario = make_scenario(
            probes=(ProbeSpec("flows"),), replicas=2
        )
        with pytest.raises(ValueError, match="looped"):
            scenario.run(executor="batch")

    def test_batch_and_loop_probe_outputs_identical(self):
        scenario = make_scenario(
            probes=(ProbeSpec("discrepancy"), ProbeSpec("period")),
            replicas=3,
        )
        batch = scenario.run(executor="batch")
        loop = scenario.run(executor="loop")
        assert batch.executor == "batch" and loop.executor == "loop"
        for replica in range(3):
            np.testing.assert_array_equal(
                batch.replica(replica).final_loads,
                loop.replica(replica).final_loads,
            )
            left = batch.monitor(PeriodDetector, replica)
            right = loop.monitor(PeriodDetector, replica)
            assert (left.period, left.first_repeat_round) == (
                right.period,
                right.first_repeat_round,
            )


class TestRecords:
    def test_records_carry_probe_summaries(self):
        scenario = make_scenario(
            probes=(ProbeSpec("load_bounds"),), replicas=2
        )
        outcome = scenario.run()
        records = outcome.records
        assert len(records) == 2
        for replica, record in enumerate(records):
            assert record.replica == replica
            assert record.summary["min_load"] == 0
            assert "discrepancy" in record.trace

    def test_replica_summary_merges_probe_scalars(self):
        scenario = make_scenario(probes=(ProbeSpec("load_bounds"),))
        outcome = scenario.run()
        summary = outcome.replica_summary()
        assert summary["min_load"] == 0
        assert summary["max_load"] == 120
        assert "plateau" in summary

    def test_suite_cartesian_forwards_probes(self):
        suite = ScenarioSuite.cartesian(
            graphs=GraphSpec("cycle", {"n": 12}),
            algorithms=[
                AlgorithmSpec("send_floor"),
                AlgorithmSpec("rotor_router"),
            ],
            loads=LoadSpec("point_mass", {"tokens": 120}),
            stop=StopRule.fixed(10),
            probes=(ProbeSpec("load_bounds"),),
        )
        for outcome in suite.run():
            assert outcome.replica_summary()["min_load"] >= 0
